"""Schema validation on the benchmark trajectories.

``tools/bench_trajectory.py`` guards the two append-only measurement
files (``BENCH_sweep.json``, ``BENCH_sim.json``): malformed rows,
out-of-order timestamps, and duplicate label+workload+config identities
are refused before they land, so the ratio gates in
``tools/check_kernel_perf.py`` always compare well-formed siblings.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "tools"))
import bench_trajectory  # noqa: E402  (path shim above)


def _fig9_row(**overrides):
    row = {
        "label": "test",
        "workload": "fig9_segment",
        "config": "lazy",
        "dram": "legacy",
        "link": "legacy",
        "events": 1000,
        "events_per_s": 500,
        "events_dispatched": 900,
        "wall_s": 2.0,
        "schemes": ["baseline"],
        "per_scheme_events": {"baseline": 1000},
        "trace_length": 100,
    }
    row.update(overrides)
    return row


class TestValidate:
    def test_complete_fig9_row_passes(self):
        bench_trajectory.validate(_fig9_row(), [])

    def test_missing_workload_key_refused(self):
        row = _fig9_row()
        del row["per_scheme_events"]
        with pytest.raises(ValueError, match="per_scheme_events"):
            bench_trajectory.validate(row, [])

    def test_missing_base_key_refused(self):
        row = _fig9_row()
        del row["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            bench_trajectory.validate(row, [])

    def test_none_value_counts_as_missing(self):
        with pytest.raises(ValueError, match="dram"):
            bench_trajectory.validate(_fig9_row(dram=None), [])

    def test_unknown_workload_needs_only_base_keys(self):
        bench_trajectory.validate(
            {"label": "test", "workload": "exotic", "wall_s": 1.0}, []
        )

    def test_sweep_row_without_workload_needs_only_base_keys(self):
        bench_trajectory.validate(
            {"label": "ci", "wall_s": 1.9, "points": 13, "workers": 2}, []
        )

    def test_monotonic_timestamps_enforced(self):
        older = _fig9_row(timestamp="2026-08-01T00:00:00Z")
        newer = _fig9_row(label="other",
                          timestamp="2026-08-08T00:00:00Z")
        bench_trajectory.validate(older, [])
        with pytest.raises(ValueError, match="monotonic"):
            bench_trajectory.validate(older, [newer])

    def test_duplicate_identity_refused(self):
        row = _fig9_row()
        with pytest.raises(ValueError, match="duplicate"):
            bench_trajectory.validate(_fig9_row(), [row])

    def test_sibling_rows_are_not_duplicates(self):
        # The same label re-measured on a different backend axis is the
        # sibling-pair convention, not a duplicate.
        legacy = _fig9_row()
        bench_trajectory.validate(_fig9_row(link="kernel"), [legacy])
        bench_trajectory.validate(_fig9_row(dram="kernel"), [legacy])
        bench_trajectory.validate(_fig9_row(label="other"), [legacy])

    def test_historical_rows_are_not_judged(self):
        # Pre-link-axis rows lack the ``link`` key entirely; they stay
        # in the file and only the *new* record must satisfy the schema.
        old = _fig9_row()
        del old["link"]
        bench_trajectory.validate(_fig9_row(), [old])


def _explore_row(**overrides):
    row = {
        "label": "test",
        "workload": "explore",
        "config": "smoke",
        "trace_length": 150,
        "wall_s": 3.2,
        "grid_points": 16,
        "simulated": 8,
        "sim_fraction": 0.5,
        "des_points_skipped_frac": 0.5,
        "budget_frac": 0.5,
        "rounds": 2,
        "frontier_size": 3,
        "latency_err_mean": 0.02,
        "latency_err_p95": 0.05,
        "goodput_err_mean": 0.1,
        "goodput_err_p95": 0.2,
    }
    row.update(overrides)
    return row


class TestExploreSchema:
    def test_complete_explore_row_passes(self):
        bench_trajectory.validate(_explore_row(), [])

    def test_missing_error_column_refused(self):
        row = _explore_row()
        del row["latency_err_p95"]
        with pytest.raises(ValueError, match="latency_err_p95"):
            bench_trajectory.validate(row, [])

    def test_missing_skip_fraction_refused(self):
        with pytest.raises(ValueError, match="des_points_skipped_frac"):
            bench_trajectory.validate(
                _explore_row(des_points_skipped_frac=None), []
            )

    def test_same_label_different_grid_is_a_sibling(self):
        smoke = _explore_row()
        bench_trajectory.validate(_explore_row(config="full"), [smoke])
        with pytest.raises(ValueError, match="duplicate"):
            bench_trajectory.validate(_explore_row(), [smoke])


class TestCheck:
    def test_clean_trajectory_passes(self, tmp_path):
        path = str(tmp_path / "BENCH_explore.json")
        bench_trajectory.append(_explore_row(), path=path)
        bench_trajectory.append(_explore_row(config="full"), path=path)
        assert bench_trajectory.check(path) == []
        assert bench_trajectory.main(["--check", path]) == 0

    def test_hand_edited_duplicate_is_caught(self, tmp_path):
        path = tmp_path / "BENCH_explore.json"
        row = bench_trajectory.append(_explore_row(), path=str(path))
        rows = json.loads(path.read_text())
        rows.append(dict(row))  # merge-mangled duplicate identity
        path.write_text(json.dumps(rows))
        problems = bench_trajectory.check(str(path))
        assert len(problems) == 1
        assert "duplicate" in problems[0]
        assert bench_trajectory.main(["--check", str(path)]) == 1

    def test_missing_key_is_caught_with_its_index(self, tmp_path):
        path = tmp_path / "bad.json"
        row = _explore_row()
        del row["rounds"]
        path.write_text(json.dumps([row]))
        problems = bench_trajectory.check(str(path))
        assert problems and "[0]" in problems[0]
        assert "rounds" in problems[0]

    def test_committed_trajectories_replay_clean(self):
        # BENCH_sim.json's early rows predate several workload keys;
        # the grandfathering rule must keep the committed files green.
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for name in ("BENCH_sim.json", "BENCH_sweep.json",
                     "BENCH_explore.json"):
            assert bench_trajectory.check(os.path.join(root, name)) == []

    def test_schema_regression_after_ratification_is_caught(
        self, tmp_path
    ):
        # Once a complete row exists, a later incomplete row of the
        # same workload is a hand-edit, not pre-schema history.
        complete = _explore_row()
        regressed = _explore_row(config="full")
        del regressed["rounds"]
        path = tmp_path / "BENCH_explore.json"
        path.write_text(json.dumps([complete, regressed]))
        problems = bench_trajectory.check(str(path))
        assert len(problems) == 1
        assert "[1]" in problems[0] and "rounds" in problems[0]

    def test_pre_schema_history_is_grandfathered(self, tmp_path):
        # The incomplete row predates the complete one, so only the
        # newest row is held to the full schema.
        old = _explore_row()
        del old["rounds"]
        path = tmp_path / "BENCH_explore.json"
        path.write_text(json.dumps([old, _explore_row(config="full")]))
        assert bench_trajectory.check(str(path)) == []

    def test_unreadable_and_non_array_files_are_reported(self, tmp_path):
        assert bench_trajectory.check(str(tmp_path / "nope.json"))
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert "not valid JSON" in bench_trajectory.check(str(garbled))[0]
        scalar = tmp_path / "scalar.json"
        scalar.write_text('{"a": 1}')
        assert "JSON array" in bench_trajectory.check(str(scalar))[0]


class TestAppend:
    def test_append_validates_and_writes(self, tmp_path):
        path = str(tmp_path / "BENCH_sim.json")
        bench_trajectory.append(_fig9_row(), path=path)
        with pytest.raises(ValueError, match="duplicate"):
            bench_trajectory.append(_fig9_row(), path=path)
        with open(path) as fp:
            rows = json.load(fp)
        assert len(rows) == 1
        assert rows[0]["label"] == "test"
        assert "timestamp" in rows[0]

    def test_committed_trajectories_validate_one_by_one(self):
        # Replay both committed files through the validator: every row
        # must have been appendable at the time it was appended.
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for name in ("BENCH_sim.json", "BENCH_sweep.json"):
            rows = bench_trajectory.load(os.path.join(root, name))
            for i, row in enumerate(rows):
                required = [
                    key for key in bench_trajectory.BASE_KEYS
                    if key not in row
                ]
                assert not required, f"{name}[{i}] missing {required}"
                assert not any(
                    bench_trajectory.identity(row)
                    == bench_trajectory.identity(prior)
                    for prior in rows[:i]
                    if row.get("workload") is not None
                ), f"{name}[{i}] duplicates an earlier identity"
