"""Schema validation on the benchmark trajectories.

``tools/bench_trajectory.py`` guards the two append-only measurement
files (``BENCH_sweep.json``, ``BENCH_sim.json``): malformed rows,
out-of-order timestamps, and duplicate label+workload+config identities
are refused before they land, so the ratio gates in
``tools/check_kernel_perf.py`` always compare well-formed siblings.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "..",
                                "tools"))
import bench_trajectory  # noqa: E402  (path shim above)


def _fig9_row(**overrides):
    row = {
        "label": "test",
        "workload": "fig9_segment",
        "config": "lazy",
        "dram": "legacy",
        "link": "legacy",
        "events": 1000,
        "events_per_s": 500,
        "events_dispatched": 900,
        "wall_s": 2.0,
        "schemes": ["baseline"],
        "per_scheme_events": {"baseline": 1000},
        "trace_length": 100,
    }
    row.update(overrides)
    return row


class TestValidate:
    def test_complete_fig9_row_passes(self):
        bench_trajectory.validate(_fig9_row(), [])

    def test_missing_workload_key_refused(self):
        row = _fig9_row()
        del row["per_scheme_events"]
        with pytest.raises(ValueError, match="per_scheme_events"):
            bench_trajectory.validate(row, [])

    def test_missing_base_key_refused(self):
        row = _fig9_row()
        del row["wall_s"]
        with pytest.raises(ValueError, match="wall_s"):
            bench_trajectory.validate(row, [])

    def test_none_value_counts_as_missing(self):
        with pytest.raises(ValueError, match="dram"):
            bench_trajectory.validate(_fig9_row(dram=None), [])

    def test_unknown_workload_needs_only_base_keys(self):
        bench_trajectory.validate(
            {"label": "test", "workload": "exotic", "wall_s": 1.0}, []
        )

    def test_sweep_row_without_workload_needs_only_base_keys(self):
        bench_trajectory.validate(
            {"label": "ci", "wall_s": 1.9, "points": 13, "workers": 2}, []
        )

    def test_monotonic_timestamps_enforced(self):
        older = _fig9_row(timestamp="2026-08-01T00:00:00Z")
        newer = _fig9_row(label="other",
                          timestamp="2026-08-08T00:00:00Z")
        bench_trajectory.validate(older, [])
        with pytest.raises(ValueError, match="monotonic"):
            bench_trajectory.validate(older, [newer])

    def test_duplicate_identity_refused(self):
        row = _fig9_row()
        with pytest.raises(ValueError, match="duplicate"):
            bench_trajectory.validate(_fig9_row(), [row])

    def test_sibling_rows_are_not_duplicates(self):
        # The same label re-measured on a different backend axis is the
        # sibling-pair convention, not a duplicate.
        legacy = _fig9_row()
        bench_trajectory.validate(_fig9_row(link="kernel"), [legacy])
        bench_trajectory.validate(_fig9_row(dram="kernel"), [legacy])
        bench_trajectory.validate(_fig9_row(label="other"), [legacy])

    def test_historical_rows_are_not_judged(self):
        # Pre-link-axis rows lack the ``link`` key entirely; they stay
        # in the file and only the *new* record must satisfy the schema.
        old = _fig9_row()
        del old["link"]
        bench_trajectory.validate(_fig9_row(), [old])


class TestAppend:
    def test_append_validates_and_writes(self, tmp_path):
        path = str(tmp_path / "BENCH_sim.json")
        bench_trajectory.append(_fig9_row(), path=path)
        with pytest.raises(ValueError, match="duplicate"):
            bench_trajectory.append(_fig9_row(), path=path)
        with open(path) as fp:
            rows = json.load(fp)
        assert len(rows) == 1
        assert rows[0]["label"] == "test"
        assert "timestamp" in rows[0]

    def test_committed_trajectories_validate_one_by_one(self):
        # Replay both committed files through the validator: every row
        # must have been appendable at the time it was appended.
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        for name in ("BENCH_sim.json", "BENCH_sweep.json"):
            rows = bench_trajectory.load(os.path.join(root, name))
            for i, row in enumerate(rows):
                required = [
                    key for key in bench_trajectory.BASE_KEYS
                    if key not in row
                ]
                assert not required, f"{name}[{i}] missing {required}"
                assert not any(
                    bench_trajectory.identity(row)
                    == bench_trajectory.identity(prior)
                    for prior in rows[:i]
                    if row.get("workload") is not None
                ), f"{name}[{i}] duplicates an earlier identity"
