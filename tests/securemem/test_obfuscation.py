"""Secure-memory model: replication, obfuscation, completion semantics."""

from typing import List

import pytest

from repro.dram.address_mapping import ChannelInterleaver
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.securemem import SecureMemPort
from repro.sim.engine import Engine


def make_port(num_channels=4, window=16):
    eng = Engine()
    channels = {
        (ch, 0): Channel(eng, f"ch{ch}") for ch in range(num_channels)
    }
    interleaver = ChannelInterleaver(sorted(channels.keys()))
    port = SecureMemPort(eng, channels, interleaver, app_id=7,
                         window=window, seed=1)
    return eng, channels, port


class TestReplication:
    def test_one_access_touches_every_channel(self):
        eng, channels, port = make_port()
        port.issue(OpType.READ, 0, 7, None)
        eng.run()
        for channel in channels.values():
            assert channel.stats.counter("reads_serviced").value == 1

    def test_exactly_one_real_and_n_minus_1_dummies(self):
        eng, channels, port = make_port()
        port.issue(OpType.READ, 0, 7, None)
        eng.run()
        assert port.stats.counter("real_requests").value == 1
        assert port.stats.counter("dummy_requests").value == 3

    def test_completion_waits_for_slowest_replica(self):
        eng, channels, port = make_port()
        done: List[int] = []
        port.issue(OpType.READ, 0, 7, done.append)
        eng.run()
        assert len(done) == 1
        # Single accesses: all replicas take the closed-row latency; the
        # callback adds the crypto overhead on top.
        assert done[0] > 0

    def test_crypto_overhead_applied(self):
        eng_a, _, port_a = make_port()
        done_a: List[int] = []
        port_a.issue(OpType.READ, 0, 7, done_a.append)
        eng_a.run()

        eng_b = Engine()
        channels_b = {(ch, 0): Channel(eng_b, f"ch{ch}") for ch in range(4)}
        port_b = SecureMemPort(
            eng_b, channels_b, ChannelInterleaver(sorted(channels_b)),
            app_id=7, crypto_overhead_ns=0.0, seed=1,
        )
        done_b: List[int] = []
        port_b.issue(OpType.READ, 0, 7, done_b.append)
        eng_b.run()
        assert done_a[0] - done_b[0] == 12 * 16  # 12 ns in ticks


class TestWindow:
    def test_window_backpressure(self):
        eng, _, port = make_port(window=1)
        port.issue(OpType.READ, 0, 7, None)
        assert not port.can_accept(OpType.READ)
        with pytest.raises(RuntimeError):
            port.issue(OpType.READ, 1, 7, None)
        woken: List[int] = []
        port.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        assert woken
        assert port.can_accept(OpType.READ)

    def test_held_requests_drain_on_full_queue(self):
        eng, channels, port = make_port(window=16)
        done: List[int] = []
        for i in range(16):
            port.issue(OpType.READ, i * 7, 7, done.append)
        eng.run()
        assert len(done) == 16


class TestTypeObfuscation:
    def test_writes_also_replicate(self):
        eng, channels, port = make_port()
        port.issue(OpType.WRITE, 0, 7, None)
        eng.run()
        serviced = sum(
            ch.stats.counter("writes_serviced").value
            + ch.stats.counter("reads_serviced").value
            for ch in channels.values()
        )
        assert serviced == 4
