"""Analytical pipeline model: calibration, monotonicity, accuracy.

The contract (DESIGN.md "Analytical fast-path"):

* **Calibration is deterministic**: the same anchor measurements, in
  any order, produce bit-identical per-family coefficients -- explore
  runs must be reproducible;
* **Monotonicity by construction**: predicted NS latency is
  non-decreasing in offered arrival rate, and per-tenant goodput is
  non-increasing in the tenant count at a fixed configuration -- the
  frontier triage in ``doram explore`` relies on the model ordering
  configurations sensibly, even where its absolute scale is off;
* **Pinned accuracy**: on the paper's Fig. 9 scheme set the calibrated
  model's relative error stays inside measured bounds (latency is the
  tight axis; goodput trends within a family are flatter, so its bound
  is looser).  These bounds are regression tripwires for both the
  model and the simulator it approximates.
"""

import pytest

from repro.analysis.explore import (
    build_grid,
    config_for_point,
    metrics_from_payload,
)
from repro.analysis.model import (
    CalibratedModel,
    DoramModel,
    FamilyFit,
    _least_squares,
    error_summary,
    fit_families,
    relative_error,
)
from repro.analysis.sweep import run_sweep
from repro.core.schemes import make_config

LENGTH = 150


@pytest.fixture(scope="module")
def model():
    return DoramModel()


# ---------------------------------------------------------------------------
# Monotonicity (the ordering properties explore depends on)
# ---------------------------------------------------------------------------


class TestMonotonicity:
    @pytest.mark.parametrize("scheme", ["doram", "doram/4", "doram+1/4"])
    def test_latency_non_decreasing_in_arrival_rate(self, model, scheme):
        config = make_config(scheme, "li", LENGTH)
        scales = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0]
        latencies = [
            model.ns_latency_us(config, rate_scale=s) for s in scales
        ]
        assert all(
            later >= earlier - 1e-12
            for earlier, later in zip(latencies, latencies[1:])
        ), latencies
        # And strictly increasing once the queue has load at all.
        assert latencies[-1] > latencies[0]

    @pytest.mark.parametrize("scheme", ["doram", "doram/4", "doram+2"])
    def test_goodput_per_tenant_non_increasing_in_tenants(
        self, model, scheme
    ):
        config = make_config(scheme, "li", LENGTH)
        goodputs = [
            model.goodput_per_tenant_rps(config, tenants)
            for tenants in range(1, 12)
        ]
        assert all(
            later <= earlier + 1e-9
            for earlier, later in zip(goodputs, goodputs[1:])
        ), goodputs
        assert goodputs[-1] < goodputs[0]

    def test_monotonicity_survives_calibration(self, model):
        """A positive-slope affine correction cannot flip the ordering."""
        config = make_config("doram/4", "li", LENGTH)
        calibrated = CalibratedModel(model=model, fits={
            "*": {
                "latency_us": FamilyFit(a=2.5, b=0.01, points=3),
                "goodput_rps": FamilyFit(a=0.7, b=1e4, points=3),
            },
        })
        raw = model.predict(config)
        cal = calibrated.predict(config)
        assert cal.ns_latency_us == pytest.approx(
            2.5 * raw.ns_latency_us + 0.01
        )
        assert cal.goodput_rps == pytest.approx(
            0.7 * raw.goodput_rps + 1e4
        )

    def test_saturated_configs_rank_behind_unsaturated(self, model):
        """Deep saturation must not wrap around or go non-finite."""
        config = make_config("doram/4", "li", LENGTH)
        mild = model.ns_latency_us(config, rate_scale=1.0)
        deep = model.ns_latency_us(config, rate_scale=1e4)
        assert mild < deep < float("inf")

    def test_bigger_trees_are_slower_pipelines(self, model):
        goodputs = [
            model.goodput_rps(
                make_config("doram", "li", LENGTH,
                            **{"oram.leaf_level": level})
            )
            for level in (10, 14, 18, 23)
        ]
        assert all(
            later <= earlier
            for earlier, later in zip(goodputs, goodputs[1:])
        ), goodputs


# ---------------------------------------------------------------------------
# Calibration mechanics
# ---------------------------------------------------------------------------


class TestCalibration:
    def _anchors(self, model):
        anchors = []
        for index, scheme in enumerate(
            ["doram", "doram/4", "doram/2", "doram+1", "doram+1/4"]
        ):
            config = make_config(scheme, "li", LENGTH)
            raw = model.predict(config)
            anchors.append((
                config,
                raw.ns_latency_us * 1.7 + 0.01 * (index % 2),
                raw.goodput_rps * 0.8 + 1e3 * index,
            ))
        return anchors

    def test_fit_is_deterministic_and_order_independent(self, model):
        anchors = self._anchors(model)
        first = fit_families(model, anchors)
        second = fit_families(model, list(reversed(anchors)))
        assert first.fits == second.fits

    def test_exact_affine_truth_is_recovered(self, model):
        """Anchors lying exactly on sim = a*pred + b fit back (a, b)."""
        # Vary c (moves predicted latency) and the tree size (moves
        # predicted goodput) so neither metric's anchor set is
        # degenerate-constant.
        configs = [
            make_config(f"doram/{c}", "li", LENGTH,
                        **{"oram.leaf_level": level})
            for c, level in ((0, 10), (3, 14), (7, 18))
        ]
        anchors = []
        for config in configs:
            raw = model.predict(config)
            anchors.append((
                config, 2.0 * raw.ns_latency_us + 0.5,
                0.25 * raw.goodput_rps + 100.0,
            ))
        cal = fit_families(model, anchors)
        family = model.family(configs[0])
        lat_fit = cal.fits[family]["latency_us"]
        good_fit = cal.fits[family]["goodput_rps"]
        assert lat_fit.a == pytest.approx(2.0)
        assert lat_fit.b == pytest.approx(0.5)
        assert good_fit.a == pytest.approx(0.25)
        assert good_fit.b == pytest.approx(100.0)
        for config in configs:
            raw = model.predict(config)
            pred = cal.predict(config)
            assert pred.ns_latency_us == pytest.approx(
                2.0 * raw.ns_latency_us + 0.5
            )

    def test_degenerate_fit_falls_back_to_offset(self):
        """Anti-correlated anchors would fit a negative slope, which
        would invert the model's ordering -- refuse and keep a=1."""
        fit = _least_squares([(1.0, 5.0), (2.0, 4.0), (3.0, 3.0)])
        assert fit.a == 1.0
        assert fit.b == pytest.approx(2.0)

    def test_single_anchor_is_an_offset_fit(self):
        fit = _least_squares([(2.0, 5.0)])
        assert (fit.a, fit.b, fit.points) == (1.0, 3.0, 1)

    def test_unknown_family_uses_pooled_fallback(self, model):
        anchors = self._anchors(model)
        cal = fit_families(model, anchors)
        # doram+3 contributed no anchors; its family key is absent, so
        # the pooled fit must apply instead of the raw pass-through.
        config = make_config("doram+3", "li", LENGTH)
        assert model.family(config) not in cal.fits
        raw = model.predict(config)
        pooled = cal.fits["*"]["latency_us"]
        assert cal.predict(config).ns_latency_us == pytest.approx(
            max(pooled.apply(raw.ns_latency_us), 0.0)
        )

    def test_no_anchors_is_identity(self, model):
        cal = CalibratedModel(model=model)
        config = make_config("doram", "li", LENGTH)
        assert cal.predict(config) == model.predict(config)

    def test_error_summary_shape(self):
        summary = error_summary([0.1, 0.3, 0.2])
        assert summary["n"] == 3
        assert summary["mean"] == pytest.approx(0.2)
        assert summary["max"] == pytest.approx(0.3)
        assert error_summary([]) == {
            "mean": 0.0, "p95": 0.0, "max": 0.0, "n": 0,
        }


# ---------------------------------------------------------------------------
# Pinned accuracy on the Fig. 9 scheme set
# ---------------------------------------------------------------------------


class TestFig9Accuracy:
    #: Measured on the seed commit: latency mean 0.023 / max 0.082,
    #: goodput mean 0.110 / max 0.242.  Bounds leave ~3x headroom so
    #: only a real model or simulator regression trips them.
    LAT_MEAN_BOUND = 0.10
    LAT_MAX_BOUND = 0.30
    GOOD_MEAN_BOUND = 0.30
    GOOD_MAX_BOUND = 0.60

    @pytest.fixture(scope="class")
    def fig9_measured(self):
        points = build_grid("fig9", LENGTH)
        sweep = run_sweep(points, workers=2, store=None)
        assert not sweep.failed
        return points, {
            point: metrics_from_payload(payload)
            for point, payload in sweep.payloads.items()
        }

    def test_calibrated_error_stays_inside_pinned_bounds(
        self, model, fig9_measured
    ):
        points, measured = fig9_measured
        anchors = [
            (config_for_point(p), lat, good)
            for p, (lat, good) in measured.items()
        ]
        cal = fit_families(model, anchors)
        lat_errors, good_errors = [], []
        for point in points:
            pred = cal.predict(config_for_point(point))
            lat, good = measured[point]
            lat_errors.append(relative_error(pred.ns_latency_us, lat))
            good_errors.append(relative_error(pred.goodput_rps, good))
        lat = error_summary(lat_errors)
        good = error_summary(good_errors)
        assert lat["mean"] <= self.LAT_MEAN_BOUND, lat
        assert lat["max"] <= self.LAT_MAX_BOUND, lat
        assert good["mean"] <= self.GOOD_MEAN_BOUND, good
        assert good["max"] <= self.GOOD_MAX_BOUND, good

    def test_every_fig9_point_produces_finite_metrics(self, fig9_measured):
        _points, measured = fig9_measured
        for lat, good in measured.values():
            assert lat > 0.0
            assert good > 0.0
