"""Experiment drivers: structure and caching (tiny scale)."""

import pytest

from repro.analysis import experiments

TRACE = 500
BENCHES = ("li", "bl")


@pytest.fixture(autouse=True)
def fresh_cache():
    experiments.clear_cache()
    yield


class TestCache:
    def test_cached_run_reuses(self):
        a = experiments.cached_run("1ns", "li", TRACE)
        b = experiments.cached_run("1ns", "li", TRACE)
        assert a is b

    def test_cache_keys_on_scheme(self):
        a = experiments.cached_run("1ns", "li", TRACE)
        b = experiments.cached_run("7ns-4ch", "li", TRACE)
        assert a is not b


class TestFig4:
    def test_structure(self):
        data = experiments.fig4(BENCHES, TRACE)
        assert set(data) == set(experiments.FIG4_SCHEMES)
        for rows in data.values():
            assert {"best", "worst", "gmean"} <= set(rows)
            assert rows["best"] <= rows["gmean"] <= rows["worst"]

    def test_corun_always_slower_than_solo(self):
        data = experiments.fig4(BENCHES, TRACE)
        for scheme, rows in data.items():
            for code in BENCHES:
                assert rows[code] > 1.0, (scheme, code)


class TestTable1:
    def test_three_rows_matching_paper(self):
        rows = experiments.table1()
        assert [r["k"] for r in rows] == [1, 2, 3]
        for row in rows:
            assert row["secure_share"] == pytest.approx(
                row["paper_secure"], abs=0.001)
            assert row["layout_secure"] == pytest.approx(
                row["paper_secure"], abs=0.01)


class TestFig9Fig11:
    def test_fig11_sweep_structure(self):
        data = experiments.fig11(("li",), TRACE, c_values=(0, 4, 7))
        row = data["li"]
        assert {"c0", "c4", "c7", "7ns-3ch", "7ns-4ch", "best_c"} <= set(row)
        assert row["best_c"] in (0.0, 4.0, 7.0)

    def test_fig9_normalized_to_baseline(self):
        data = experiments.fig9(("li",), TRACE)
        assert data["li"]["baseline"] == 1.0
        assert "gmean" in data
        # D-ORAM/X is the min over the sweep, so <= plain D-ORAM.
        assert data["li"]["doram_x"] <= data["li"]["doram"] + 1e-9


class TestFig10:
    def test_relative_to_doram(self):
        data = experiments.fig10(("li",), TRACE, k_values=(1,))
        assert data["li"]["doram"] == 1.0
        assert data["li"]["k1"] > 0
        assert "gmean" in data


class TestFig13:
    def test_latency_ratios_positive(self):
        data = experiments.fig13(("li",), TRACE)
        for key, value in data["li"].items():
            assert value > 0
