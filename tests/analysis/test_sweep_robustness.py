"""Sweep robustness: torn store writes, point timeouts, bounded retry.

The contract (DESIGN.md "Fault model & recovery", sweep hardening):

* ``ResultStore.put`` is crash-atomic -- a reader never observes a torn
  entry, and a torn entry planted on disk (simulating a crash between
  write and rename on a pre-fsync store) counts as a miss and is
  re-simulated, healing the store;
* ``execute_point(timeout_s=...)`` bounds one point's wall clock from
  *inside* the process (pool futures cannot be cancelled once running)
  and raises :class:`~repro.analysis.sweep.PointTimeout`; the deadline
  works on the main thread (watchdog interrupt), off the main thread
  (sidecar thread joined with a deadline), and in pool workers;
* ``run_sweep`` gives a failing point exactly one more attempt, then
  records it in ``SweepResult.failed`` and keeps going -- a bad point
  costs its own result, not the sweep;
* ``run_figures`` refuses to evaluate drivers over a partial sweep
  (:class:`~repro.analysis.sweep.SweepFailure`), because the
  ``cached_run`` fallback would silently re-simulate the failed point
  inline.
"""

import time

import pytest

from repro.analysis import experiments
from repro.analysis import sweep as sweep_mod
from repro.analysis.sweep import (
    PointTimeout,
    ResultStore,
    RunPoint,
    SweepFailure,
    canonical_json,
    run_sweep,
)

LENGTH = 100


def _point():
    return RunPoint("baseline", "li", LENGTH)


# ---------------------------------------------------------------------------
# Torn store writes
# ---------------------------------------------------------------------------


class TestTornWrites:
    def test_torn_entry_is_resimulated_and_healed(self, tmp_path):
        """A truncated store file (crash mid-write on a non-atomic
        store) must read as a miss, re-simulate, and be repaired."""
        point = _point()
        store = ResultStore(str(tmp_path / "store"))
        first = run_sweep([point], workers=1, store=store)
        path = store.path_for(point.key())
        with open(path) as fp:
            full = fp.read()

        with open(path, "w") as fp:
            fp.write(full[: len(full) // 2])
        assert store.get(point.key()) is None

        second = run_sweep([point], workers=1, store=store)
        assert second.simulated == 1
        assert second.store_hits == 0
        assert canonical_json(second.payloads[point]) == \
            canonical_json(first.payloads[point])
        with open(path) as fp:
            assert fp.read() == full

    def test_put_failure_leaves_old_entry_and_no_tmp(self, tmp_path,
                                                     monkeypatch):
        """If the durable write blows up mid-flight, the previous entry
        survives untouched and the unique tmp file is cleaned up."""
        store = ResultStore(str(tmp_path / "store"))
        store.put("ab" * 32, {"v": 1})

        def _boom(tmp, path):
            raise OSError("disk full")

        monkeypatch.setattr(sweep_mod.os, "replace", _boom)
        with pytest.raises(OSError):
            store.put("ab" * 32, {"v": 2})
        monkeypatch.undo()

        assert store.get("ab" * 32) == {"v": 1}
        import os
        for root, _dirs, files in os.walk(store.root):
            for name in files:
                assert name.endswith(".json"), (root, name)


# ---------------------------------------------------------------------------
# Point timeouts
# ---------------------------------------------------------------------------


class TestPointTimeout:
    def test_timeout_interrupts_a_wedged_point(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod, "_simulate_point",
            lambda point, with_digest=False: time.sleep(5.0),
        )
        started = time.monotonic()
        with pytest.raises(PointTimeout):
            sweep_mod.execute_point(_point(), timeout_s=0.05)
        assert time.monotonic() - started < 2.0

    def test_timeout_works_off_the_main_thread(self, monkeypatch):
        """The old SIGALRM budget silently degraded to 'unbudgeted' off
        the main thread; the deadline mechanism must still fire there
        (work-queue drains run points from worker loops and threads)."""
        monkeypatch.setattr(
            sweep_mod, "_simulate_point",
            lambda point, with_digest=False: time.sleep(5.0),
        )
        box = {}

        def _run():
            started = time.monotonic()
            try:
                sweep_mod.execute_point(_point(), timeout_s=0.05)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc
            box["wall"] = time.monotonic() - started

        import threading

        worker = threading.Thread(target=_run)
        worker.start()
        worker.join(5.0)
        assert not worker.is_alive()
        assert isinstance(box.get("error"), PointTimeout)
        assert box["wall"] < 2.0

    def test_fast_point_result_passes_through_off_main_thread(self):
        box = {}

        def _run():
            box["payload"] = sweep_mod.execute_point(
                _point(), timeout_s=30.0
            )

        import threading

        worker = threading.Thread(target=_run)
        worker.start()
        worker.join(30.0)
        assert box["payload"]["result"]["end_time"] > 0

    def test_watchdog_is_disarmed_after_a_fast_point(self):
        """The deadline must not outlive the point it budgets: no
        watchdog timer threads linger once execute_point returns."""
        import threading

        payload = sweep_mod.execute_point(_point(), timeout_s=30.0)
        assert payload["result"]["end_time"] > 0
        lingering = [
            t for t in threading.enumerate()
            if isinstance(t, threading.Timer)
        ]
        assert lingering == []

    def test_no_timeout_means_no_watchdog(self, monkeypatch):
        calls = []

        class _Boom:
            def __init__(self, *a, **k):
                calls.append(a)

        import threading

        monkeypatch.setattr(threading, "Timer", _Boom)
        monkeypatch.setattr(sweep_mod.threading, "Timer", _Boom)
        sweep_mod.execute_point(_point())
        assert calls == []

    def test_errors_raised_off_main_thread_propagate(self, monkeypatch):
        """A point that *fails* under a deadline must surface its own
        error, not a timeout."""
        def _broken(point, with_digest=False):
            raise RuntimeError("inner failure")

        monkeypatch.setattr(sweep_mod, "_simulate_point", _broken)
        box = {}

        def _run():
            try:
                sweep_mod.execute_point(_point(), timeout_s=30.0)
            except BaseException as exc:  # noqa: BLE001
                box["error"] = exc

        import threading

        worker = threading.Thread(target=_run)
        worker.start()
        worker.join(5.0)
        assert isinstance(box.get("error"), RuntimeError)
        assert "inner failure" in str(box["error"])


# ---------------------------------------------------------------------------
# Bounded retry + surfaced failures
# ---------------------------------------------------------------------------


class TestBoundedRetry:
    def test_transient_failure_retries_once_and_succeeds(
        self, tmp_path, monkeypatch
    ):
        point = _point()
        attempts = []
        real = sweep_mod._simulate_point

        def _flaky(p, with_digest=False):
            attempts.append(p)
            if len(attempts) == 1:
                raise RuntimeError("transient worker wobble")
            return real(p, with_digest)

        monkeypatch.setattr(sweep_mod, "_simulate_point", _flaky)
        store = ResultStore(str(tmp_path / "store"))
        sweep = run_sweep([point], workers=1, store=store)
        assert len(attempts) == 2
        assert sweep.retried == 1
        assert not sweep.failed
        assert point in sweep.payloads
        assert store.get(point.key()) is not None

    def test_persistent_failure_is_recorded_not_raised(self, monkeypatch):
        point = _point()

        def _always(p, with_digest=False):
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(sweep_mod, "_simulate_point", _always)
        sweep = run_sweep([point], workers=1, store=None)
        assert sweep.retried == 1
        assert point in sweep.failed
        assert "deterministic bug" in sweep.failed[point]
        assert sweep.simulated == 0
        assert point not in sweep.payloads

    def test_timeout_in_serial_sweep_is_surfaced(self, monkeypatch):
        monkeypatch.setattr(
            sweep_mod, "_simulate_point",
            lambda point, with_digest=False: time.sleep(5.0),
        )
        point = _point()
        started = time.monotonic()
        sweep = run_sweep([point], workers=1, store=None, timeout_s=0.05)
        assert time.monotonic() - started < 2.0
        assert point in sweep.failed
        assert "PointTimeout" in sweep.failed[point]

    def test_one_bad_point_does_not_sink_the_sweep(self, monkeypatch):
        good = _point()
        bad = RunPoint("doram", "li", LENGTH)
        real = sweep_mod._simulate_point

        def _selective(p, with_digest=False):
            if p == bad:
                raise RuntimeError("only this point is broken")
            return real(p, with_digest)

        monkeypatch.setattr(sweep_mod, "_simulate_point", _selective)
        sweep = run_sweep([good, bad], workers=1, store=None)
        assert good in sweep.payloads
        assert bad in sweep.failed
        assert sweep.simulated == 1

    def test_run_figures_refuses_a_partial_sweep(self, monkeypatch):
        def _always(p, with_digest=False):
            raise RuntimeError("boom")

        monkeypatch.setattr(sweep_mod, "_simulate_point", _always)
        with pytest.raises(SweepFailure) as excinfo:
            experiments.run_figures(["fig9"], ["li"], LENGTH, workers=1,
                                    store=None)
        assert "boom" in str(excinfo.value)
        assert excinfo.value.sweep_result.failed


# ---------------------------------------------------------------------------
# Parallel pool path
# ---------------------------------------------------------------------------


def _failing_execute(point, with_digest=False, timeout_s=None):
    """Module-level so the pool can pickle it by reference."""
    raise RuntimeError(f"worker refused {point.label}")


class TestParallelFailures:
    def test_pool_failures_drain_without_hanging(self, monkeypatch):
        """Every point failing in workers must terminate the sweep with
        all failures recorded -- the old code raised on the first
        ``future.result()`` and lost the rest."""
        points = [_point(), RunPoint("doram", "li", LENGTH)]
        monkeypatch.setattr(sweep_mod, "execute_point", _failing_execute)
        sweep = run_sweep(points, workers=2, store=None)
        assert set(sweep.failed) == set(points)
        assert sweep.retried == len(points)
        assert not sweep.payloads
