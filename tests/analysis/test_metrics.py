"""Summary metrics."""

import pytest

from repro.analysis.metrics import (
    normalized_times,
    slowdown,
    summarize_best_worst_gmean,
)


class TestSlowdown:
    def test_basic(self):
        assert slowdown(150, 100) == 1.5

    def test_zero_reference(self):
        with pytest.raises(ValueError):
            slowdown(1, 0)


class TestNormalize:
    def test_reference_becomes_one(self):
        out = normalized_times({"a": 200, "b": 100}, "b")
        assert out == {"a": 2.0, "b": 1.0}

    def test_missing_reference(self):
        with pytest.raises(KeyError):
            normalized_times({"a": 1}, "zzz")


class TestSummary:
    def test_best_worst_gmean(self):
        best, worst, gm = summarize_best_worst_gmean([1.0, 2.0, 4.0])
        assert best == 1.0
        assert worst == 4.0
        assert gm == pytest.approx(2.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            summarize_best_worst_gmean([])
