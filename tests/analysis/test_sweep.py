"""Sweep runner: determinism, resume, store semantics, driver coverage.

The contract under test (see DESIGN.md "Sweep runner"):

* a parallel sweep is *bit-identical* to a serial one -- same canonical
  payload bytes, same PR-1 trace digests;
* the on-disk store makes sweeps resumable: killing a sweep halfway
  loses only the unfinished points, and a warm store re-simulates
  nothing;
* ``cached_run`` resolves ``DORAM_TRACE_LENGTH`` when called, not when
  imported (regression: the memo used to bake in the import-time value);
* :func:`~repro.analysis.experiments.figure_points` declares *every*
  run its figure driver performs -- primed drivers never simulate.
"""

import json
import os

import pytest

from repro.analysis import experiments
from repro.analysis import sweep as sweep_mod
from repro.analysis.experiments import (
    ALL_FIGURES,
    FIGURE_DRIVERS,
    cached_run,
    clear_cache,
    figure_points,
    points_for_figures,
    prime_cache,
)
from repro.analysis.sweep import (
    ResultStore,
    RunPoint,
    canonical_json,
    dedup_points,
    run_sweep,
)

LENGTH = 100
BENCH = ["li"]


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


def _fig9_points():
    return figure_points("fig9", BENCH, LENGTH)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestParallelSerialEquivalence:
    def test_parallel_is_bit_identical_to_serial(self):
        """workers=4 must reproduce workers=1 exactly -- payload bytes
        and event-level trace digests both."""
        points = _fig9_points()
        serial = run_sweep(points, workers=1, store=None, with_digest=True)
        parallel = run_sweep(points, workers=4, store=None,
                             with_digest=True)
        assert set(serial.payloads) == set(parallel.payloads)
        for point in serial.payloads:
            s, p = serial.payloads[point], parallel.payloads[point]
            assert canonical_json(s) == canonical_json(p), point.label
            assert s["trace_digest"] == p["trace_digest"], point.label
        assert serial.simulated == parallel.simulated == len(
            dedup_points(points)
        )

    def test_store_round_trip_is_bit_identical(self, tmp_path):
        """What comes back from disk is byte-for-byte what was computed."""
        points = _fig9_points()[:3]
        store = ResultStore(str(tmp_path / "store"))
        live = run_sweep(points, workers=1, store=store)
        warm = run_sweep(points, workers=1, store=store)
        assert warm.simulated == 0
        for point in points:
            assert canonical_json(live.payloads[point]) == \
                canonical_json(warm.payloads[point])

    def test_deserialized_results_match_live_run(self):
        """SimResult.from_json_dict round-trips the exact-integer state."""
        point = RunPoint("doram", "li", LENGTH)
        sweep = run_sweep([point], workers=1, store=None)
        restored = sweep.results()[point]
        from repro.core.schemes import run_scheme

        live = run_scheme("doram", "li", LENGTH)
        assert canonical_json(restored.to_json_dict()) == \
            canonical_json(live.to_json_dict())


# ---------------------------------------------------------------------------
# Resume
# ---------------------------------------------------------------------------


class TestResume:
    def test_interrupted_sweep_resumes_without_resimulating(
        self, tmp_path, monkeypatch
    ):
        """Kill half the store; the rerun simulates exactly that half."""
        points = _fig9_points()
        store = ResultStore(str(tmp_path / "store"))
        first = run_sweep(points, workers=1, store=store)
        total = first.simulated
        assert total == len(dedup_points(points))

        keys = store.keys()
        lost = keys[: len(keys) // 2]
        for key in lost:
            assert store.delete(key)

        executed = []
        real = sweep_mod.execute_point
        monkeypatch.setattr(
            sweep_mod, "execute_point",
            lambda point, with_digest=False, timeout_s=None: (
                executed.append(point), real(point, with_digest)
            )[1],
        )
        second = run_sweep(points, workers=1, store=store)
        assert second.simulated == len(lost)
        assert second.store_hits == total - len(lost)
        assert len(executed) == len(lost)
        # No point ran twice, and the merged payloads match the originals.
        assert len(set(executed)) == len(executed)
        for point in points:
            assert canonical_json(second.payloads[point]) == \
                canonical_json(first.payloads[point])

    def test_warm_store_runs_nothing(self, tmp_path, monkeypatch):
        points = _fig9_points()
        store = ResultStore(str(tmp_path / "store"))
        run_sweep(points, workers=1, store=store)
        monkeypatch.setattr(
            sweep_mod, "execute_point",
            lambda *a, **k: pytest.fail("warm store must not simulate"),
        )
        warm = run_sweep(points, workers=1, store=store)
        assert warm.simulated == 0
        assert warm.store_hits == len(dedup_points(points))

    def test_no_resume_refreshes_but_ignores_entries(self, tmp_path):
        point = RunPoint("baseline", "li", LENGTH)
        store = ResultStore(str(tmp_path / "store"))
        run_sweep([point], workers=1, store=store)
        again = run_sweep([point], workers=1, store=store, resume=False)
        assert again.simulated == 1 and again.store_hits == 0


# ---------------------------------------------------------------------------
# Store semantics
# ---------------------------------------------------------------------------


class TestResultStore:
    def test_put_get_delete_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "ab" + "0" * 62
        payload = {"schema": 1, "x": [1, 2, 3]}
        assert key not in store
        store.put(key, payload)
        assert key in store and store.get(key) == payload
        assert store.keys() == [key] and len(store) == 1
        assert store.delete(key) and key not in store
        assert not store.delete(key)

    def test_corrupt_entry_counts_as_miss(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        key = "cd" + "1" * 62
        store.put(key, {"ok": True})
        with open(store.path_for(key), "w") as fp:
            fp.write("{truncated")
        assert store.get(key) is None

    def test_writes_leave_no_tmp_litter(self, tmp_path):
        store = ResultStore(str(tmp_path / "s"))
        for i in range(8):
            store.put(f"{i:02d}" + "e" * 62, {"i": i})
        stray = [
            name
            for root, _dirs, names in os.walk(store.root)
            for name in names
            if not name.endswith(".json")
        ]
        assert stray == []

    def test_corrupt_store_entry_is_resimulated(self, tmp_path):
        point = RunPoint("baseline", "li", LENGTH)
        store = ResultStore(str(tmp_path / "s"))
        first = run_sweep([point], workers=1, store=store)
        key = point.key()
        with open(store.path_for(key), "w") as fp:
            fp.write("not json")
        second = run_sweep([point], workers=1, store=store)
        assert second.simulated == 1
        assert canonical_json(second.payloads[point]) == \
            canonical_json(first.payloads[point])

    def test_key_is_stable_under_override_order_and_aliases(self):
        a = RunPoint("doram", "li", LENGTH,
                     overrides=(("t_cycles", 60), ("seed", 2)))
        b = RunPoint("doram", "li", LENGTH,
                     overrides=(("seed", 2), ("t_cycles", 60)))
        assert a == b and a.key() == b.key()
        # Schema bumps retire every old entry.
        assert a.key() != a.key(with_digest=True)


# ---------------------------------------------------------------------------
# cached_run env resolution (regression)
# ---------------------------------------------------------------------------


class TestCachedRunEnv:
    def test_trace_length_env_resolved_at_call_time(self, monkeypatch):
        monkeypatch.setenv("DORAM_TRACE_LENGTH", "70")
        first = cached_run("1ns", "li")
        assert first.config.trace_length == 70
        # Changing the env mid-process must reach the next call -- the
        # old code froze the import-time value into the memo key.
        monkeypatch.setenv("DORAM_TRACE_LENGTH", "90")
        second = cached_run("1ns", "li")
        assert second.config.trace_length == 90
        assert first is not second

    def test_explicit_length_beats_env(self, monkeypatch):
        monkeypatch.setenv("DORAM_TRACE_LENGTH", "70")
        run = cached_run("1ns", "li", trace_length=LENGTH)
        assert run.config.trace_length == LENGTH


# ---------------------------------------------------------------------------
# Figure-point coverage
# ---------------------------------------------------------------------------


class TestFigureCoverage:
    def test_primed_drivers_never_simulate(self, monkeypatch):
        """figure_points must declare every run each driver performs."""
        points = points_for_figures(ALL_FIGURES, BENCH, LENGTH)
        sweep = run_sweep(points, workers=1, store=None)
        prime_cache(sweep.results())
        monkeypatch.setattr(
            experiments, "run_scheme",
            lambda *a, **k: pytest.fail(
                f"undeclared simulation: {a} {k}"
            ),
        )
        for figure in ALL_FIGURES:
            FIGURE_DRIVERS[figure](BENCH, LENGTH)

    def test_run_figures_outputs_match_serial_drivers(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        outputs, sweep = experiments.run_figures(
            ["fig9"], BENCH, LENGTH, workers=1, store=store
        )
        clear_cache()
        direct = experiments.fig9(BENCH, LENGTH)
        assert json.dumps(outputs["fig9"], sort_keys=True) == \
            json.dumps(direct, sort_keys=True)
        assert sweep.simulated == len(_fig9_points())

    def test_points_deduplicate_across_figures(self):
        # fig9 subsumes fig11's runs; the union must not double-declare.
        union = points_for_figures(["fig9", "fig11"], BENCH, LENGTH)
        assert len(union) == len(set(union))
        assert len(union) == len(figure_points("fig9", BENCH, LENGTH))
