"""T25mix/T33 profiling pipeline (small scale)."""

import pytest

from repro.analysis.profiling import ProfileResult, profile_ratio

TRACE = 600


@pytest.fixture(scope="module")
def libq_profile():
    return profile_ratio("li", trace_length=TRACE)


class TestProfileRatio:
    def test_slowdowns_exceed_solo(self, libq_profile):
        # Any co-run latency slowdown is > 1 relative to solo.
        assert libq_profile.t25 > 1.0
        assert libq_profile.t25mix > 1.0
        assert libq_profile.t33 > 1.0

    def test_mix_is_slower_than_clean_4ch(self, libq_profile):
        # Adding the ORAM-loaded secure channel cannot speed things up.
        assert libq_profile.t25mix >= libq_profile.t25 * 0.95

    def test_ratio_consistent(self, libq_profile):
        assert libq_profile.ratio == pytest.approx(
            libq_profile.latency_25mix_ns / libq_profile.latency_33_ns
        )

    def test_decision_matches_ratio(self, libq_profile):
        expected = "small" if libq_profile.ratio > 1 else "large"
        assert libq_profile.decision.category == expected

    def test_result_type(self, libq_profile):
        assert isinstance(libq_profile, ProfileResult)
        assert libq_profile.benchmark == "li"
