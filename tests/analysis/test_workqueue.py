"""Work-queue drains: lease semantics, crash recovery, equivalence.

The contract (DESIGN.md "Distributed work-queue sweeps"):

* a point claim is an ``O_CREAT | O_EXCL`` lease create -- two workers
  racing one point claim it exactly once;
* a worker that dies mid-point stops heartbeating; after the TTL its
  lease is stale, any worker may break it, and the point re-runs to a
  byte-identical payload (deterministic simulator + content-addressed
  atomic store);
* a drain resumes over partial state: done points are skipped, live
  leases are honoured (waited on, not stolen), stale leases are
  re-dispatched;
* failures share the PR 5 bounded-retry budget *globally*: attempt
  markers are visible to every worker, so a point never runs more than
  ``max_attempts`` times across the whole drain;
* an N-worker drain -- including one that lost a worker to SIGKILL --
  produces a store byte-identical to a serial ``run_sweep``.
"""

import os
import signal
import threading
import time

import pytest

from repro.analysis import workqueue as wq_mod
from repro.analysis.sweep import ResultStore, RunPoint, run_sweep
from repro.analysis.workqueue import (
    WorkQueue,
    WorkQueueError,
    run_queue_sweep,
)

LENGTH = 100


def _points(n=4):
    return [RunPoint("baseline", "li", LENGTH, segment=i) for i in range(n)]


def _store_bytes(store: ResultStore):
    out = {}
    for key in store.keys():
        with open(store.path_for(key), "rb") as fp:
            out[key] = fp.read()
    return out


# ---------------------------------------------------------------------------
# Lease primitives
# ---------------------------------------------------------------------------


class TestLeases:
    def test_two_workers_race_one_claim(self, tmp_path):
        """Exactly one of many concurrent claimants wins the lease."""
        queue = WorkQueue.create(str(tmp_path / "q"), _points(1))
        key = queue.key_for(queue.points[0])
        barrier = threading.Barrier(8)
        wins = []

        def _contender(name):
            barrier.wait()
            if queue.claim(key, name):
                wins.append(name)

        threads = [
            threading.Thread(target=_contender, args=(f"w{i}",))
            for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert len(wins) == 1

    def test_fresh_lease_is_not_stale(self, tmp_path):
        queue = WorkQueue.create(str(tmp_path / "q"), _points(1),
                                 lease_ttl_s=30.0)
        key = queue.key_for(queue.points[0])
        assert queue.claim(key, "w0")
        assert not queue.break_if_stale(key)
        assert not queue.claim(key, "w1")

    def test_stale_lease_is_broken_and_reclaimable(self, tmp_path):
        queue = WorkQueue.create(str(tmp_path / "q"), _points(1),
                                 lease_ttl_s=5.0)
        key = queue.key_for(queue.points[0])
        assert queue.claim(key, "w0")
        past = time.time() - 60.0
        os.utime(queue.lease_path(key), (past, past))
        assert queue.break_if_stale(key)
        assert queue.claim(key, "w1")

    def test_heartbeat_keeps_a_lease_live(self, tmp_path):
        queue = WorkQueue.create(str(tmp_path / "q"), _points(1),
                                 lease_ttl_s=5.0)
        key = queue.key_for(queue.points[0])
        assert queue.claim(key, "w0")
        past = time.time() - 60.0
        os.utime(queue.lease_path(key), (past, past))
        queue.heartbeat(key)
        assert not queue.break_if_stale(key)


# ---------------------------------------------------------------------------
# Manifest round trip
# ---------------------------------------------------------------------------


class TestManifest:
    def test_points_round_trip_including_tuple_overrides(self, tmp_path):
        points = [
            RunPoint("doram+1/4", "li", LENGTH,
                     overrides=(("t_cycles", 60),
                                ("oram.leaf_level", 21))),
            RunPoint("7ns-4ch", "mc", LENGTH,
                     overrides=(("ns_channels", (1, 2, 3)),)),
        ]
        WorkQueue.create(str(tmp_path / "q"), points)
        queue = WorkQueue.join(str(tmp_path / "q"))
        assert queue.points == points
        assert [queue.key_for(p) for p in queue.points] == \
            [p.key() for p in points]

    def test_recreate_identical_is_idempotent(self, tmp_path):
        WorkQueue.create(str(tmp_path / "q"), _points(3))
        queue = WorkQueue.create(str(tmp_path / "q"), _points(3))
        assert len(queue.points) == 3

    def test_recreate_different_is_refused(self, tmp_path):
        WorkQueue.create(str(tmp_path / "q"), _points(3))
        with pytest.raises(WorkQueueError):
            WorkQueue.create(str(tmp_path / "q"), _points(4))

    def test_join_without_manifest_fails_clearly(self, tmp_path):
        with pytest.raises(WorkQueueError) as excinfo:
            WorkQueue.join(str(tmp_path / "nope"))
        assert "manifest" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Drain semantics (satellite: lease lifecycle coverage)
# ---------------------------------------------------------------------------


class TestDrain:
    def test_serial_drain_matches_run_sweep_bytes(self, tmp_path):
        points = _points(3)
        serial_store = ResultStore(str(tmp_path / "serial"))
        run_sweep(points, workers=1, store=serial_store)

        queue = WorkQueue.create(str(tmp_path / "q"), points)
        drain = queue.drain(owner="w0")
        assert drain.completed == 3
        assert not drain.failed
        assert _store_bytes(queue.store) == _store_bytes(serial_store)

    def test_killed_workers_point_reruns_to_identical_bytes(self, tmp_path):
        """A stale lease (owner died mid-point) is reclaimed and the
        point re-runs to the same stored bytes a serial run produces."""
        points = _points(3)
        serial_store = ResultStore(str(tmp_path / "serial"))
        run_sweep(points, workers=1, store=serial_store)

        queue = WorkQueue.create(str(tmp_path / "q"), points,
                                 lease_ttl_s=5.0)
        # "w-dead" claimed a point and was SIGKILLed: lease on disk,
        # no heartbeat, no payload.
        dead_key = queue.key_for(points[1])
        assert queue.claim(dead_key, "w-dead")
        past = time.time() - 60.0
        os.utime(queue.lease_path(dead_key), (past, past))

        drain = queue.drain(owner="w-rescue")
        assert drain.reclaimed == 1
        assert drain.completed == 3
        assert _store_bytes(queue.store) == _store_bytes(serial_store)

    def test_resume_skips_done_points_and_honours_live_leases(
        self, tmp_path
    ):
        """Resume over partial state: done points are not re-simulated,
        and a live lease is waited on -- not stolen -- until its owner
        finishes."""
        points = _points(3)
        queue = WorkQueue.create(str(tmp_path / "q"), points,
                                 lease_ttl_s=30.0)
        # Point 0 already done by an earlier (partially lost) drain.
        done = run_sweep([points[0]], workers=1, store=queue.store)
        assert done.simulated == 1
        # Point 2 is held live by another worker.
        held_key = queue.key_for(points[2])
        assert queue.claim(held_key, "w-other")

        ran = []
        real_execute = wq_mod.execute_point

        def _spy(point, with_digest=False, timeout_s=None):
            ran.append(point)
            return real_execute(point, with_digest, timeout_s)

        wq_mod.execute_point = _spy
        try:
            box = {}

            def _drain():
                box["result"] = queue.drain(owner="w-new",
                                            poll_interval_s=0.02)

            worker = threading.Thread(target=_drain)
            worker.start()
            # The drain finishes point 1 then blocks on the live lease.
            deadline = time.monotonic() + 10.0
            while points[1] not in ran and time.monotonic() < deadline:
                time.sleep(0.01)
            assert points[1] in ran
            time.sleep(0.1)
            assert worker.is_alive(), \
                "drain must wait on a live lease, not steal it"
            # The other worker finishes its point and releases.
            payload = real_execute(points[2])
            queue.store.put(held_key, payload)
            queue.release(held_key)
            worker.join(10.0)
            assert not worker.is_alive()
        finally:
            wq_mod.execute_point = real_execute

        result = box["result"]
        assert result.completed == 1          # only point 1
        assert result.skipped >= 2            # points 0 and 2
        assert ran == [points[1]]             # nothing re-simulated
        assert queue.collect().payloads.keys() == set(points)

    def test_failure_budget_is_shared_across_workers(self, tmp_path,
                                                     monkeypatch):
        """max_attempts bounds runs of a point across *all* workers:
        after worker A burns both attempts, worker B must not re-run."""
        points = _points(1)
        calls = []

        def _always(point, with_digest=False, timeout_s=None):
            calls.append(point)
            raise RuntimeError("deterministic bug")

        monkeypatch.setattr(wq_mod, "execute_point", _always)
        queue = WorkQueue.create(str(tmp_path / "q"), points)
        first = queue.drain(owner="wA")
        assert len(calls) == 2                # initial + one retry
        assert first.retried == 1
        assert points[0] in first.failed
        assert "deterministic bug" in first.failed[points[0]]

        second = queue.drain(owner="wB")
        assert len(calls) == 2                # B never re-ran it
        assert second.completed == 0
        assert not second.failed              # A already recorded it

        collected = queue.collect()
        assert points[0] in collected.failed

    def test_clear_failure_re_dispatches_the_point(self, tmp_path,
                                                   monkeypatch):
        points = _points(1)
        monkeypatch.setattr(
            wq_mod, "execute_point",
            lambda point, with_digest=False, timeout_s=None:
                (_ for _ in ()).throw(RuntimeError("boom")),
        )
        queue = WorkQueue.create(str(tmp_path / "q"), points)
        queue.drain(owner="wA")
        key = queue.key_for(points[0])
        assert queue.failure(key) is not None

        monkeypatch.undo()
        queue.clear_failure(key)
        assert queue.attempt_count(key) == 0
        drain = queue.drain(owner="wA")
        assert drain.completed == 1
        assert queue.collect().failed == {}

    def test_stats_readout(self, tmp_path):
        points = _points(4)
        queue = WorkQueue.create(str(tmp_path / "q"), points)
        # one done, one leased, one failed, one pending
        done = run_sweep([points[0]], workers=1, store=queue.store)
        assert done.simulated == 1
        queue.claim(queue.key_for(points[1]), "w0")
        queue.mark_failed(queue.key_for(points[2]), "w0", "boom")

        stats = queue.stats()
        assert (stats.total, stats.done, stats.leased,
                stats.pending, stats.failed) == (4, 1, 1, 1, 1)
        assert stats.stale == 0
        text = "\n".join(stats.describe())
        assert "4 total" in text and "1 done" in text


# ---------------------------------------------------------------------------
# Multi-process equivalence (the acceptance bar)
# ---------------------------------------------------------------------------


class TestMultiProcess:
    def test_three_worker_drain_is_byte_identical_to_serial(self, tmp_path):
        points = _points(5)
        serial_store = ResultStore(str(tmp_path / "serial"))
        run_sweep(points, workers=1, store=serial_store)

        result, queue = run_queue_sweep(
            points, str(tmp_path / "q"), workers=3
        )
        assert not result.failed
        assert set(result.payloads) == set(points)
        assert _store_bytes(queue.store) == _store_bytes(serial_store)
        # Per-worker attribution: every point was completed exactly once
        # in aggregate.
        stats = queue.stats()
        assert stats.done == len(points)
        assert sum(w["completed"] for w in stats.workers) == len(points)

    def test_drain_survives_a_sigkilled_worker(self, tmp_path):
        """Kill one worker mid-drain, then resume with a fresh drain:
        the final store still matches the serial run byte for byte."""
        import multiprocessing

        points = _points(6)
        serial_store = ResultStore(str(tmp_path / "serial"))
        run_sweep(points, workers=1, store=serial_store)

        root = str(tmp_path / "q")
        queue = WorkQueue.create(root, points, lease_ttl_s=1.0)
        victim = multiprocessing.Process(
            target=wq_mod._drain_entry, args=(root, "w-victim")
        )
        victim.start()
        time.sleep(0.4)  # let it get partway through the drain
        if victim.is_alive():
            os.kill(victim.pid, signal.SIGKILL)
        victim.join(10.0)

        # Resume: wait out the short TTL so any orphaned lease is
        # stale, then drain to completion.
        time.sleep(1.1)
        drain = queue.drain(owner="w-resume")
        assert not drain.failed
        assert _store_bytes(queue.store) == _store_bytes(serial_store)
