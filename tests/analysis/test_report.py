"""Report generator (tiny scale)."""

import pytest

from repro.analysis import experiments
from repro.analysis.report import generate_report


@pytest.fixture(scope="module")
def report_text():
    experiments.clear_cache()
    return generate_report(benchmarks=("li",), trace_length=400)


class TestReport:
    def test_contains_every_exhibit(self, report_text):
        for heading in ("Fig. 4", "Table I", "Fig. 8", "Fig. 9",
                        "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13"):
            assert heading in report_text

    def test_contains_paper_reference_numbers(self, report_text):
        assert "90.6" in report_text     # Fig. 4 claim
        assert "0.875" in report_text    # Fig. 9 D-ORAM gmean
        assert "1.02" in report_text     # Fig. 10 k=1 overhead

    def test_emits_shape_verdicts(self, report_text):
        assert report_text.count("REPRODUCED") >= 4

    def test_table1_always_reproduced(self, report_text):
        section = report_text.split("## Table I")[1].split("##")[0]
        assert "REPRODUCED" in section
        assert "NOT reproduced" not in section

    def test_markdown_tables_well_formed(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                assert line.endswith("|")
