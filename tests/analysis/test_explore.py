"""``doram explore``: budget enforcement, frontier recovery, reports.

The contract (DESIGN.md "Analytical fast-path"):

* the DES never runs more than ``budget_frac`` of the grid (anchors
  included) -- the whole point of the analytical triage;
* the reported frontier is exactly the Pareto front of the *measured*
  points (no analytically-extrapolated rows sneak in);
* when the ground truth is an affine transform of the model per family
  -- i.e. the model's trends are right and calibration can make it
  exact -- explore recovers the true full-grid frontier while
  simulating a fraction of it;
* selection is deterministic in the seed, failures are excluded from
  the frontier but reported, and the bench record satisfies
  ``tools/bench_trajectory.py``'s ``explore`` schema.
"""

import json

import pytest

from repro.analysis.explore import (
    bench_record,
    build_grid,
    config_for_point,
    deeply_dominated,
    explore,
    metrics_from_payload,
    pareto_indices,
    write_report,
)
from repro.analysis.model import DoramModel
from repro.analysis.sweep import ResultStore

LENGTH = 300

MODEL = DoramModel()


def _family_affine_truth(point):
    """Synthetic ground truth: per-family affine images of the model.

    Calibration can represent this exactly, so the predicted frontier
    converges to the true one -- the recovery tests' ideal condition.
    Coefficients differ per family to exercise the per-family fits.
    """
    config = config_for_point(point)
    pred = MODEL.predict(config)
    k = config.split_k
    lat = pred.ns_latency_us * (1.5 + 0.4 * k) + 0.01 * (k + 1)
    good = pred.goodput_rps * (0.9 - 0.1 * k) + 5e3 * (4 - k)
    return lat, good


def _measure_with(truth, failures=()):
    calls = []

    def _measure(points):
        calls.append(list(points))
        measured, failed = {}, {}
        for point in points:
            if point.label in failures:
                failed[point] = "synthetic failure"
            else:
                measured[point] = truth(point)
        return measured, failed

    _measure.calls = calls
    return _measure


# ---------------------------------------------------------------------------
# Pareto primitives
# ---------------------------------------------------------------------------


class TestPareto:
    def test_front_of_a_known_set(self):
        metrics = [(1.0, 10.0), (2.0, 20.0), (3.0, 15.0), (0.5, 5.0),
                   (2.5, 20.0)]
        # (3,15) dominated by (2,20); (2.5,20) dominated by (2,20).
        assert pareto_indices(metrics) == [0, 1, 3]

    def test_single_point_is_its_own_front(self):
        assert pareto_indices([(1.0, 1.0)]) == [0]

    def test_deep_domination_band(self):
        metrics = [(1.0, 100.0), (1.05, 99.0), (10.0, 10.0)]
        # Point 1 is within 8% of the frontier point in both metrics.
        assert not deeply_dominated(metrics, 1, band_frac=0.08)
        # Point 2 is beaten by far more than 8% in both.
        assert deeply_dominated(metrics, 2, band_frac=0.08)
        assert not deeply_dominated(metrics, 0, band_frac=0.08)


# ---------------------------------------------------------------------------
# Grids
# ---------------------------------------------------------------------------


class TestGrids:
    def test_full_grid_is_acceptance_sized(self):
        grid = build_grid("full", LENGTH)
        assert len(grid) >= 500
        assert len({point.key() for point in grid}) == len(grid)

    def test_smoke_grid_is_ci_sized(self):
        assert len(build_grid("smoke", LENGTH)) <= 20

    def test_fig9_grid_matches_scheme_set(self):
        schemes = {p.scheme for p in build_grid("fig9", LENGTH)}
        assert "baseline" in schemes
        assert "doram+1/4" in schemes

    def test_unknown_preset_fails_clearly(self):
        with pytest.raises(ValueError):
            build_grid("nope", LENGTH)

    def test_grid_points_build_valid_configs(self):
        for point in build_grid("full", LENGTH)[::97]:
            config = config_for_point(point)
            assert config.trace_length == LENGTH


# ---------------------------------------------------------------------------
# The explore loop on a stubbed simulator
# ---------------------------------------------------------------------------


class TestExploreLoop:
    def test_budget_is_never_exceeded(self):
        grid = build_grid("full", LENGTH)
        measure = _measure_with(_family_affine_truth)
        result = explore(grid, budget_frac=0.1, measure=measure, seed=7)
        budget = int(len(grid) * 0.1)
        assert result.simulated <= budget
        assert result.budget == budget
        assert sum(len(batch) for batch in measure.calls) \
            == result.simulated
        assert result.sim_fraction <= 0.1

    def test_affine_truth_recovers_the_true_frontier(self):
        grid = build_grid("full", LENGTH)
        truths = [_family_affine_truth(p) for p in grid]
        true_front = {
            grid[i].label for i in pareto_indices(truths)
        }
        result = explore(
            grid, budget_frac=0.2,
            measure=_measure_with(_family_affine_truth), seed=3,
        )
        found = {row["label"] for row in result.frontier}
        assert true_front <= found, sorted(true_front - found)
        # And it genuinely skipped most of the grid doing it.
        assert result.des_points_skipped_frac >= 0.8
        # Calibration is exact here, so residual error ~ 0.
        assert result.latency_error["max"] < 1e-9
        assert result.goodput_error["max"] < 1e-9

    def test_reported_frontier_is_pareto_of_measured(self):
        grid = build_grid("full", LENGTH)
        result = explore(
            grid, budget_frac=0.15,
            measure=_measure_with(_family_affine_truth), seed=11,
        )
        rows = [(r["latency_us"], r["goodput_rps"])
                for r in result.frontier]
        # No frontier row dominates another.
        for i, (lat_i, good_i) in enumerate(rows):
            for j, (lat_j, good_j) in enumerate(rows):
                if i == j:
                    continue
                assert not (lat_j <= lat_i and good_j >= good_i
                            and (lat_j < lat_i or good_j > good_i)), \
                    (rows[i], rows[j])
        # Sorted by latency for the report.
        assert rows == sorted(rows)

    def test_same_seed_same_selection(self):
        grid = build_grid("full", LENGTH)
        first = explore(grid, budget_frac=0.1,
                        measure=_measure_with(_family_affine_truth),
                        seed=5)
        second = explore(grid, budget_frac=0.1,
                         measure=_measure_with(_family_affine_truth),
                         seed=5)
        assert first.to_json_dict() == second.to_json_dict()

    def test_failed_points_are_reported_not_fronted(self):
        grid = build_grid("smoke", LENGTH)
        # Fail whichever anchor comes first deterministically.
        all_labels = sorted(p.label for p in grid)
        bad = {all_labels[0]}
        result = explore(
            grid, budget_frac=1.0,
            measure=_measure_with(_family_affine_truth, failures=bad),
            seed=1,
        )
        assert set(result.failed) == bad
        assert bad.isdisjoint({r["label"] for r in result.frontier})

    def test_empty_grid_refused(self):
        with pytest.raises(ValueError):
            explore([], measure=_measure_with(_family_affine_truth))

    def test_bad_budget_refused(self):
        grid = build_grid("smoke", LENGTH)
        with pytest.raises(ValueError):
            explore(grid, budget_frac=0.0,
                    measure=_measure_with(_family_affine_truth))


# ---------------------------------------------------------------------------
# Reports and bench records
# ---------------------------------------------------------------------------


class TestReports:
    def _result(self):
        grid = build_grid("smoke", LENGTH)
        return explore(grid, budget_frac=0.5,
                       measure=_measure_with(_family_affine_truth),
                       seed=2)

    def test_json_round_trip(self, tmp_path):
        result = self._result()
        out = tmp_path / "surface.json"
        write_report(result, out_json=str(out))
        doc = json.loads(out.read_text())
        assert doc["grid_points"] == result.grid_points
        assert doc["simulated"] == result.simulated
        assert doc["frontier"] == result.frontier
        assert "latency_error" in doc and "calibration" in doc

    def test_markdown_mentions_the_headline_numbers(self, tmp_path):
        result = self._result()
        out = tmp_path / "surface.md"
        write_report(result, out_md=str(out))
        text = out.read_text()
        assert "Pareto" in text
        assert f"**{result.grid_points}**" in text
        assert "DES skipped" in text

    def test_bench_record_satisfies_the_explore_schema(self, tmp_path):
        import os
        import sys
        tools = os.path.join(os.path.dirname(__file__), "..", "..",
                             "tools")
        sys.path.insert(0, os.path.abspath(tools))
        try:
            import bench_trajectory
        finally:
            sys.path.pop(0)
        result = self._result()
        record = bench_record(result, "test", "smoke", LENGTH, 1.23)
        out = tmp_path / "BENCH_explore.json"
        appended = bench_trajectory.append(record, path=str(out))
        assert appended["workload"] == "explore"
        assert bench_trajectory.check(str(out)) == []

    def test_metrics_from_payload(self):
        payload = {
            "result": {
                "ns_read_latency": {"count": 4, "total": 64_000},
                "s_app": {"oram_accesses": 100},
                "end_time": 16_000_000,
            },
        }
        lat_us, goodput = metrics_from_payload(payload)
        assert lat_us == pytest.approx(1.0)       # 16k ticks = 1 us
        assert goodput == pytest.approx(1e5)      # 100 accesses / 1 ms
        empty_lat, empty_good = metrics_from_payload(
            {"result": {"ns_read_latency": {}, "end_time": 0}}
        )
        assert (empty_lat, empty_good) == (0.0, 0.0)


# ---------------------------------------------------------------------------
# Real-simulator integration (small grid, resumable store)
# ---------------------------------------------------------------------------


class TestRealSimulator:
    def test_smoke_grid_explores_and_resumes_from_store(self, tmp_path):
        grid = build_grid("smoke", 150)
        store = ResultStore(str(tmp_path / "store"))
        result = explore(grid, store=store, workers=1,
                         budget_frac=0.5, seed=1)
        assert 0 < result.simulated <= result.budget
        assert not result.failed
        assert result.frontier
        assert len(store) == result.simulated
        # Re-running over the same store re-simulates nothing and
        # reproduces the same surface.
        again = explore(grid, store=store, workers=1,
                        budget_frac=0.5, seed=1)
        assert again.to_json_dict() == result.to_json_dict()

    def test_queue_mode_multi_round_matches_serial(self, tmp_path):
        """Each explore round submits a *different* point set, so the
        queue path must declare a fresh batch directory per round
        instead of tripping the manifest-mismatch guard."""
        grid = build_grid("smoke", 150)
        serial = explore(
            grid, store=ResultStore(str(tmp_path / "serial")),
            workers=1, budget_frac=0.5, seed=1,
        )
        assert serial.rounds > 1  # the regression needs >= 2 batches
        queue_store = ResultStore(str(tmp_path / "store"))
        queued = explore(
            grid, store=queue_store, workers=2,
            queue_root=str(tmp_path / "queue"),
            budget_frac=0.5, seed=1,
        )
        doc = queued.to_json_dict()
        ref = serial.to_json_dict()
        doc.pop("store_root"), ref.pop("store_root")
        assert doc == ref
