"""Availability-scorer edge cases and properties (ISSUE 10 satellite).

The scorer is a pure function of (result, plan, slo_ns); these tests
drive it with synthetic duck-typed results so every edge case -- zero
completions, fault onset past sim end, everything-recovered -- is exact
and fast, plus hypothesis properties over random completion streams.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.availability import (
    AvailabilityReport,
    fault_onsets,
    score_scenario,
)
from repro.faults import DelegatorFault, DramFault, FaultPlan, LinkFault
from repro.sim.engine import TICKS_PER_NS, ns


def _result(horizon_ns=1000.0, offered=(4,), completions=((),)):
    """Duck-typed stand-in for ScenarioResult."""
    tenants = {
        str(t): {"offered": n, "completed": len(completions[t])}
        for t, n in enumerate(offered)
    }
    return SimpleNamespace(
        config=SimpleNamespace(horizon_ns=horizon_ns),
        tenants=tenants,
        tenant_completions={
            str(t): list(c) for t, c in enumerate(completions)
        },
    )


def _tick(value_ns):
    return ns(float(value_ns))


class TestEdgeCases:
    def test_zero_completed_requests(self):
        plan = FaultPlan(dram=(DramFault(rate=0.5, start_ns=10.0),))
        report = score_scenario(_result(offered=(4,)), plan, slo_ns=100.0)
        assert report.availability == 0.0
        assert report.goodput_rps == 0.0
        assert report.mttr_ns is None
        assert report.recovery_ns == {"p50": None, "p99": None,
                                      "p999": None}
        assert report.unrecovered == 1 and report.recovered == 0

    def test_zero_offered_requests(self):
        report = score_scenario(
            _result(offered=(0,)), FaultPlan(), slo_ns=100.0
        )
        assert report.availability == 0.0
        assert report.per_tenant["0"]["availability"] == 0.0

    def test_fault_window_past_sim_end(self):
        completions = (((_tick(50), _tick(10)),),)
        plan = FaultPlan(
            link=(LinkFault(kind="drop", start_ns=5000.0),)
        )
        report = score_scenario(
            _result(offered=(1,), completions=completions), plan,
            slo_ns=100.0,
        )
        # Onset after the only completion: nothing can witness recovery.
        assert report.fault_onsets == 1
        assert report.unrecovered == 1
        assert report.mttr_ns is None
        # ...but availability is unaffected by the idle fault.
        assert report.availability == 1.0

    def test_all_requests_recovered(self):
        completions = ((
            (_tick(100), _tick(20)),
            (_tick(200), _tick(30)),
        ),)
        plan = FaultPlan(
            delegator=(DelegatorFault(kind="stall", start_ns=40.0,
                                      duration_ns=10.0),),
            dram=(DramFault(rate=0.1, start_ns=150.0),),
        )
        report = score_scenario(
            _result(offered=(2,), completions=completions), plan,
            slo_ns=50.0,
        )
        assert report.recovered == 2 and report.unrecovered == 0
        # Onset 40 -> good tick 100; onset 150 -> good tick 200.
        assert report.mttr_ns == ((60 + 50) / 2)
        assert report.recovery_ns["p50"] == 50.0
        assert report.recovery_ns["p999"] == 60.0

    def test_slow_completions_do_not_witness_recovery(self):
        # One completion after the onset, but over SLO: not "good".
        completions = (((_tick(100), _tick(500)),),)
        plan = FaultPlan(dram=(DramFault(rate=0.1, start_ns=10.0),))
        report = score_scenario(
            _result(offered=(1,), completions=completions), plan,
            slo_ns=50.0,
        )
        assert report.within_slo == 0
        assert report.unrecovered == 1

    def test_onsets_deduped_and_sorted(self):
        plan = FaultPlan(
            link=(LinkFault(kind="drop", start_ns=20.0),
                  LinkFault(kind="corrupt", start_ns=5.0),),
            dram=(DramFault(rate=0.1, start_ns=20.0),),
        )
        assert fault_onsets(plan) == [ns(5.0), ns(20.0)]


_STREAMS = st.lists(
    st.lists(
        st.tuples(st.integers(0, 10**6), st.integers(0, 10**4)),
        max_size=20,
    ),
    min_size=1, max_size=4,
)


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(streams=_STREAMS, slo_ns=st.floats(1.0, 1000.0),
           extra_offered=st.integers(0, 5))
    def test_report_invariants(self, streams, slo_ns, extra_offered):
        offered = tuple(len(s) + extra_offered for s in streams)
        plan = FaultPlan(dram=(DramFault(rate=0.1, start_ns=100.0),))
        report = score_scenario(
            _result(offered=offered, completions=tuple(streams)),
            plan, slo_ns=slo_ns,
        )
        assert 0.0 <= report.availability <= 1.0
        assert report.within_slo <= report.completed
        assert report.completed == sum(len(s) for s in streams)
        assert report.recovered + report.unrecovered == report.fault_onsets
        assert report.slo_goodput_rps <= report.goodput_rps

    @settings(max_examples=25, deadline=None)
    @given(streams=_STREAMS, lo=st.floats(1.0, 500.0),
           extra=st.floats(0.0, 500.0))
    def test_availability_monotone_in_slo(self, streams, lo, extra):
        offered = tuple(len(s) for s in streams)
        result = _result(offered=offered, completions=tuple(streams))
        loose = score_scenario(result, FaultPlan(), slo_ns=lo + extra)
        tight = score_scenario(result, FaultPlan(), slo_ns=lo)
        assert loose.availability >= tight.availability

    def test_report_round_trips_to_json(self):
        completions = (((_tick(10), _tick(5)),),)
        report = score_scenario(
            _result(offered=(1,), completions=completions),
            FaultPlan(), slo_ns=100.0,
        )
        doc = report.to_json_dict()
        assert doc["availability"] == 1.0
        assert AvailabilityReport(**doc).to_json_dict() == doc
