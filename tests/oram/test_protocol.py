"""Greedy eviction and protocol state."""

import pytest

from repro.oram.config import OramConfig
from repro.oram.protocol import ProtocolState, greedy_evict
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry


def geometry(leaf_level=3):
    return TreeGeometry(OramConfig(
        leaf_level=leaf_level, treetop_levels=0, subtree_levels=2,
    ))


class TestGreedyEvict:
    def test_block_lands_as_deep_as_possible(self):
        g = geometry()
        stash = Stash()
        stash.put(1, leaf=5, payload=None)
        plan = greedy_evict(g, stash, leaf=5, bucket_size=4)
        leaf_bucket = g.path_buckets(5)[-1]
        assert plan[leaf_bucket] == [1]

    def test_divergent_block_stops_at_shared_level(self):
        g = geometry()  # leaves 0..7
        stash = Stash()
        stash.put(1, leaf=7, payload=None)  # shares only the root with leaf 0
        plan = greedy_evict(g, stash, leaf=0, bucket_size=4)
        assert plan[1] == [1]  # root
        for bucket, ids in plan.items():
            if bucket != 1:
                assert ids == []

    def test_bucket_capacity_respected(self):
        g = geometry()
        stash = Stash()
        for i in range(10):
            stash.put(i, leaf=5, payload=None)
        plan = greedy_evict(g, stash, leaf=5, bucket_size=4)
        assert all(len(ids) <= 4 for ids in plan.values())
        placed = [b for ids in plan.values() for b in ids]
        assert len(placed) == len(set(placed))  # no double placement

    def test_every_path_bucket_in_plan(self):
        g = geometry()
        plan = greedy_evict(g, Stash(), leaf=3, bucket_size=4)
        assert set(plan) == set(g.path_buckets(3))

    def test_deeper_spot_preferred_over_root(self):
        g = geometry()
        stash = Stash()
        # Leaf 4 shares levels 0..1 with leaf 5 (parent of leaves 4,5).
        stash.put(1, leaf=4, payload=None)
        plan = greedy_evict(g, stash, leaf=5, bucket_size=4)
        level2_bucket = g.bucket_on_path(5, 2)
        assert plan[level2_bucket] == [1]

    def test_placement_always_on_assigned_path(self):
        g = geometry(leaf_level=5)
        stash = Stash()
        import random
        rng = random.Random(4)
        for i in range(40):
            stash.put(i, leaf=rng.randrange(32), payload=None)
        leaf = 17
        plan = greedy_evict(g, stash, leaf, bucket_size=4)
        for bucket, ids in plan.items():
            level = g.level_of(bucket)
            for block_id in ids:
                block_leaf = stash.get(block_id)[0]
                assert g.bucket_on_path(block_leaf, level) == bucket


class TestProtocolState:
    def test_access_begin_remaps(self):
        state = ProtocolState(OramConfig(leaf_level=6, treetop_levels=0,
                                         subtree_levels=2), seed=1)
        old, new = state.access_begin(5)
        assert state.position_map.lookup(5) == new
        assert state.real_accesses == 1

    def test_dummy_path_in_range(self):
        cfg = OramConfig(leaf_level=5, treetop_levels=0, subtree_levels=2)
        state = ProtocolState(cfg, seed=2)
        for _ in range(50):
            assert 0 <= state.dummy_path() < cfg.num_leaves
        assert state.dummy_accesses == 50

    def test_lazy_vs_dense_selectable(self):
        cfg = OramConfig(leaf_level=5, treetop_levels=0, subtree_levels=2)
        from repro.oram.position_map import DensePositionMap, LazyPositionMap
        assert isinstance(ProtocolState(cfg, lazy=True).position_map,
                          LazyPositionMap)
        assert isinstance(ProtocolState(cfg, lazy=False).position_map,
                          DensePositionMap)
