"""Position maps: dense and lazy."""

import pytest

from repro.oram.position_map import DensePositionMap, LazyPositionMap


class TestDense:
    def test_lookup_in_range(self):
        pm = DensePositionMap(100, 16, seed=1)
        assert all(0 <= pm.lookup(b) < 16 for b in range(100))

    def test_remap_changes_distribution(self):
        pm = DensePositionMap(1, 1 << 20, seed=1)
        old = pm.lookup(0)
        news = {pm.remap(0) for _ in range(5)}
        assert news != {old}

    def test_remap_persists(self):
        pm = DensePositionMap(10, 64, seed=2)
        leaf = pm.remap(3)
        assert pm.lookup(3) == leaf

    def test_seeded_reproducible(self):
        a = DensePositionMap(50, 32, seed=9)
        b = DensePositionMap(50, 32, seed=9)
        assert [a.lookup(i) for i in range(50)] == \
               [b.lookup(i) for i in range(50)]

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            DensePositionMap(10, 0)


class TestLazy:
    def test_first_touch_assignment_stable(self):
        pm = LazyPositionMap(1 << 30, 1 << 23, seed=1)
        leaf = pm.lookup(12345)
        assert pm.lookup(12345) == leaf

    def test_memory_proportional_to_touched(self):
        pm = LazyPositionMap(1 << 30, 1 << 23, seed=1)
        for b in range(100):
            pm.lookup(b)
        assert pm.touched == 100
        assert len(pm) == 1 << 30

    def test_remap_materializes(self):
        pm = LazyPositionMap(1000, 64, seed=3)
        pm.remap(7)
        assert pm.touched == 1

    def test_range_checked(self):
        pm = LazyPositionMap(10, 64, seed=1)
        with pytest.raises(ValueError):
            pm.lookup(10)
        with pytest.raises(ValueError):
            pm.remap(-1)

    def test_leaves_uniformish(self):
        pm = LazyPositionMap(4000, 4, seed=5)
        counts = [0, 0, 0, 0]
        for b in range(4000):
            counts[pm.lookup(b)] += 1
        assert min(counts) > 800  # each leaf ~1000 +- noise
