"""Property-based tests (hypothesis) for the Path ORAM protocol proper.

``test_properties.py`` covers the dict abstraction, eviction planning and
the codec; these properties target the protocol-state invariants the
paper's Section III leans on:

* stash occupancy stays bounded across arbitrary read/write/dummy mixes
  (not just uniform reads), both at the post-access steady state and at
  the mid-access peak;
* the position map always names a leaf whose root-to-leaf path is
  exactly the bucket set the access fetches (recorded via
  ``trace_hook``), and write-back only touches fetched buckets;
* every block lives in exactly one of {tree, stash} -- presence, which
  ``check_invariants`` (a duplicate/placement scan) does not assert.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram

SMALL = OramConfig(leaf_level=5, treetop_levels=1, subtree_levels=2)

# One operation: (kind, block_id_fraction, byte_value) where kind is
# 0 = read, 1 = write, 2 = dummy access.
ops_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=0.999),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=80,
)


def _apply(oram, op):
    """Run one generated operation; returns the block id or None."""
    kind, frac, value = op
    if kind == 2:
        oram.dummy_access()
        return None
    block = int(frac * oram.config.num_user_blocks)
    if kind == 1:
        oram.write(block, bytes([value]) * oram.config.block_bytes)
    else:
        oram.read(block)
    return block


def _tree_occurrences(oram, block_id):
    """Buckets currently holding ``block_id`` (heap indices)."""
    return [
        bucket
        for bucket in oram.geometry.iter_buckets()
        for block in oram._decode(bucket, oram._buckets[bucket])
        if block.block_id == block_id
    ]


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_stash_bounded_under_arbitrary_mixes(ops, seed):
    """Occupancy stays bounded after *every* access, not just at the end.

    The steady-state stash (after write-back) holds only blocks whose
    path was full at every shared level -- a handful for this geometry.
    The peak (mid-access, with a whole path spilled in) adds at most
    (leaf_level+1) * Z blocks on top.
    """
    oram = PathOram(SMALL, seed=seed, stash_capacity=200)
    path_blocks = (SMALL.leaf_level + 1) * SMALL.bucket_size
    for op in ops:
        _apply(oram, op)
        assert len(oram.stash) <= 30
    assert oram.stash.peak <= 30 + path_blocks
    oram.check_invariants()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_position_map_names_the_fetched_path(ops, seed):
    """The leaf looked up before an access is exactly the path fetched.

    Records the physical bucket trace through ``trace_hook`` and checks,
    per access: the read burst is precisely ``path_buckets(old_leaf)``
    root-to-leaf, and write-back stores only into fetched buckets.
    """
    trace = []
    oram = PathOram(SMALL, seed=seed,
                    trace_hook=lambda kind, b: trace.append((kind, b)))
    pm = oram.state.position_map
    for op in ops:
        kind, frac, _value = op
        block = int(frac * oram.config.num_user_blocks)
        expected_leaf = None if kind == 2 else pm.lookup(block)
        trace.clear()
        _apply(oram, op)
        reads = [b for k, b in trace if k == "read"]
        writes = [b for k, b in trace if k == "write"]
        if expected_leaf is not None:
            assert reads == oram.geometry.path_buckets(expected_leaf)
        else:
            # Dummy accesses still fetch a full, well-formed path.
            assert len(reads) == SMALL.leaf_level + 1
            leaf = reads[-1] - oram.geometry.num_leaves
            assert reads == oram.geometry.path_buckets(leaf)
        assert set(writes) <= set(reads)
        # After the access the block's fresh leaf is a valid path again.
        if expected_leaf is not None:
            new_leaf = pm.lookup(block)
            assert 0 <= new_leaf < oram.config.num_leaves


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_every_block_in_exactly_one_place(ops, seed):
    """Touched blocks live in exactly one of {tree, stash} -- presence.

    ``check_invariants`` rejects duplicates and off-path placement but
    cannot notice a block that vanished entirely; this scan can.
    """
    oram = PathOram(SMALL, seed=seed)
    touched = set()
    for op in ops:
        block = _apply(oram, op)
        if block is not None:
            touched.add(block)
    for block_id in touched:
        in_tree = _tree_occurrences(oram, block_id)
        in_stash = 1 if block_id in oram.stash else 0
        assert len(in_tree) + in_stash == 1, (
            f"block {block_id}: tree buckets {in_tree}, "
            f"stash={bool(in_stash)}"
        )
        # And the copy is tagged with the position map's current leaf.
        leaf = oram.state.position_map.lookup(block_id)
        if in_stash:
            assert oram.stash.get(block_id)[0] == leaf
        else:
            level = oram.geometry.level_of(in_tree[0])
            assert oram.geometry.bucket_on_path(leaf, level) == in_tree[0]
    oram.check_invariants()
