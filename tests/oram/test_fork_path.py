"""Fork Path read merging in the timing controller."""

import pytest

from repro.dram.commands import OpType
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.sim.engine import Engine

HOME = [(0, 0), (0, 1), (0, 2), (0, 3)]


class CountingSink:
    def __init__(self, engine):
        self.engine = engine
        self.reads = []
        self.writes = []

    def try_issue(self, placement, op, on_complete):
        (self.writes if op is OpType.WRITE else self.reads).append(placement)
        self.engine.after(10, lambda: on_complete(self.engine.now))
        return True

    def notify_on_space(self, callback):
        raise AssertionError("unbounded sink never lacks space")


def run_accesses(leaves, fork_path):
    eng = Engine()
    cfg = OramConfig(leaf_level=6, treetop_levels=0, subtree_levels=2)
    layout = OramLayout(cfg, HOME)
    sink = CountingSink(eng)
    ctrl = OramController(eng, cfg, layout, sink, seed=1,
                          fork_path=fork_path)
    # Drive fixed leaves by monkey-patching the dummy path source.
    leaf_iter = iter(leaves)
    ctrl.state.dummy_path = lambda: next(leaf_iter)
    for _ in leaves:
        ctrl.begin_read(None, lambda t: None)
        eng.run()
        ctrl.begin_write(lambda t: None)
        eng.run()
    return cfg, sink, ctrl


class TestForkPath:
    def test_identical_paths_skip_all_reads_second_time(self):
        cfg, sink, ctrl = run_accesses([5, 5], fork_path=True)
        per_path = cfg.num_levels * cfg.bucket_size
        # First access reads the full path, second reads nothing.
        assert len(sink.reads) == per_path
        assert ctrl.stats.counter("fork_skipped_blocks").value == per_path

    def test_disjoint_leaves_share_only_root_prefix(self):
        # Leaves 0 and 63 in a 6-level tree share only the root.
        cfg, sink, ctrl = run_accesses([0, 63], fork_path=True)
        skipped = ctrl.stats.counter("fork_skipped_blocks").value
        assert skipped == cfg.bucket_size  # the root bucket's Z blocks

    def test_writes_never_skipped(self):
        cfg, sink, _ = run_accesses([5, 5], fork_path=True)
        per_path = cfg.num_levels * cfg.bucket_size
        assert len(sink.writes) == 2 * per_path

    def test_disabled_by_default(self):
        cfg, sink, ctrl = run_accesses([5, 5], fork_path=False)
        per_path = cfg.num_levels * cfg.bucket_size
        assert len(sink.reads) == 2 * per_path
        assert ctrl.stats.counter("fork_skipped_blocks").value == 0

    def test_overlap_resets_each_access(self):
        # a -> b -> a: the third access overlaps with b's path, not a's.
        cfg, sink, ctrl = run_accesses([0, 63, 0], fork_path=True)
        skipped = ctrl.stats.counter("fork_skipped_blocks").value
        # Each consecutive pair shares exactly the root.
        assert skipped == 2 * cfg.bucket_size
