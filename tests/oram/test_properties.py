"""Property-based tests (hypothesis) on the ORAM core invariants."""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.crypto.codec import EncryptedBucketCodec, PlainCodec
from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.oram.protocol import greedy_evict
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry

SMALL = OramConfig(leaf_level=5, treetop_levels=1, subtree_levels=2)

# Operation: (block_id_fraction, is_write, byte_value)
ops_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.999),
        st.booleans(),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_oram_behaves_like_a_dict(ops, seed):
    """Reads always return the most recent write (or zeros)."""
    oram = PathOram(SMALL, seed=seed)
    reference = {}
    n = oram.config.num_user_blocks
    for frac, is_write, value in ops:
        block = int(frac * n)
        if is_write:
            data = bytes([value]) * 64
            oram.write(block, data)
            reference[block] = data
        else:
            assert oram.read(block) == reference.get(block, bytes(64))
    oram.check_invariants()


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_oram_invariants_with_encryption(ops, seed):
    """The dict property survives the encrypted bucket codec."""
    oram = PathOram(SMALL, seed=seed,
                    codec=EncryptedBucketCodec(b"K" * 16))
    reference = {}
    n = oram.config.num_user_blocks
    for frac, is_write, value in ops[:30]:
        block = int(frac * n)
        if is_write:
            data = bytes([value]) * 64
            oram.write(block, data)
            reference[block] = data
        else:
            assert oram.read(block) == reference.get(block, bytes(64))
    oram.check_invariants()


@settings(max_examples=60, deadline=None)
@given(
    leaf_level=st.integers(min_value=1, max_value=8),
    leaves=st.data(),
)
def test_greedy_evict_never_misplaces(leaf_level, leaves):
    """Eviction plans always respect path membership and Z."""
    cfg = OramConfig(leaf_level=leaf_level, treetop_levels=0,
                     subtree_levels=1)
    geometry = TreeGeometry(cfg)
    stash = Stash(capacity=None)
    count = leaves.draw(st.integers(min_value=0, max_value=30))
    for i in range(count):
        leaf = leaves.draw(st.integers(min_value=0,
                                       max_value=cfg.num_leaves - 1))
        stash.put(i, leaf, None)
    target = leaves.draw(st.integers(min_value=0,
                                     max_value=cfg.num_leaves - 1))
    plan = greedy_evict(geometry, stash, target, cfg.bucket_size)

    placed = [b for ids in plan.values() for b in ids]
    assert len(placed) == len(set(placed))
    for bucket, ids in plan.items():
        assert len(ids) <= cfg.bucket_size
        level = geometry.level_of(bucket)
        for block_id in ids:
            leaf = stash.get(block_id)[0]
            assert geometry.bucket_on_path(leaf, level) == bucket


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    n_ops=st.integers(min_value=1, max_value=120),
)
def test_stash_bounded_under_uniform_load(seed, n_ops):
    """Stash occupancy stays far below the theoretical alarm line."""
    oram = PathOram(SMALL, seed=seed, stash_capacity=120)
    rng = random.Random(seed)
    for _ in range(n_ops):
        oram.read(rng.randrange(oram.config.num_user_blocks))
    assert oram.stash.peak <= 60


@settings(max_examples=40, deadline=None)
@given(
    key_byte=st.integers(min_value=0, max_value=255),
    blocks=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1000),
                  st.integers(min_value=0, max_value=63),
                  st.binary(min_size=64, max_size=64)),
        max_size=4, unique_by=lambda t: t[0],
    ),
    bucket=st.integers(min_value=1, max_value=10_000),
)
def test_codec_round_trip_property(key_byte, blocks, bucket):
    codec = EncryptedBucketCodec(bytes([key_byte]) * 16)
    raw = codec.encode_bucket(bucket, blocks, 4, 64)
    assert codec.decode_bucket(bucket, raw, 4, 64) == blocks
    # Image size never varies with content.
    assert len(raw) == codec.image_bytes(4, 64)


@settings(max_examples=60, deadline=None)
@given(
    leaf_level=st.integers(min_value=2, max_value=10),
    leaf_frac=st.floats(min_value=0.0, max_value=0.999),
    level_frac=st.floats(min_value=0.0, max_value=0.999),
)
def test_bucket_on_path_consistent_with_leaf_range(
    leaf_level, leaf_frac, level_frac
):
    """A leaf's path bucket at level l always contains that leaf's range."""
    cfg = OramConfig(leaf_level=leaf_level, treetop_levels=0,
                     subtree_levels=1)
    g = TreeGeometry(cfg)
    leaf = int(leaf_frac * cfg.num_leaves)
    level = int(level_frac * (leaf_level + 1))
    bucket = g.bucket_on_path(leaf, level)
    assert leaf in g.leaf_range(bucket)
    assert g.level_of(bucket) == level
