"""ORAM tree geometry arithmetic."""

import pytest

from repro.oram.config import OramConfig
from repro.oram.tree import TreeGeometry


def geometry(leaf_level=4):
    return TreeGeometry(OramConfig(
        leaf_level=leaf_level, treetop_levels=0, subtree_levels=2,
    ))


class TestConfigGeometry:
    def test_paper_defaults(self):
        cfg = OramConfig()
        assert cfg.num_levels == 24
        assert cfg.num_leaves == 1 << 23
        assert cfg.num_buckets == (1 << 24) - 1
        # "one phase accesses ... 21x4 blocks if top 3 cached" (II-B1).
        assert cfg.levels_fetched == 21
        assert cfg.blocks_per_phase == 84

    def test_4gb_tree(self):
        cfg = OramConfig()
        assert cfg.tree_bytes == pytest.approx(4 * 2**30, rel=0.01)

    def test_user_blocks_half_capacity(self):
        cfg = OramConfig()
        assert cfg.num_user_blocks == cfg.capacity_blocks // 2

    def test_scaled_preserves_shape(self):
        small = OramConfig().scaled(8)
        assert small.leaf_level == 8
        assert small.bucket_size == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            OramConfig(leaf_level=-1)
        with pytest.raises(ValueError):
            OramConfig(treetop_levels=99)
        with pytest.raises(ValueError):
            OramConfig(utilization=0.0)


class TestPaths:
    def test_root_is_bucket_one(self):
        g = geometry()
        assert g.path_buckets(0)[0] == 1

    def test_path_length(self):
        g = geometry(leaf_level=4)
        assert len(g.path_buckets(7)) == 5

    def test_leaf_bucket_index(self):
        g = geometry(leaf_level=4)
        assert g.path_buckets(7)[-1] == (1 << 4) + 7

    def test_path_is_parent_chain(self):
        g = geometry(leaf_level=6)
        path = g.path_buckets(37)
        for parent, child in zip(path, path[1:]):
            assert child // 2 == parent

    def test_bucket_on_path_matches_full_path(self):
        g = geometry(leaf_level=5)
        for leaf in (0, 13, 31):
            path = g.path_buckets(leaf)
            for level, bucket in enumerate(path):
                assert g.bucket_on_path(leaf, level) == bucket

    def test_level_of(self):
        g = geometry(leaf_level=4)
        assert g.level_of(1) == 0
        assert g.level_of(2) == 1
        assert g.level_of(3) == 1
        assert g.level_of(16) == 4

    def test_on_same_path(self):
        g = geometry(leaf_level=3)
        # Leaves 0 and 1 share everything except the leaf level.
        assert g.on_same_path(0, 1, 2)
        assert not g.on_same_path(0, 1, 3)
        # Leaves 0 and 7 share only the root.
        assert g.on_same_path(0, 7, 0)
        assert not g.on_same_path(0, 7, 1)

    def test_leaf_range(self):
        g = geometry(leaf_level=3)
        assert list(g.leaf_range(1)) == list(range(8))
        assert list(g.leaf_range(2)) == [0, 1, 2, 3]
        assert list(g.leaf_range(3)) == [4, 5, 6, 7]
        assert list(g.leaf_range(8)) == [0]

    def test_buckets_at_level(self):
        g = geometry(leaf_level=3)
        assert list(g.buckets_at_level(0)) == [1]
        assert list(g.buckets_at_level(2)) == [4, 5, 6, 7]

    def test_bounds_checked(self):
        g = geometry(leaf_level=3)
        with pytest.raises(ValueError):
            g.path_buckets(8)
        with pytest.raises(ValueError):
            g.bucket_on_path(0, 4)
        with pytest.raises(ValueError):
            g.level_of(0)
        with pytest.raises(ValueError):
            g.level_of(16)
