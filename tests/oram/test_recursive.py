"""Recursive position-map ORAM."""

import random

import pytest

from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.oram.recursive import RecursivePathOram

CFG = OramConfig(leaf_level=8, treetop_levels=0, subtree_levels=1)


class TestExternalPositions:
    def test_access_at_requires_flag(self):
        oram = PathOram(CFG, seed=1)
        with pytest.raises(RuntimeError):
            oram.access_at(0, 0, 1)

    def test_access_at_round_trip(self):
        oram = PathOram(CFG, seed=1, external_positions=True)
        oram.access_at(5, old_leaf=10, new_leaf=20,
                       mutate=lambda _d: b"\x77" * 64)
        assert oram.access_at(5, old_leaf=20, new_leaf=30) == b"\x77" * 64
        oram.check_invariants()

    def test_mutate_returns_pre_image(self):
        oram = PathOram(CFG, seed=1, external_positions=True)
        oram.access_at(5, 0, 1, mutate=lambda _d: b"\x11" * 64)
        pre = oram.access_at(5, 1, 2, mutate=lambda _d: b"\x22" * 64)
        assert pre == b"\x11" * 64

    def test_mutate_must_preserve_size(self):
        oram = PathOram(CFG, seed=1, external_positions=True)
        with pytest.raises(ValueError):
            oram.access_at(5, 0, 1, mutate=lambda _d: b"short")


class TestRecursion:
    def test_recursion_depth(self):
        # 2^8 leaves -> ~2000 user blocks -> /8 -> 256 -> /8 -> 32 <= 64.
        oram = RecursivePathOram(CFG, client_entries=64, seed=3)
        assert oram.num_levels == 3
        assert len(oram.client_map) <= 64

    def test_degenerate_single_level(self):
        small = OramConfig(leaf_level=3, treetop_levels=0, subtree_levels=1)
        oram = RecursivePathOram(small, client_entries=10_000, seed=1)
        assert oram.num_levels == 1
        oram.write(3, b"\x12" * 64)
        assert oram.read(3) == b"\x12" * 64

    def test_read_returns_last_write(self):
        oram = RecursivePathOram(CFG, seed=5)
        oram.write(100, b"\xAB" * 64)
        oram.write(101, b"\xCD" * 64)
        assert oram.read(100) == b"\xAB" * 64
        assert oram.read(101) == b"\xCD" * 64

    def test_unwritten_reads_zero(self):
        oram = RecursivePathOram(CFG, seed=5)
        assert oram.read(42) == bytes(64)

    def test_random_operations(self):
        oram = RecursivePathOram(CFG, seed=7)
        rng = random.Random(0)
        reference = {}
        for _ in range(150):
            block = rng.randrange(oram.num_user_blocks)
            if rng.random() < 0.5:
                data = bytes([rng.randrange(256)]) * 64
                oram.write(block, data)
                reference[block] = data
            else:
                assert oram.read(block) == reference.get(block, bytes(64))
        oram.check_invariants()

    def test_access_amplification_reported(self):
        oram = RecursivePathOram(CFG, seed=3)
        assert oram.paths_per_access() == oram.num_levels

    def test_map_updates_survive_repeat_access(self):
        # The killer bug in recursive ORAMs is a stale map entry; hammer
        # one block through many remaps.
        oram = RecursivePathOram(CFG, seed=9)
        oram.write(17, b"\x55" * 64)
        for _ in range(30):
            assert oram.read(17) == b"\x55" * 64
        oram.check_invariants()

    def test_invariants_across_levels(self):
        oram = RecursivePathOram(CFG, seed=11)
        for i in range(40):
            oram.write(i * 13 % oram.num_user_blocks, bytes([i]) * 64)
        oram.check_invariants()
