"""Physical tree layout: subtree packing, tree-top cache, k-split."""

import pytest

from repro.oram.config import OramConfig
from repro.oram.layout import OramLayout

HOME = [(0, 0), (0, 1), (0, 2), (0, 3)]
REMOTE = [(1, 0), (2, 0), (3, 0)]


def make_layout(leaf_level=9, treetop=3, subtree=3, split_k=0):
    cfg = OramConfig(leaf_level=leaf_level, treetop_levels=treetop,
                     subtree_levels=subtree)
    return OramLayout(
        cfg, HOME,
        home_levels=cfg.num_levels - split_k,
        remote_targets=REMOTE if split_k else (),
    ), cfg


class TestTreeTopCache:
    def test_cached_buckets_have_no_placement(self):
        layout, cfg = make_layout()
        for level in range(cfg.treetop_levels):
            for bucket in layout.tree.buckets_at_level(level):
                assert layout.is_cached(bucket)
                assert layout.place(bucket, 0) is None

    def test_uncached_buckets_place(self):
        layout, cfg = make_layout()
        bucket = 1 << cfg.treetop_levels  # first uncached bucket
        assert layout.place(bucket, 0) is not None

    def test_path_placements_skip_cached_levels(self):
        layout, cfg = make_layout()
        placements = layout.path_placements(0)
        expected = (cfg.num_levels - cfg.treetop_levels) * cfg.bucket_size
        assert len(placements) == expected


class TestSlotStriping:
    def test_slots_stripe_across_subchannels(self):
        layout, cfg = make_layout()
        bucket = 1 << cfg.treetop_levels
        targets = [
            (layout.place(bucket, s).channel, layout.place(bucket, s).subchannel)
            for s in range(4)
        ]
        assert targets == HOME

    def test_placements_unique(self):
        layout, cfg = make_layout()
        seen = set()
        for bucket in layout.tree.iter_buckets():
            if layout.is_cached(bucket):
                continue
            for slot in range(cfg.bucket_size):
                p = layout.place(bucket, slot)
                key = (p.channel, p.subchannel, p.bank, p.row, p.col)
                assert key not in seen, f"collision at bucket {bucket}"
                seen.add(key)

    def test_slot_out_of_range(self):
        layout, _ = make_layout()
        with pytest.raises(ValueError):
            layout.place(8, 4)


class TestSubtreePacking:
    def test_packed_indices_are_a_permutation(self):
        layout, cfg = make_layout()
        indices = [
            layout.packed_index(b) for b in layout.tree.iter_buckets()
            if not layout.is_cached(b)
        ]
        assert sorted(indices) == list(range(len(indices)))

    def test_subtree_buckets_contiguous(self):
        # All buckets of one subtree occupy a contiguous index range of
        # size (2^h - 1) -- the property that creates row-buffer hits.
        layout, cfg = make_layout(leaf_level=8, treetop=3, subtree=3)
        subtree_size = (1 << 3) - 1
        root = 1 << 3  # first subtree root at level 3
        members = [root]
        for depth in range(1, 3):
            members.extend(range(root << depth, (root << depth) + (1 << depth)))
        indices = sorted(layout.packed_index(b) for b in members)
        assert indices == list(range(indices[0], indices[0] + subtree_size))

    def test_path_in_subtree_is_dense(self):
        # A path's buckets inside one subtree sit within the subtree's
        # small index window -> same DRAM row per sub-channel.
        layout, cfg = make_layout(leaf_level=8, treetop=3, subtree=3)
        path = layout.tree.path_buckets(37)
        in_first_segment = [b for b in path
                            if 3 <= layout.tree.level_of(b) < 6]
        idx = [layout.packed_index(b) for b in in_first_segment]
        assert max(idx) - min(idx) < (1 << 3) - 1

    def test_row_locality_of_path(self):
        # With 7-level subtrees and 128-line rows, one path's blocks per
        # sub-channel fall into few distinct rows.
        cfg = OramConfig(leaf_level=16, treetop_levels=3, subtree_levels=7)
        layout = OramLayout(cfg, HOME)
        placements = [p for p in layout.path_placements(12345)
                      if (p.channel, p.subchannel) == (0, 0)]
        rows = {(p.bank, p.row) for p in placements}
        # 14 blocks on sub-channel 0 (2 subtree segments) -> ~2-4 rows.
        assert len(rows) <= 5


class TestSplit:
    def test_home_levels_stay_local(self):
        layout, cfg = make_layout(split_k=2)
        for bucket in layout.tree.buckets_at_level(cfg.leaf_level - 2):
            p = layout.place(bucket, 0)
            assert not p.remote
            assert p.channel == 0

    def test_split_levels_are_remote(self):
        layout, cfg = make_layout(split_k=2)
        for bucket in list(layout.tree.buckets_at_level(cfg.leaf_level))[:16]:
            for slot in range(4):
                p = layout.place(bucket, slot)
                assert p.remote
                assert p.channel in (1, 2, 3)

    def test_first_block_rotates_channels(self):
        # Fig. 7: slot 0 of consecutive relocated buckets alternates
        # across the three normal channels.
        layout, cfg = make_layout(split_k=1)
        level = cfg.leaf_level
        buckets = list(layout.tree.buckets_at_level(level))[:6]
        chans = [layout.place(b, 0).channel for b in buckets]
        assert chans == [1, 2, 3, 1, 2, 3]

    def test_fixed_slots_map_to_fixed_channels(self):
        layout, cfg = make_layout(split_k=1)
        bucket = next(iter(layout.tree.buckets_at_level(cfg.leaf_level)))
        assert layout.place(bucket, 1).channel == 1
        assert layout.place(bucket, 2).channel == 2
        assert layout.place(bucket, 3).channel == 3

    def test_remote_placements_unique(self):
        layout, cfg = make_layout(leaf_level=7, treetop=2, subtree=3,
                                  split_k=2)
        seen = set()
        for level in (cfg.leaf_level - 1, cfg.leaf_level):
            for bucket in layout.tree.buckets_at_level(level):
                for slot in range(4):
                    p = layout.place(bucket, slot)
                    key = (p.channel, p.subchannel, p.bank, p.row, p.col)
                    assert key not in seen
                    seen.add(key)

    def test_channel_share_matches_table1(self):
        for k, secure_expected, normal_expected in (
            (1, 0.500, 0.167), (2, 0.250, 0.250), (3, 0.125, 0.292),
        ):
            cfg = OramConfig(leaf_level=12 + k, treetop_levels=3,
                             subtree_levels=5)
            layout = OramLayout(cfg, HOME,
                                home_levels=cfg.num_levels - k,
                                remote_targets=REMOTE)
            shares = layout.channel_share()
            assert shares[0] == pytest.approx(secure_expected, abs=0.01)
            for ch in (1, 2, 3):
                assert shares[ch] == pytest.approx(normal_expected, abs=0.01)

    def test_split_requires_remote_targets(self):
        cfg = OramConfig(leaf_level=6, treetop_levels=2, subtree_levels=3)
        with pytest.raises(ValueError):
            OramLayout(cfg, HOME, home_levels=cfg.num_levels - 1)
