"""Ring ORAM: correctness, invariants, bandwidth advantage."""

import random

import pytest

from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.oram.ring_oram import RingOram, RingParams

CFG = OramConfig(leaf_level=5, treetop_levels=0, subtree_levels=2)


def make_ring(**kw):
    return RingOram(CFG, seed=3, **kw)


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            RingParams(bucket_real=0)
        with pytest.raises(ValueError):
            RingParams(evict_rate=0)

    def test_z_must_match_config(self):
        with pytest.raises(ValueError):
            RingOram(CFG, params=RingParams(bucket_real=8))

    def test_large_tree_rejected(self):
        with pytest.raises(ValueError):
            RingOram(OramConfig(leaf_level=20))


class TestCorrectness:
    def test_unwritten_reads_zero(self):
        assert make_ring().read(0) == bytes(64)

    def test_write_then_read(self):
        ring = make_ring()
        ring.write(7, b"\x44" * 64)
        assert ring.read(7) == b"\x44" * 64

    def test_random_operations_match_reference(self):
        ring = make_ring()
        rng = random.Random(1)
        reference = {}
        for _ in range(300):
            block = rng.randrange(CFG.num_user_blocks)
            if rng.random() < 0.5:
                data = bytes([rng.randrange(256)]) * 64
                ring.write(block, data)
                reference[block] = data
            else:
                assert ring.read(block) == reference.get(block, bytes(64))
        ring.check_invariants()

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            make_ring().write(0, b"x")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            make_ring().read(CFG.num_user_blocks)


class TestInvariantsAndMaintenance:
    def test_invariants_under_load(self):
        ring = make_ring()
        rng = random.Random(9)
        for i in range(150):
            ring.write(rng.randrange(CFG.num_user_blocks),
                       bytes([i % 256]) * 64)
            if i % 25 == 0:
                ring.check_invariants()
        ring.check_invariants()

    def test_stash_bounded(self):
        ring = make_ring()
        rng = random.Random(2)
        for _ in range(400):
            ring.read(rng.randrange(CFG.num_user_blocks))
        assert ring.stash.peak < 120

    def test_eviction_happens_at_rate(self):
        ring = make_ring(params=RingParams(evict_rate=2))
        for i in range(10):
            ring.read(i)
        # 5 eviction paths of (L+1) buckets each have been rewritten.
        assert ring.blocks_written >= 5 * CFG.num_levels * 4

    def test_reverse_lex_order_covers_leaves(self):
        ring = make_ring()
        leaves = {ring._reverse_lex_leaf(i) for i in range(CFG.num_leaves)}
        assert leaves == set(range(CFG.num_leaves))


class TestBandwidth:
    def test_online_cost_is_one_block_per_level(self):
        ring = make_ring(params=RingParams(evict_rate=10**9, dummies=10**6))
        before = ring.blocks_read
        ring.read(0)
        # Pure online phase: exactly one block per path bucket.
        assert ring.blocks_read - before == CFG.num_levels

    def test_amortized_cheaper_than_path_oram(self):
        ring = make_ring()
        path = PathOram(CFG, seed=3)
        rng = random.Random(4)
        ops = [rng.randrange(CFG.num_user_blocks) for _ in range(300)]
        for b in ops:
            ring.read(b)
        for b in ops:
            path.read(b)
        # Path ORAM moves 2 * Z * levels blocks per access.
        path_blocks = 2 * CFG.bucket_size * CFG.num_levels
        assert ring.amortized_blocks_per_access() < path_blocks
