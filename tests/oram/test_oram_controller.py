"""Timing ORAM controller: phases, flow control, accounting."""

from typing import List

import pytest

from repro.dram.commands import OpType
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.sim.engine import Engine

HOME = [(0, 0), (0, 1), (0, 2), (0, 3)]


class RecordingSink:
    """Sink that completes reads after a fixed delay, capacity-limited."""

    def __init__(self, engine: Engine, latency: int = 100,
                 capacity: int = 1000) -> None:
        self.engine = engine
        self.latency = latency
        self.capacity = capacity
        self.inflight = 0
        self.issued: List = []
        self._waiters: List = []

    def try_issue(self, placement, op, on_complete) -> bool:
        if self.inflight >= self.capacity:
            return False
        self.inflight += 1
        self.issued.append((self.engine.now, op, placement))

        def finish():
            self.inflight -= 1
            waiters, self._waiters = self._waiters, []
            for cb in waiters:
                cb()
            on_complete(self.engine.now)

        self.engine.after(self.latency, finish)
        return True

    def notify_on_space(self, callback) -> None:
        self._waiters.append(callback)


def make_controller(capacity=1000, leaf_level=9, treetop=3, subtree=3):
    eng = Engine()
    cfg = OramConfig(leaf_level=leaf_level, treetop_levels=treetop,
                     subtree_levels=subtree)
    layout = OramLayout(cfg, HOME)
    sink = RecordingSink(eng, capacity=capacity)
    ctrl = OramController(eng, cfg, layout, sink, seed=1)
    return eng, cfg, sink, ctrl


class TestPhases:
    def test_read_phase_issues_whole_path(self):
        eng, cfg, sink, ctrl = make_controller()
        done = []
        ctrl.begin_read(0, done.append)
        eng.run()
        assert len(done) == 1
        expected = (cfg.num_levels - cfg.treetop_levels) * cfg.bucket_size
        assert len(sink.issued) == expected
        assert all(op is OpType.READ for _t, op, _p in sink.issued)

    def test_write_phase_reuses_same_placements(self):
        eng, cfg, sink, ctrl = make_controller()
        ctrl.begin_read(0, lambda t: None)
        eng.run()
        read_set = {(p.bucket, p.slot) for _t, _o, p in sink.issued}
        sink.issued.clear()
        done = []
        ctrl.begin_write(done.append)
        eng.run()
        assert done
        write_set = {(p.bucket, p.slot) for _t, _o, p in sink.issued}
        assert write_set == read_set

    def test_dummy_access_indistinguishable_in_volume(self):
        eng, cfg, sink, ctrl = make_controller()
        ctrl.begin_read(None, lambda t: None)
        eng.run()
        real_count = len(sink.issued)
        sink.issued.clear()
        ctrl.begin_write(lambda t: None)
        eng.run()
        eng2, cfg2, sink2, ctrl2 = make_controller()
        ctrl2.begin_read(5, lambda t: None)
        eng2.run()
        assert len(sink2.issued) == real_count

    def test_busy_guard(self):
        eng, cfg, sink, ctrl = make_controller()
        ctrl.begin_read(0, lambda t: None)
        with pytest.raises(RuntimeError):
            ctrl.begin_read(1, lambda t: None)

    def test_write_without_read_rejected(self):
        _eng, _cfg, _sink, ctrl = make_controller()
        with pytest.raises(RuntimeError):
            ctrl.begin_write(lambda t: None)

    def test_accounting(self):
        eng, cfg, sink, ctrl = make_controller()
        ctrl.begin_read(3, lambda t: None)
        eng.run()
        ctrl.begin_read(None, lambda t: None)
        eng.run()
        assert ctrl.stats.counter("real_accesses").value == 1
        assert ctrl.stats.counter("dummy_accesses").value == 1


class TestFlowControl:
    def test_capacity_limited_sink_still_completes(self):
        eng, cfg, sink, ctrl = make_controller(capacity=2)
        done = []
        ctrl.begin_read(0, done.append)
        eng.run()
        assert done
        expected = (cfg.num_levels - cfg.treetop_levels) * cfg.bucket_size
        assert len(sink.issued) == expected

    def test_read_done_waits_for_all_completions(self):
        eng, cfg, sink, ctrl = make_controller(capacity=1)
        done = []
        ctrl.begin_read(0, done.append)
        eng.run()
        blocks = (cfg.num_levels - cfg.treetop_levels) * cfg.bucket_size
        # Serialized by capacity 1: total >= blocks * latency.
        assert done[0] >= blocks * sink.latency

    def test_remap_on_access(self):
        eng, cfg, sink, ctrl = make_controller()
        leaf_before = ctrl.state.position_map.lookup(7)
        ctrl.begin_read(7, lambda t: None)
        eng.run()
        leaves = {ctrl.state.position_map.lookup(7)}
        # With 2^9 leaves, a remap collision is unlikely but possible;
        # run a couple more accesses to see a change.
        for _ in range(4):
            ctrl.begin_write(lambda t: None)
            eng.run()
            ctrl.begin_read(7, lambda t: None)
            eng.run()
            leaves.add(ctrl.state.position_map.lookup(7))
        assert leaves != {leaf_before}
