"""Stash bookkeeping and the overflow guard."""

import pytest

from repro.oram.stash import Stash, StashOverflow


class TestStash:
    def test_put_get_pop(self):
        stash = Stash()
        stash.put(5, leaf=3, payload="data")
        assert 5 in stash
        assert stash.get(5) == (3, "data")
        assert stash.pop(5) == (3, "data")
        assert 5 not in stash

    def test_put_overwrites(self):
        stash = Stash()
        stash.put(5, 3, "a")
        stash.put(5, 9, "b")
        assert len(stash) == 1
        assert stash.get(5) == (9, "b")

    def test_update_leaf(self):
        stash = Stash()
        stash.put(5, 3, "payload")
        stash.update_leaf(5, 7)
        assert stash.get(5) == (7, "payload")

    def test_peak_tracking(self):
        stash = Stash()
        for i in range(10):
            stash.put(i, 0, None)
        for i in range(10):
            stash.pop(i)
        assert stash.peak == 10
        assert len(stash) == 0

    def test_overflow_raises(self):
        stash = Stash(capacity=3)
        for i in range(3):
            stash.put(i, 0, None)
        with pytest.raises(StashOverflow):
            stash.put(99, 0, None)

    def test_unbounded_when_capacity_none(self):
        stash = Stash(capacity=None)
        for i in range(10_000):
            stash.put(i, 0, None)
        assert len(stash) == 10_000

    def test_evictable_predicate(self):
        stash = Stash()
        stash.put(1, 10, None)
        stash.put(2, 20, None)
        stash.put(3, 10, None)
        assert sorted(stash.evictable_for(lambda leaf: leaf == 10)) == [1, 3]

    def test_items_snapshot(self):
        stash = Stash()
        stash.put(1, 5, "x")
        items = list(stash.items())
        assert items == [(1, 5, "x")]
