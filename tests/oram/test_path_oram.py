"""Functional Path ORAM: correctness, invariants, obliviousness."""

import random

import pytest

from repro.crypto.codec import EncryptedBucketCodec, PlainCodec
from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.oram.stash import StashOverflow


def small_config(leaf_level=6):
    return OramConfig(leaf_level=leaf_level, treetop_levels=2,
                      subtree_levels=3)


def make_oram(leaf_level=6, **kw):
    return PathOram(small_config(leaf_level), seed=7, **kw)


class TestCorrectness:
    def test_unwritten_block_reads_zero(self):
        oram = make_oram()
        assert oram.read(0) == bytes(64)

    def test_read_returns_last_write(self):
        oram = make_oram()
        oram.write(3, b"\x42" * 64)
        assert oram.read(3) == b"\x42" * 64

    def test_overwrite(self):
        oram = make_oram()
        oram.write(3, b"\x01" * 64)
        oram.write(3, b"\x02" * 64)
        assert oram.read(3) == b"\x02" * 64

    def test_blocks_independent(self):
        oram = make_oram()
        oram.write(1, b"\xAA" * 64)
        oram.write(2, b"\xBB" * 64)
        assert oram.read(1) == b"\xAA" * 64
        assert oram.read(2) == b"\xBB" * 64

    def test_many_random_operations(self):
        oram = make_oram()
        rng = random.Random(0)
        reference = {}
        for _ in range(400):
            block = rng.randrange(oram.config.num_user_blocks)
            if rng.random() < 0.5:
                data = bytes([rng.randrange(256)]) * 64
                oram.write(block, data)
                reference[block] = data
            else:
                assert oram.read(block) == reference.get(block, bytes(64))
        oram.check_invariants()

    def test_wrong_data_size_rejected(self):
        with pytest.raises(ValueError):
            make_oram().write(0, b"short")

    def test_block_id_range_checked(self):
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.read(oram.config.num_user_blocks)

    def test_large_functional_tree_rejected(self):
        with pytest.raises(ValueError, match="timing controller"):
            PathOram(OramConfig())  # L=23 must not materialize


class TestInvariants:
    def test_invariants_hold_after_burst(self):
        oram = make_oram()
        rng = random.Random(3)
        for _ in range(100):
            oram.write(rng.randrange(oram.config.num_user_blocks),
                       bytes([rng.randrange(256)]) * 64)
            oram.check_invariants()

    def test_stash_stays_bounded(self):
        oram = make_oram()
        rng = random.Random(5)
        for _ in range(600):
            oram.read(rng.randrange(oram.config.num_user_blocks))
        # Z=4, 50 % utilization: the stash stays tiny in practice.
        assert oram.stash.peak < 60

    def test_dummy_access_preserves_state(self):
        oram = make_oram()
        oram.write(9, b"\x33" * 64)
        for _ in range(20):
            oram.dummy_access()
        oram.check_invariants()
        assert oram.read(9) == b"\x33" * 64

    def test_stash_overflow_is_loud(self):
        # A pathologically tiny stash must raise, not corrupt.
        oram = PathOram(small_config(), seed=1, stash_capacity=1)
        rng = random.Random(1)
        with pytest.raises(StashOverflow):
            for _ in range(200):
                oram.write(rng.randrange(oram.config.num_user_blocks),
                           bytes(64))


class TestWithCrypto:
    def test_round_trip_through_encrypted_codec(self):
        oram = make_oram(codec=EncryptedBucketCodec(b"K" * 16))
        oram.write(5, b"\x77" * 64)
        assert oram.read(5) == b"\x77" * 64
        oram.check_invariants()

    def test_memory_image_is_ciphertext(self):
        oram = make_oram(codec=EncryptedBucketCodec(b"K" * 16))
        payload = b"\xCC" * 64
        oram.write(5, payload)
        # No bucket image may contain the plaintext payload.
        for bucket in oram.geometry.iter_buckets():
            image = oram._buckets[bucket]
            assert payload not in image

    def test_plain_codec_round_trip(self):
        oram = make_oram(codec=PlainCodec())
        oram.write(2, b"\x11" * 64)
        assert oram.read(2) == b"\x11" * 64


class TestObliviousness:
    def _trace_for(self, pattern, seed=11):
        """Physical bucket trace for a logical access pattern."""
        trace = []
        oram = PathOram(small_config(), seed=seed,
                        trace_hook=lambda kind, b: trace.append((kind, b)))
        for block in pattern:
            oram.read(block)
        return trace

    def test_accesses_touch_full_paths(self):
        trace = self._trace_for([0])
        cfg = small_config()
        fetched_levels = cfg.num_levels  # functional layer reads all levels
        reads = [b for kind, b in trace if kind == "read"]
        assert len(reads) == fetched_levels

    def test_same_block_twice_uses_fresh_path(self):
        # Remap-on-access: consecutive reads of one block take
        # independent random paths with high probability.
        oram_trace = self._trace_for([5, 5, 5, 5, 5, 5])
        reads = [b for kind, b in oram_trace if kind == "read"]
        cfg = small_config()
        per_access = cfg.num_levels
        paths = [tuple(reads[i * per_access:(i + 1) * per_access])
                 for i in range(6)]
        assert len(set(paths)) > 1

    def test_bucket_access_frequency_independent_of_pattern(self):
        # Hot single block vs uniform scan: the distribution of touched
        # buckets per level must look the same (chi-square-lite check on
        # level-1 children balance).
        hot = self._trace_for([3] * 300)
        rng = random.Random(2)
        cold_pattern = [rng.randrange(100) for _ in range(300)]
        cold = self._trace_for(cold_pattern)

        def left_fraction(trace):
            lefts = sum(1 for kind, b in trace if kind == "read" and b == 2)
            rights = sum(1 for kind, b in trace if kind == "read" and b == 3)
            return lefts / (lefts + rights)

        # Both should hover around 0.5; they must not differ grossly.
        assert abs(left_fraction(hot) - 0.5) < 0.1
        assert abs(left_fraction(cold) - 0.5) < 0.1
