"""MAC tags."""

import pytest

from repro.crypto.mac import mac_tag, mac_verify


class TestMac:
    def test_verify_accepts_valid(self):
        tag = mac_tag(b"key", b"message")
        assert mac_verify(b"key", b"message", tag)

    def test_verify_rejects_tampered_message(self):
        tag = mac_tag(b"key", b"message")
        assert not mac_verify(b"key", b"messagX", tag)

    def test_verify_rejects_wrong_key(self):
        tag = mac_tag(b"key", b"message")
        assert not mac_verify(b"yek", b"message", tag)

    def test_tag_length(self):
        assert len(mac_tag(b"k", b"m", tag_bytes=12)) == 12

    def test_tag_deterministic(self):
        assert mac_tag(b"k", b"m") == mac_tag(b"k", b"m")

    def test_bad_tag_size_rejected(self):
        with pytest.raises(ValueError):
            mac_tag(b"k", b"m", tag_bytes=2)
        with pytest.raises(ValueError):
            mac_tag(b"k", b"m", tag_bytes=64)

    def test_truncation_consistency(self):
        assert mac_tag(b"k", b"m", 8) == mac_tag(b"k", b"m", 16)[:8]
