"""OTP packet sealing (Eq. (1)): confidentiality, auth, replay defense."""

import pytest

from repro.crypto.otp import OtpEngine, OtpMismatch, OtpStream, xor_bytes


def engine_pair():
    """CPU-side and SD-side engines sharing (K, N0)."""
    return OtpEngine(b"K" * 16, 7), OtpEngine(b"K" * 16, 7)


class TestOtpStream:
    def test_sequence_advances(self):
        stream = OtpStream(b"K" * 16, 1)
        s0, _ = stream.next_pad(72)
        s1, _ = stream.next_pad(72)
        assert (s0, s1) == (0, 1)

    def test_pads_disjoint_across_seq(self):
        stream = OtpStream(b"K" * 16, 1)
        _, pad0 = stream.next_pad(72)
        _, pad1 = stream.next_pad(72)
        assert pad0 != pad1

    def test_receiver_recomputes_pad(self):
        sender = OtpStream(b"K" * 16, 1)
        receiver = OtpStream(b"K" * 16, 1)
        seq, pad = sender.next_pad(72)
        assert receiver.pad_for(seq, 72) == pad

    def test_pad_not_data_dependent(self):
        # Eq. (1): the OTP depends only on (K, N0, SeqNum), so it can be
        # pre-generated before the packet content exists.
        stream_a = OtpStream(b"K" * 16, 1)
        stream_b = OtpStream(b"K" * 16, 1)
        assert stream_a.next_pad(72) == stream_b.next_pad(72)

    def test_next_pad_caches_for_pad_for(self):
        stream = OtpStream(b"K" * 16, 1)
        seq, pad = stream.next_pad(72)
        assert stream.cached_pad(seq)
        assert stream.pad_for(seq, 72) == pad
        # pad_for pops: the cached copy is consumed exactly once.
        assert not stream.cached_pad(seq)

    def test_cached_pad_ignored_on_length_mismatch(self):
        stream = OtpStream(b"K" * 16, 1)
        seq, _ = stream.next_pad(8)
        fresh = OtpStream(b"K" * 16, 1)
        assert stream.pad_for(seq, 72) == fresh.pad_for(seq, 72)

    def test_pregenerate_matches_next_pad(self):
        warm = OtpStream(b"K" * 16, 1)
        warm.pregenerate(4, 72)
        cold = OtpStream(b"K" * 16, 1)
        for _ in range(4):
            assert warm.next_pad(72) == cold.next_pad(72)


class TestXor:
    def test_involution(self):
        a, b = b"hello!", b"worldx"
        assert xor_bytes(xor_bytes(a, b), b) == a

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"abc")


class TestOtpEngine:
    def test_round_trip(self):
        cpu, sd = engine_pair()
        msg = b"request".ljust(72, b"\0")
        assert sd.open(cpu.seal(msg)) == msg

    def test_directions_independent(self):
        cpu, sd = engine_pair()
        down = cpu.seal(b"d" * 72)
        up = sd.seal(b"u" * 72, upstream=True)
        assert sd.open(down) == b"d" * 72
        assert cpu.open(up, upstream=True) == b"u" * 72

    def test_ciphertext_differs_from_plaintext(self):
        cpu, _ = engine_pair()
        msg = b"m" * 72
        assert msg not in cpu.seal(msg)

    def test_identical_messages_encrypt_differently(self):
        cpu, _ = engine_pair()
        msg = b"m" * 72
        assert cpu.seal(msg) != cpu.seal(msg)

    def test_tampered_packet_rejected(self):
        cpu, sd = engine_pair()
        sealed = bytearray(cpu.seal(b"m" * 72))
        sealed[20] ^= 0x01
        with pytest.raises(OtpMismatch, match="MAC"):
            sd.open(bytes(sealed))

    def test_replayed_packet_rejected(self):
        cpu, sd = engine_pair()
        first = cpu.seal(b"a" * 72)
        sd.open(first)
        with pytest.raises(OtpMismatch, match="sequence"):
            sd.open(first)

    def test_reordered_packet_rejected(self):
        cpu, sd = engine_pair()
        cpu.seal(b"a" * 72)  # seq 0, dropped in transit
        second = cpu.seal(b"b" * 72)  # seq 1
        with pytest.raises(OtpMismatch, match="sequence"):
            sd.open(second)

    def test_short_packet_rejected(self):
        _, sd = engine_pair()
        with pytest.raises(OtpMismatch, match="short"):
            sd.open(b"tiny")

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            OtpEngine(b"short", 0)

    def test_pad_cache_stats(self):
        # Loopback: the same engine seals and opens, so the open path
        # finds every pad in the stream cache.
        loop = OtpEngine(b"K" * 16, 7)
        for i in range(5):
            assert loop.open(loop.seal(bytes([i]) * 72)) == bytes([i]) * 72
        assert loop.stats.counter("pad_hits").value == 5
        assert loop.stats.counter("pad_misses").value == 0
        # Separate peer engines never share pads: all misses.
        cpu, sd = engine_pair()
        sd.open(cpu.seal(b"m" * 72))
        assert sd.stats.counter("pad_hits").value == 0
        assert sd.stats.counter("pad_misses").value == 1

    def test_cache_hit_decrypts_correctly(self):
        loop = OtpEngine(b"K" * 16, 9)
        msg = b"payload!".ljust(72, b"\xaa")
        assert loop.open(loop.seal(msg)) == msg
