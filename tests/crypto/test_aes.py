"""AES-128 against FIPS-197 and structural properties."""

import pytest

from repro.crypto.aes import AES128, INV_SBOX, SBOX, gf_mul


class TestGaloisField:
    def test_identity(self):
        assert gf_mul(0x57, 1) == 0x57

    def test_fips_example(self):
        # FIPS-197 Section 4.2: {57} x {83} = {c1}.
        assert gf_mul(0x57, 0x83) == 0xC1

    def test_xtime_chain(self):
        # {57} x {13} = {fe} (FIPS-197 4.2.1 worked example).
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_commutative(self):
        for a, b in [(0x03, 0x09), (0x0E, 0x0B), (0xFF, 0x02)]:
            assert gf_mul(a, b) == gf_mul(b, a)


class TestSbox:
    def test_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_consistent(self):
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_no_fixed_points(self):
        assert all(SBOX[i] != i for i in range(256))


class TestCipher:
    KEY = bytes(range(16))
    PT = bytes.fromhex("00112233445566778899aabbccddeeff")
    CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_fips197_appendix_c(self):
        assert AES128(self.KEY).encrypt_block(self.PT) == self.CT

    def test_decrypt_inverts(self):
        aes = AES128(self.KEY)
        assert aes.decrypt_block(self.CT) == self.PT

    def test_round_trip_random_blocks(self):
        import random
        rng = random.Random(1)
        aes = AES128(bytes(rng.randrange(256) for _ in range(16)))
        for _ in range(10):
            block = bytes(rng.randrange(256) for _ in range(16))
            assert aes.decrypt_block(aes.encrypt_block(block)) == block

    def test_key_sensitivity(self):
        ct1 = AES128(b"\x00" * 16).encrypt_block(self.PT)
        ct2 = AES128(b"\x00" * 15 + b"\x01").encrypt_block(self.PT)
        assert ct1 != ct2

    def test_wrong_key_size_rejected(self):
        with pytest.raises(ValueError):
            AES128(b"short")

    def test_wrong_block_size_rejected(self):
        with pytest.raises(ValueError):
            AES128(self.KEY).encrypt_block(b"tiny")


class TestKeystream:
    def test_length_exact(self):
        aes = AES128(b"k" * 16)
        assert len(aes.keystream(0, 0, 72)) == 72
        assert len(aes.keystream(0, 0, 16)) == 16
        assert len(aes.keystream(0, 0, 1)) == 1

    def test_deterministic(self):
        aes = AES128(b"k" * 16)
        assert aes.keystream(5, 9, 64) == aes.keystream(5, 9, 64)

    def test_counter_separates_streams(self):
        aes = AES128(b"k" * 16)
        assert aes.keystream(0, 0, 32) != aes.keystream(0, 64, 32)

    def test_nonce_separates_streams(self):
        aes = AES128(b"k" * 16)
        assert aes.keystream(1, 0, 32) != aes.keystream(2, 0, 32)

    def test_prefix_property(self):
        aes = AES128(b"k" * 16)
        assert aes.keystream(3, 0, 64)[:32] == aes.keystream(3, 0, 32)
