"""Bucket codecs: fixed-size images, re-encryption, integrity."""

import pytest

from repro.crypto.codec import (
    CodecError,
    EncryptedBucketCodec,
    PlainCodec,
)

Z, BLOCK = 4, 64


def blocks(n):
    return [(i, i * 7, bytes([i]) * BLOCK) for i in range(n)]


class TestPlainCodec:
    def test_round_trip(self):
        codec = PlainCodec()
        raw = codec.encode_bucket(3, blocks(2), Z, BLOCK)
        assert codec.decode_bucket(3, raw, Z, BLOCK) == blocks(2)

    def test_fixed_size_regardless_of_occupancy(self):
        codec = PlainCodec()
        sizes = {
            len(codec.encode_bucket(1, blocks(n), Z, BLOCK))
            for n in range(Z + 1)
        }
        assert len(sizes) == 1

    def test_overfull_rejected(self):
        with pytest.raises(CodecError):
            PlainCodec().encode_bucket(1, blocks(Z + 1), Z, BLOCK)

    def test_wrong_payload_size_rejected(self):
        with pytest.raises(CodecError):
            PlainCodec().encode_bucket(1, [(0, 0, b"small")], Z, BLOCK)

    def test_wrong_image_size_rejected(self):
        with pytest.raises(CodecError):
            PlainCodec().decode_bucket(1, b"x" * 10, Z, BLOCK)


class TestEncryptedCodec:
    def make(self):
        return EncryptedBucketCodec(b"T" * 16)

    def test_round_trip(self):
        codec = self.make()
        raw = codec.encode_bucket(5, blocks(3), Z, BLOCK)
        assert codec.decode_bucket(5, raw, Z, BLOCK) == blocks(3)

    def test_reencryption_differs_every_write(self):
        # The whole point of Path ORAM write-back: identical plaintext
        # must produce unlinkable ciphertext on consecutive writes.
        codec = self.make()
        a = codec.encode_bucket(5, blocks(2), Z, BLOCK)
        b = codec.encode_bucket(5, blocks(2), Z, BLOCK)
        assert a != b

    def test_empty_and_full_buckets_same_size(self):
        codec = self.make()
        empty = codec.encode_bucket(1, [], Z, BLOCK)
        full = codec.encode_bucket(1, blocks(Z), Z, BLOCK)
        assert len(empty) == len(full) == codec.image_bytes(Z, BLOCK)

    def test_plaintext_not_visible(self):
        codec = self.make()
        payload = b"\xAA" * BLOCK
        raw = codec.encode_bucket(1, [(9, 3, payload)], Z, BLOCK)
        assert payload not in raw

    def test_tamper_detected(self):
        codec = self.make()
        raw = bytearray(codec.encode_bucket(1, blocks(1), Z, BLOCK))
        raw[30] ^= 1
        with pytest.raises(CodecError, match="MAC"):
            codec.decode_bucket(1, bytes(raw), Z, BLOCK)

    def test_bucket_swap_detected(self):
        # An attacker moving bucket 1's image to bucket 2's slot must be
        # caught: the bucket index is bound into the MAC.
        codec = self.make()
        raw = codec.encode_bucket(1, blocks(1), Z, BLOCK)
        with pytest.raises(CodecError, match="MAC"):
            codec.decode_bucket(2, raw, Z, BLOCK)

    def test_non_bytes_rejected(self):
        with pytest.raises(CodecError):
            self.make().decode_bucket(1, ["not", "bytes"], Z, BLOCK)

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            EncryptedBucketCodec(b"short")
