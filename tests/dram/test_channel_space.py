"""Channel.notify_on_space semantics under the optimized service loop.

The space-waiter path is load-bearing for back-pressure correctness:
every router and BOB hold queue relies on "one-shot, fires after a queue
entry drains, re-registration during the callback defers to the next
drain".  These tests pin that contract directly (the integration suites
only exercise it incidentally).
"""

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.dram.timing import ChannelParams
from repro.sim.engine import Engine


def make_channel(**params):
    eng = Engine()
    ch = Channel(eng, "ch0", params=ChannelParams(**params))
    return eng, ch


def read(bank=0, row=0, cb=None):
    return MemRequest(OpType.READ, 0, 0, bank=bank, row=row, on_complete=cb)


class TestNotifyOnSpace:
    def test_waiter_fires_after_first_service(self):
        eng, ch = make_channel(read_queue_depth=2)
        ch.enqueue(read(row=1))
        ch.enqueue(read(row=2))
        woken = []
        ch.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        assert len(woken) == 1

    def test_waiter_is_one_shot(self):
        eng, ch = make_channel()
        for row in range(4):
            ch.enqueue(read(row=row))
        woken = []
        ch.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        # Four services drained, but the waiter fired exactly once.
        assert len(woken) == 1

    def test_all_waiters_fire_on_one_drain(self):
        eng, ch = make_channel()
        ch.enqueue(read())
        woken = []
        for tag in range(3):
            ch.notify_on_space(lambda t=tag: woken.append(t))
        eng.run()
        assert woken == [0, 1, 2]  # registration order preserved

    def test_reregistration_during_callback_defers_to_next_drain(self):
        eng, ch = make_channel()
        ch.enqueue(read(row=1))
        ch.enqueue(read(row=2))
        fires = []

        def rearm():
            fires.append(eng.now)
            if len(fires) < 2:
                ch.notify_on_space(rearm)

        ch.notify_on_space(rearm)
        eng.run()
        # The re-registered waiter must not fire inside the same drain:
        # one fire per serviced request, at distinct times.
        assert len(fires) == 2
        assert fires[0] < fires[1]

    def test_waiter_may_refill_the_queue(self):
        eng, ch = make_channel(read_queue_depth=1)
        done = []
        state = {"issued": 0}

        def feed():
            if state["issued"] < 5 and ch.can_accept(OpType.READ):
                row = state["issued"]
                state["issued"] += 1
                ch.enqueue(read(row=row, cb=done.append))
            if state["issued"] < 5:
                ch.notify_on_space(feed)

        feed()
        eng.run()
        assert state["issued"] == 5
        assert len(done) == 5
        assert done == sorted(done)
