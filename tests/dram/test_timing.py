"""DDR3 timing parameters (Table II: DDR3-1600 defaults)."""

import pytest

from repro.dram.timing import (
    ChannelParams,
    DDR3Timing,
    DDR3_1600,
    DEFAULT_CHANNEL_PARAMS,
)
from repro.sim.engine import mem_cycles


class TestDDR3Defaults:
    def test_speed_grade_11_11_11(self):
        assert DDR3_1600.tRCD == mem_cycles(11)
        assert DDR3_1600.tRP == mem_cycles(11)
        assert DDR3_1600.tCL == mem_cycles(11)

    def test_burst_is_four_bus_cycles(self):
        # BL8 on a x64 channel moves 64 B in 4 bus cycles.
        assert DDR3_1600.tBURST == mem_cycles(4)

    def test_trc_covers_tras_plus_trp(self):
        assert DDR3_1600.tRC >= DDR3_1600.tRAS + DDR3_1600.tRP

    def test_invalid_trc_rejected(self):
        with pytest.raises(ValueError):
            DDR3Timing(tRC=mem_cycles(10))

    def test_invalid_tfaw_rejected(self):
        with pytest.raises(ValueError):
            DDR3Timing(tFAW=mem_cycles(1), tRRD=mem_cycles(5))

    def test_derived_latencies_ordered(self):
        t = DDR3_1600
        assert t.row_hit_latency < t.row_closed_latency < t.row_conflict_latency

    def test_row_hit_latency_value(self):
        # CL + burst = 11 + 4 memory cycles = 18.75 ns = 300 ticks.
        assert DDR3_1600.row_hit_latency == mem_cycles(15)


class TestChannelParams:
    def test_defaults_match_table2(self):
        p = DEFAULT_CHANNEL_PARAMS
        assert p.num_banks == 8
        assert p.num_ranks == 1
        assert p.line_bytes == 64

    def test_lines_per_row(self):
        assert DEFAULT_CHANNEL_PARAMS.lines_per_row == 128

    def test_drain_hysteresis_ordering_enforced(self):
        with pytest.raises(ValueError):
            ChannelParams(write_drain_hi=10, write_drain_lo=10)

    def test_row_must_hold_whole_lines(self):
        with pytest.raises(ValueError):
            ChannelParams(row_bytes=1000, line_bytes=64)
