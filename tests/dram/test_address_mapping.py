"""Address mapping: decode, interleaving, per-app channel masks."""

import pytest

from repro.dram.address_mapping import (
    ChannelInterleaver,
    DeviceGeometry,
    build_app_interleavers,
    decode_line,
)


class TestDecodeLine:
    def test_sequential_lines_share_row(self):
        g = DeviceGeometry()
        coords = [decode_line(i, g) for i in range(g.lines_per_row)]
        banks = {c[0] for c in coords}
        rows = {c[1] for c in coords}
        assert banks == {0}
        assert rows == {0}
        assert [c[2] for c in coords] == list(range(g.lines_per_row))

    def test_next_row_group_rotates_bank(self):
        g = DeviceGeometry()
        bank0, _, _ = decode_line(0, g)
        bank1, _, _ = decode_line(g.lines_per_row, g)
        assert bank1 == (bank0 + 1) % g.num_banks

    def test_row_advances_after_all_banks(self):
        g = DeviceGeometry()
        _, row, _ = decode_line(g.lines_per_row * g.num_banks, g)
        assert row == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            decode_line(-1, DeviceGeometry())

    def test_rows_wrap_at_capacity(self):
        g = DeviceGeometry(num_rows=4)
        _, row, _ = decode_line(g.lines_per_row * g.num_banks * 4, g)
        assert row == 0


class TestChannelInterleaver:
    def test_round_robin_over_targets(self):
        il = ChannelInterleaver([(0, 0), (1, 0), (2, 0)])
        channels = [il.map_line(i).channel for i in range(6)]
        assert channels == [0, 1, 2, 0, 1, 2]

    def test_local_index_advances_per_round(self):
        il = ChannelInterleaver([(0, 0), (1, 0)])
        a = il.map_line(0)
        b = il.map_line(2)
        assert (a.channel, b.channel) == (0, 0)
        assert b.col == a.col + 1  # consecutive local lines

    def test_base_line_offsets_apps(self):
        low = ChannelInterleaver([(0, 0)], app_base_line=0)
        high = ChannelInterleaver([(0, 0)], app_base_line=1 << 18)
        assert low.map_line(0) != high.map_line(0)

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            ChannelInterleaver([])

    def test_negative_line_rejected(self):
        with pytest.raises(ValueError):
            ChannelInterleaver([(0, 0)]).map_line(-5)

    def test_single_channel_mask(self):
        il = ChannelInterleaver([(2, 0)])
        assert all(il.map_line(i).channel == 2 for i in range(10))


class TestBuildAppInterleavers:
    def test_disjoint_slices(self):
        ils = build_app_interleavers(
            {0: [(0, 0)], 1: [(0, 0)]}, lines_per_app=1000
        )
        a = ils[0].map_line(0)
        b = ils[1].map_line(0)
        assert a != b

    def test_respects_per_app_targets(self):
        ils = build_app_interleavers({0: [(0, 0)], 1: [(1, 0), (2, 0)]})
        assert ils[0].map_line(5).channel == 0
        assert ils[1].map_line(0).channel in (1, 2)
