"""FR-FCFS and the bandwidth-preallocation share policy."""

import pytest

from repro.dram.bank import Bank, RankTimers
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.scheduler import FrFcfsScheduler, SharePolicy, SingleClassPolicy
from repro.dram.timing import DDR3_1600 as T


def req(row, bank=0, traffic=TrafficClass.NORMAL):
    return MemRequest(OpType.READ, 0, 0, bank=bank, row=row, traffic=traffic)


def banks_with_open_row(row, bank=0, count=4):
    rank = RankTimers(T)
    banks = [Bank(T, rank) for _ in range(count)]
    banks[bank].commit(req(row, bank), earliest=0)
    return banks


class TestFrFcfs:
    def test_prefers_row_hit(self):
        banks = banks_with_open_row(row=9, bank=0)
        queue = [req(3, bank=0), req(9, bank=0), req(4, bank=1)]
        assert FrFcfsScheduler().pick(queue, banks) == 1

    def test_falls_back_to_oldest(self):
        banks = banks_with_open_row(row=99, bank=3)
        queue = [req(3, bank=0), req(4, bank=1)]
        assert FrFcfsScheduler().pick(queue, banks) == 0

    def test_window_bounds_search(self):
        banks = banks_with_open_row(row=9, bank=0)
        queue = [req(3, bank=0), req(4, bank=0), req(9, bank=0)]
        # Hit sits at index 2, outside a window of 2 -> oldest wins.
        assert FrFcfsScheduler(window=2).pick(queue, banks) == 0

    def test_empty_queue_rejected(self):
        with pytest.raises(ValueError):
            FrFcfsScheduler().pick([], [])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            FrFcfsScheduler(window=0)


class TestSharePolicy:
    def test_5050_alternates(self):
        policy = SharePolicy()
        pending = [TrafficClass.SECURE, TrafficClass.NORMAL]
        picks = [policy.pick_class(pending) for _ in range(100)]
        secure = picks.count(TrafficClass.SECURE)
        assert secure == 50

    def test_served_fraction_tracks_weights(self):
        policy = SharePolicy(
            {TrafficClass.SECURE: 0.25, TrafficClass.NORMAL: 0.75}
        )
        pending = [TrafficClass.SECURE, TrafficClass.NORMAL]
        for _ in range(400):
            policy.pick_class(pending)
        assert policy.served_fraction(TrafficClass.SECURE) == pytest.approx(
            0.25, abs=0.02
        )

    def test_work_conserving_when_one_class_idle(self):
        policy = SharePolicy()
        # Only NORMAL has pending work; it must always be served.
        for _ in range(10):
            assert policy.pick_class([TrafficClass.NORMAL]) is TrafficClass.NORMAL

    def test_idle_class_does_not_bank_unbounded_credit(self):
        policy = SharePolicy()
        for _ in range(100):
            policy.pick_class([TrafficClass.NORMAL])
        # SECURE was absent; when it returns, it should not monopolize.
        pending = [TrafficClass.SECURE, TrafficClass.NORMAL]
        picks = [policy.pick_class(pending) for _ in range(20)]
        assert picks.count(TrafficClass.NORMAL) >= 8

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            SharePolicy({TrafficClass.SECURE: 0.0})

    def test_unconfigured_class_falls_through(self):
        policy = SharePolicy({TrafficClass.SECURE: 1.0})
        assert policy.pick_class([TrafficClass.NORMAL]) is TrafficClass.NORMAL


class TestSingleClassPolicy:
    def test_first_pending_wins(self):
        policy = SingleClassPolicy()
        assert policy.pick_class(
            [TrafficClass.NORMAL, TrafficClass.SECURE]
        ) is TrafficClass.NORMAL
