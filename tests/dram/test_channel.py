"""Channel service loop: queues, drain, completion timing, sharing."""

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.scheduler import SharePolicy
from repro.dram.timing import ChannelParams, DDR3_1600 as T
from repro.sim.engine import Engine


def make_channel(**kw):
    eng = Engine()
    return eng, Channel(eng, "ch0", **kw)


def read(bank=0, row=0, col=0, cb=None, traffic=TrafficClass.NORMAL):
    return MemRequest(OpType.READ, 0, 0, bank=bank, row=row, col=col,
                      traffic=traffic, on_complete=cb)


def write(bank=0, row=0, cb=None, traffic=TrafficClass.NORMAL):
    return MemRequest(OpType.WRITE, 0, 0, bank=bank, row=row,
                      traffic=traffic, on_complete=cb)


class TestBasicService:
    def test_single_read_latency(self):
        eng, ch = make_channel()
        done = []
        ch.enqueue(read(cb=lambda t: done.append(t)))
        eng.run()
        # Closed bank: tRCD + tCL + tBURST.
        assert done == [T.tRCD + T.tCL + T.tBURST]

    def test_row_hits_chain_back_to_back(self):
        eng, ch = make_channel()
        done = []
        for i in range(4):
            ch.enqueue(read(col=i, cb=lambda t: done.append(t)))
        eng.run()
        # After the first access the bus streams one burst per tBURST.
        assert done[1] - done[0] == T.tBURST
        assert done[3] - done[2] == T.tBURST

    def test_fr_fcfs_reorders_for_hits(self):
        eng, ch = make_channel()
        order = []
        ch.enqueue(read(row=0, cb=lambda t: order.append("a")))
        ch.enqueue(read(row=1, cb=lambda t: order.append("conflict")))
        ch.enqueue(read(row=0, cb=lambda t: order.append("hit")))
        eng.run()
        assert order == ["a", "hit", "conflict"]

    def test_queue_capacity_enforced(self):
        eng, ch = make_channel(params=ChannelParams(read_queue_depth=2,
                                                    write_queue_depth=2,
                                                    write_drain_hi=2,
                                                    write_drain_lo=1))
        ch.enqueue(read())
        ch.enqueue(read())
        assert not ch.can_accept(OpType.READ)
        with pytest.raises(RuntimeError):
            ch.enqueue(read())

    def test_bad_bank_rejected(self):
        eng, ch = make_channel()
        with pytest.raises(ValueError):
            ch.enqueue(read(bank=99))

    def test_space_waiters_fire(self):
        eng, ch = make_channel()
        woken = []
        ch.enqueue(read())
        ch.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        assert len(woken) == 1


class TestWriteDrain:
    def test_opportunistic_write_when_no_reads(self):
        eng, ch = make_channel()
        done = []
        ch.enqueue(write(cb=lambda t: done.append(t)))
        eng.run()
        assert done  # serviced without reaching the drain threshold

    def test_reads_preferred_over_writes_below_threshold(self):
        eng, ch = make_channel()
        order = []
        ch.enqueue(write(row=1, cb=lambda t: order.append("w")))
        ch.enqueue(read(row=2, cb=lambda t: order.append("r")))
        eng.run()
        assert order[0] == "r"

    def test_write_timeout_bounds_starvation(self):
        # A lone write behind an endless read stream must still be
        # serviced within the age bound.
        eng, ch = make_channel()
        done = []
        ch.enqueue(write(row=99, cb=lambda t: done.append(t)))
        # Feed reads continuously so the read queue never drains.
        def feed(i):
            if i < 400 and ch.can_accept(OpType.READ):
                ch.enqueue(read(row=i % 4, col=i))
            if i < 400:
                eng.after(T.tBURST, lambda: feed(i + 1))
        feed(0)
        eng.run()
        assert done
        assert done[0] <= ch.params.write_timeout + 100 * T.tBURST

    def test_drain_hysteresis(self):
        params = ChannelParams(write_drain_hi=4, write_drain_lo=1)
        eng, ch = make_channel(params=params)
        order = []
        for i in range(4):
            ch.enqueue(write(row=i, cb=lambda t, i=i: order.append(("w", i))))
        ch.enqueue(read(row=9, cb=lambda t: order.append(("r", 0))))
        eng.run()
        # Drain was triggered (wq hit hi=4): writes run before the read
        # until wq falls to lo=1.
        assert order[0][0] == "w"
        assert ("r", 0) in order


class TestStatsAndSharing:
    def test_row_outcome_counters(self):
        eng, ch = make_channel()
        ch.enqueue(read(row=0))
        ch.enqueue(read(row=0))
        ch.enqueue(read(row=5))
        eng.run()
        assert ch.stats.counter("row_closed").value == 1
        assert ch.stats.counter("row_hit").value == 1
        assert ch.stats.counter("row_conflict").value == 1
        assert ch.row_hit_rate() == pytest.approx(1 / 3)

    def test_latency_recorded_per_class(self):
        eng, ch = make_channel()
        ch.enqueue(read(traffic=TrafficClass.SECURE))
        eng.run()
        assert ch.stats.latency("secure_read_latency").count == 1
        assert ch.stats.latency("normal_read_latency").count == 0

    def test_share_policy_interleaves_classes(self):
        eng, ch = make_channel(share_policy=SharePolicy())
        order = []
        # Two batches on different banks so neither is row-hit-favored.
        for i in range(8):
            ch.enqueue(read(bank=0, row=i, traffic=TrafficClass.SECURE,
                            cb=lambda t: order.append("s")))
        for i in range(8):
            ch.enqueue(read(bank=1, row=i, traffic=TrafficClass.NORMAL,
                            cb=lambda t: order.append("n")))
        eng.run()
        # 50/50 preallocation: normals are not starved behind all secures.
        first_half = order[:8]
        assert first_half.count("n") >= 3

    def test_refresh_eventually_happens(self):
        eng, ch = make_channel()
        # Issue sparse reads beyond tREFI so a refresh window is crossed.
        done = []
        def issue(i):
            if i < 3:
                ch.enqueue(read(row=i, cb=lambda t: done.append(t)))
                eng.after(T.tREFI, lambda: issue(i + 1))
        issue(0)
        eng.run()
        assert ch.stats.counter("refreshes").value >= 1

    def test_utilization_bounded(self):
        eng, ch = make_channel()
        for i in range(10):
            ch.enqueue(read(col=i))
        eng.run()
        assert 0.0 < ch.utilization() <= 1.0
