"""Bank state machine: row-buffer outcomes and JEDEC fences."""

import pytest

from repro.dram.bank import Bank, RankTimers
from repro.dram.commands import MemRequest, OpType
from repro.dram.timing import DDR3_1600 as T


def make_bank():
    rank = RankTimers(T)
    return Bank(T, rank), rank


def req(row, bank=0, op=OpType.READ):
    return MemRequest(op, 0, 0, bank=bank, row=row)


class TestClassification:
    def test_fresh_bank_is_closed(self):
        bank, _ = make_bank()
        assert bank.classify(5) == "closed"

    def test_open_row_hit(self):
        bank, _ = make_bank()
        bank.commit(req(5), earliest=0)
        assert bank.classify(5) == "hit"

    def test_other_row_conflict(self):
        bank, _ = make_bank()
        bank.commit(req(5), earliest=0)
        assert bank.classify(6) == "conflict"

    def test_force_precharge_closes(self):
        bank, _ = make_bank()
        bank.commit(req(5), earliest=0)
        bank.force_precharge(1000)
        assert bank.classify(5) == "closed"


class TestLatencies:
    def test_closed_read_latency(self):
        bank, _ = make_bank()
        start, outcome = bank.commit(req(7), earliest=0)
        assert outcome == "closed"
        # ACT at 0, column at tRCD, data at tRCD + tCL.
        assert start == T.tRCD + T.tCL

    def test_row_hit_back_to_back(self):
        bank, _ = make_bank()
        bank.commit(req(7), earliest=0)
        # Ask once the tRCD fence from the ACT at t=0 has expired: a hit
        # then costs only the column access.
        second, outcome = bank.commit(req(7), earliest=T.tRCD)
        assert outcome == "hit"
        assert second == T.tRCD + T.tCL

    def test_conflict_pays_precharge(self):
        bank, _ = make_bank()
        bank.commit(req(7), earliest=0)
        start, outcome = bank.commit(req(8), earliest=0)
        assert outcome == "conflict"
        # PRE cannot issue before tRAS from the ACT at t=0.
        assert start >= T.tRAS + T.tRP + T.tRCD + T.tCL

    def test_floor_delays_data(self):
        bank, _ = make_bank()
        start, _ = bank.commit(req(7), earliest=0, floor=10_000)
        assert start == 10_000

    def test_write_uses_cwl(self):
        bank, _ = make_bank()
        start, _ = bank.commit(req(7, op=OpType.WRITE), earliest=0)
        assert start == T.tRCD + T.tCWL

    def test_write_recovery_fences_precharge(self):
        bank, _ = make_bank()
        w_start, _ = bank.commit(req(7, op=OpType.WRITE), earliest=0)
        start, outcome = bank.commit(req(8), earliest=0)
        assert outcome == "conflict"
        # PRE must wait tWR past the write burst end.
        assert start >= w_start + T.tBURST + T.tWR + T.tRP + T.tRCD + T.tCL

    def test_statistics_counted(self):
        bank, _ = make_bank()
        bank.commit(req(1), earliest=0)
        bank.commit(req(1), earliest=0)
        bank.commit(req(2), earliest=0)
        assert (bank.misses, bank.hits, bank.conflicts) == (1, 1, 1)


class TestRankTimers:
    def test_trrd_spacing(self):
        rank = RankTimers(T)
        rank.note_activate(0)
        assert rank.activate_slot(0) == T.tRRD

    def test_tfaw_window(self):
        rank = RankTimers(T)
        for i in range(4):
            rank.note_activate(i * T.tRRD)
        # The 5th activate must wait until tFAW past the 1st.
        assert rank.activate_slot(0) >= T.tFAW

    def test_wtr_fence(self):
        rank = RankTimers(T)
        rank.note_write_end(1000)
        assert rank.read_ready(0) == 1000 + T.tWTR

    def test_refresh_due(self):
        rank = RankTimers(T)
        assert rank.refresh_window(0) is None
        window = rank.refresh_window(T.tREFI)
        assert window == (T.tREFI, T.tREFI + T.tRFC)
        rank.complete_refresh()
        assert rank.refresh_window(T.tREFI) is None
        assert rank.refreshes == 1

    def test_tfaw_across_banks_shared(self):
        rank = RankTimers(T)
        bank_a = Bank(T, rank)
        bank_b = Bank(T, rank)
        bank_a.commit(req(1, bank=0), earliest=0)
        start_b, _ = bank_b.commit(req(1, bank=1), earliest=0)
        # Second bank's ACT spaced by tRRD through the shared rank.
        assert start_b >= T.tRRD + T.tRCD + T.tCL
