"""Kernel conformance: the struct-of-arrays batch kernel vs the legacy
object-per-bank channel, request mix by request mix.

``KernelChannel`` (``repro.dram.kernel``) re-implements the channel
service loop over flat per-bank arrays and advances a whole channel to
its next decision point in one call, inlining chained service slots
when nothing else is due first.  The legacy :class:`Channel` is kept as
the bit-exact oracle.  This suite replays hypothesis-generated request
mixes through both backends on twin engines and requires *identical*:

* implied DRAM command streams (PRE/ACT/RD/WR/REF with timestamps),
* completion callback times, in order,
* channel StatSet snapshots (latencies, row outcomes, refreshes),
* logical event census (``events_dispatched``) and final engine time.

Shrunk failures from development are committed below as ``@example``
regression seeds so they re-run on every CI pass without hypothesis
having to rediscover them.

The scheduler edge cases the kernel fuses into straight-line arithmetic
(tFAW at exactly four ACTs, tWTR/tRTP turnaround ties, same-cycle
refresh-vs-demand ordering) get dedicated oracle tests at the bottom.
"""

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.compliance import ProtocolChecker
from repro.dram.kernel import KernelChannel, channel_class
from repro.dram.scheduler import SharePolicy
from repro.dram.timing import ChannelParams, DDR3_1600 as T
from repro.sim.engine import Engine

NUM_BANKS = 8


# ---------------------------------------------------------------------------
# Twin-engine replay harness
# ---------------------------------------------------------------------------

def _replay(channel_cls, ops, *, share=False, periodic=None, scheduler=None,
            params=None, page_policy="open"):
    """Run one request mix through ``channel_cls`` on a fresh engine.

    ``ops`` is a list of ``(gap, bank, row, is_write, secure)`` tuples;
    arrivals are cumulative.  Requests that find their queue full are
    held and retried on ``notify_on_space`` (same deterministic policy
    for both backends).  Returns every observable the oracle must match.
    """
    eng = Engine(scheduler=scheduler, periodic=periodic)
    channel = channel_cls(
        eng, "ch0",
        params=params or DEFAULT_TEST_PARAMS,
        share_policy=SharePolicy() if share else None,
        page_policy=page_policy,
    )
    log = channel.start_command_log()
    completions = []
    held = []

    def drain():
        while held and channel.can_accept(held[0].op):
            channel.enqueue(held.pop(0))
        if held:
            channel.notify_on_space(drain)

    def arrive(req):
        if held or not channel.can_accept(req.op):
            if not held:
                channel.notify_on_space(drain)
            held.append(req)
        else:
            channel.enqueue(req)

    now = 0
    for idx, (gap, bank, row, is_write, secure) in enumerate(ops):
        now += gap
        req = MemRequest(
            OpType.WRITE if is_write else OpType.READ, 0, 0,
            bank=bank % NUM_BANKS, row=row,
            traffic=TrafficClass.SECURE if secure else TrafficClass.NORMAL,
            on_complete=(lambda t, i=idx: completions.append((i, t))),
        )
        eng.at(now, lambda r=req: arrive(r))
    eng.run()
    return {
        "log": log,
        "completions": completions,
        "stats": channel.stats.as_dict(),
        "events": eng.events_dispatched,
        "now": eng.now,
        "refreshes": channel.rank.refreshes,
    }


DEFAULT_TEST_PARAMS = ChannelParams(read_queue_depth=8, write_queue_depth=8,
                                    write_drain_hi=6, write_drain_lo=2)


def assert_oracle_match(ops, **kw):
    legacy = _replay(Channel, ops, **kw)
    kernel = _replay(KernelChannel, ops, **kw)
    assert kernel["log"] == legacy["log"]
    assert kernel["completions"] == legacy["completions"]
    assert kernel["stats"] == legacy["stats"]
    assert kernel["events"] == legacy["events"]
    assert kernel["now"] == legacy["now"]
    assert kernel["refreshes"] == legacy["refreshes"]
    return legacy, kernel


# ---------------------------------------------------------------------------
# Property: arbitrary mixes, both backends, identical observables
# ---------------------------------------------------------------------------

_gaps = st.one_of(
    st.integers(min_value=0, max_value=300),
    # Occasional idle gaps beyond tREFI force refresh catch-up batches.
    st.sampled_from([T.tREFI // 2, T.tREFI + 1, 3 * T.tREFI]),
)

_mixes = st.lists(
    st.tuples(
        _gaps,
        st.integers(min_value=0, max_value=NUM_BANKS - 1),  # bank
        st.integers(min_value=0, max_value=7),              # row
        st.booleans(),                                      # is_write
        st.booleans(),                                      # secure
    ),
    min_size=1,
    max_size=40,
)


class TestKernelOracleProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=_mixes, share=st.booleans())
    # Regression seeds (shrunk from development failures / census audits):
    # a write completing after the reads that a stop()-less run would
    # never dispatch caught the unsound future-event elision; the
    # same-tick refresh + demand mix pins catch-up seq ordering.
    @example(ops=[(0, 0, 0, True, False), (0, 0, 1, False, False),
                  (0, 1, 0, False, False)], share=False)
    @example(ops=[(T.tREFI, 0, 0, False, False),
                  (0, 1, 1, True, True), (0, 2, 2, False, True)], share=True)
    @example(ops=[(3 * T.tREFI, b, b % 5, b % 3 == 0, False)
                  for b in range(8)], share=False)
    @example(ops=[(0, 0, i % 2, i % 4 == 0, i % 2 == 1)
                  for i in range(24)], share=True)
    def test_mix_matches_oracle(self, ops, share):
        assert_oracle_match(ops, share=share)

    @settings(max_examples=15, deadline=None)
    @given(ops=_mixes)
    def test_eager_periodic_matches_oracle(self, ops):
        # Eager periodic mode disables the kernel's chain inlining (the
        # dispatch-per-event census oracle); both backends must still
        # agree -- and with chaining off, with the same raw schedule.
        assert_oracle_match(ops, periodic="eager")

    @settings(max_examples=15, deadline=None)
    @given(ops=_mixes)
    def test_wheel_backend_matches_oracle(self, ops):
        assert_oracle_match(ops, scheduler="wheel")

    @settings(max_examples=15, deadline=None)
    @given(ops=_mixes)
    def test_close_page_matches_oracle(self, ops):
        assert_oracle_match(ops, page_policy="close")

    @settings(max_examples=20, deadline=None)
    @given(ops=_mixes, share=st.booleans())
    def test_command_stream_is_jedec_compliant(self, ops, share):
        legacy, kernel = assert_oracle_match(ops, share=share)
        checker = ProtocolChecker(T, NUM_BANKS)
        assert checker.check(kernel["log"]) == []


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_channel_class_follows_engine_backend(self, monkeypatch):
        monkeypatch.delenv("DORAM_DRAM", raising=False)
        assert channel_class(Engine()) is Channel
        monkeypatch.setenv("DORAM_DRAM", "legacy")
        assert channel_class(Engine()) is Channel
        monkeypatch.setenv("DORAM_DRAM", "kernel")
        assert channel_class(Engine()) is KernelChannel

    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("DORAM_DRAM", "simd")
        with pytest.raises(ValueError):
            Engine()

    def test_kernel_is_a_channel(self):
        # Front ends type against Channel; the kernel must substitute.
        assert issubclass(KernelChannel, Channel)


# ---------------------------------------------------------------------------
# Scheduler edge cases, pinned against the oracle *and* absolute timing
# ---------------------------------------------------------------------------

def _acts(log):
    return [c for c in log if c.kind == "ACT"]


class TestSchedulerEdgeCases:
    def test_tfaw_at_exactly_four_acts(self):
        # Five back-to-back closed-bank reads on five distinct banks: the
        # first four ACTs pace at tRRD, the fifth must wait for the full
        # tFAW window -- exactly, not one tick more.
        ops = [(0, b, 0, False, False) for b in range(5)]
        legacy, kernel = assert_oracle_match(ops)
        acts = _acts(kernel["log"])
        assert len(acts) == 5
        times = [c.time for c in acts]
        for a, b in zip(times, times[1:4]):
            assert b - a == T.tRRD
        assert times[4] - times[0] == T.tFAW
        assert ProtocolChecker(T, NUM_BANKS).check(kernel["log"]) == []

    def test_twtr_write_to_read_turnaround_tie(self):
        # Read issued the instant the tWTR fence from a same-rank write
        # expires; the kernel's fused fence arithmetic must land on the
        # same CAS tick as the oracle's Bank.commit.  The read arrives
        # one tick after the (opportunistic) write enters service, so
        # the turnaround order is forced to WR -> RD.
        ops = [(0, 0, 0, True, False), (1, 1, 0, False, False)]
        legacy, kernel = assert_oracle_match(ops)
        cmds = [c for c in kernel["log"] if c.kind in ("WR", "RD")]
        assert [c.kind for c in cmds] == ["WR", "RD"]
        wr, rd = cmds
        # JEDEC: READ CAS >= WRITE data end + tWTR.
        assert rd.time >= wr.time + T.tCWL + T.tBURST + T.tWTR

    def test_trtp_read_to_precharge_tie(self):
        # Close-page policy precharges immediately after each access;
        # the PRE after a read is fenced by tRTP (and tRAS) exactly.
        ops = [(0, 0, 0, False, False), (0, 0, 1, False, False)]
        legacy, kernel = assert_oracle_match(ops, page_policy="close")
        log = kernel["log"]
        rd = next(c for c in log if c.kind == "RD")
        pre = next(c for c in log if c.kind == "PRE" and c.time > rd.time)
        assert pre.time >= rd.time + T.tRTP
        act = next(c for c in log if c.kind == "ACT")
        assert pre.time >= act.time + T.tRAS
        assert ProtocolChecker(T, NUM_BANKS).check(log) == []

    def test_same_cycle_refresh_vs_demand_ordering(self):
        # A demand arriving exactly at the tREFI deadline: the service
        # slot and the refresh due-time coincide on the same cycle, and
        # the (time, seq) tie must resolve identically in both backends
        # -- refresh catch-up first, then the demand access.
        ops = [(T.tREFI, 0, 0, False, False), (0, 1, 1, False, False)]
        legacy, kernel = assert_oracle_match(ops)
        log = kernel["log"]
        assert log[0].kind == "REF"
        first_access = next(c for c in log if c.kind != "REF")
        assert first_access.time >= log[0].time + T.tRFC
        assert ProtocolChecker(T, NUM_BANKS).check(log) == []

    def test_refresh_catchup_batch_matches_oracle(self):
        # Idle for several tREFI windows, then a burst: the kernel's
        # closed-form catch-up must book the same back-dated REF series.
        ops = [(4 * T.tREFI + 17, b % 4, b % 3, b % 2 == 0, False)
               for b in range(6)]
        legacy, kernel = assert_oracle_match(ops)
        refs = [c for c in kernel["log"] if c.kind == "REF"]
        assert len(refs) >= 4
        assert ProtocolChecker(T, NUM_BANKS).check(kernel["log"]) == []
