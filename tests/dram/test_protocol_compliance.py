"""Replay scheduler command streams through the JEDEC protocol checker.

The timing model back-dates PRE/ACT preparation analytically instead of
simulating command slots; these tests record the *implied* command
stream from real scheduler runs (``Channel.start_command_log()``) and
replay it through :class:`repro.dram.compliance.ProtocolChecker`, an
independent referee that knows the JEDEC rules but nothing about the
planner's arithmetic.  Both page policies are covered: open-page (the
paper's FR-FCFS configuration) and close-page (every access precharges
its bank afterwards).
"""

import random

import pytest

from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.dram.compliance import (
    DramCommand,
    ProtocolChecker,
    ProtocolViolation,
)
from repro.dram.timing import ChannelParams, DDR3_1600 as T
from repro.sim.engine import Engine


def _drive(channel, engine, ops):
    """Enqueue a request stream, respecting backpressure, and run the
    engine dry."""
    pending = list(ops)

    def feed():
        while pending:
            op, bank, row = pending[0]
            if not channel.can_accept(op):
                channel.notify_on_space(feed)
                return
            pending.pop(0)
            channel.enqueue(MemRequest(op, 0, 0, bank=bank, row=row))

    feed()
    engine.run()
    # Anything still held back gets fed as the queues drain.
    while pending:
        feed()
        engine.run()


def _mixed_ops(n=120, banks=8, rows=6, write_frac=0.4, seed=3):
    rng = random.Random(seed)
    ops = []
    for _ in range(n):
        op = OpType.WRITE if rng.random() < write_frac else OpType.READ
        ops.append((op, rng.randrange(banks), rng.randrange(rows)))
    return ops


def _run_policy(page_policy, ops=None, **channel_kw):
    engine = Engine()
    channel = Channel(engine, "ch0", page_policy=page_policy, **channel_kw)
    log = channel.start_command_log()
    _drive(channel, engine, ops or _mixed_ops())
    return channel, log


class TestOpenPageCompliance:
    def test_mixed_stream_is_compliant(self):
        channel, log = _run_policy("open")
        checker = ProtocolChecker(T, channel.params.num_banks)
        assert checker.check(log) == []
        mix = checker.summarize(log)
        # The stream must actually exercise every command type the
        # open-page policy can emit.
        assert mix.get("ACT", 0) > 0
        assert mix.get("PRE", 0) > 0          # row conflicts
        assert mix.get("RD", 0) > 0 and mix.get("WR", 0) > 0

    def test_write_drain_burst_is_compliant(self):
        # Hammer writes past the drain watermark, then reads (tWTR path).
        ops = [(OpType.WRITE, b % 8, b % 4) for b in range(60)]
        ops += [(OpType.READ, b % 8, b % 4) for b in range(30)]
        channel, log = _run_policy(
            "open", ops=ops,
            params=ChannelParams(write_drain_hi=8, write_drain_lo=2),
        )
        assert ProtocolChecker(T, 8).check(log) == []

    def test_single_bank_conflict_storm_is_compliant(self):
        # Alternating rows on one bank, one request in flight at a time
        # (batch feeding would let FR-FCFS group the row hits and dodge
        # the conflicts): every access is a conflict, so the PRE -> ACT
        # -> CAS chain and tRC pacing all get exercised.
        engine = Engine()
        channel = Channel(engine, "ch0", page_policy="open")
        log = channel.start_command_log()
        for i in range(40):
            channel.enqueue(MemRequest(OpType.READ, 0, 0, bank=0, row=i % 2))
            engine.run()
        checker = ProtocolChecker(T, 8)
        assert checker.check(log) == []
        assert checker.summarize(log)["PRE"] >= 38

    def test_refresh_windows_are_compliant(self):
        # Open-loop arrivals spread across simulated time so the rank's
        # tREFI deadline actually passes while traffic is in flight
        # (saturating the queues instead would chain serviced bursts far
        # ahead of the decision clock and starve the refresh check).
        engine = Engine()
        channel = Channel(engine, "ch0", page_policy="open")
        log = channel.start_command_log()
        period = 200
        n = T.tREFI // period + 50
        for i in range(n):
            req = MemRequest(OpType.READ, 0, 0,
                             bank=i % 8, row=(i // 8) % 4)
            engine.at(i * period, lambda r=req: channel.enqueue(r))
        engine.run()
        checker = ProtocolChecker(T, 8)
        assert checker.check(log) == []
        assert checker.summarize(log).get("REF", 0) >= 1
        assert channel.rank.refreshes >= 1


class TestClosePageCompliance:
    def test_mixed_stream_is_compliant(self):
        channel, log = _run_policy("close")
        checker = ProtocolChecker(T, channel.params.num_banks)
        assert checker.check(log) == []
        mix = checker.summarize(log)
        # Close-page precharges after every access...
        assert mix["PRE"] >= mix["RD"] + mix["WR"] - 8
        # ...so nothing can ever hit an open row.
        assert channel.row_hit_rate() == 0.0

    def test_back_to_back_same_row_still_reactivates(self):
        ops = [(OpType.READ, 0, 0) for _ in range(20)]
        channel, log = _run_policy("close", ops=ops)
        checker = ProtocolChecker(T, 8)
        assert checker.check(log) == []
        assert checker.summarize(log)["ACT"] == 20

    def test_write_recovery_fences_precharge(self):
        ops = [(OpType.WRITE, 0, 0), (OpType.WRITE, 0, 0)]
        channel, log = _run_policy("close", ops=ops)
        assert ProtocolChecker(T, 8).check(log) == []
        pres = sorted((c for c in log if c.kind == "PRE"),
                      key=lambda c: c.time)
        wrs = sorted((c for c in log if c.kind == "WR"),
                     key=lambda c: c.time)
        # PRE must clear the write burst + tWR, not just tRAS.
        assert pres[0].time >= wrs[0].time + T.tCWL + T.tBURST + T.tWR


class TestCheckerCatchesViolations:
    """The referee itself must reject hand-made illegal streams."""

    def _legal_prefix(self):
        return [
            DramCommand(0, "ACT", 0, 5),
            DramCommand(T.tRCD, "RD", 0, 5),
        ]

    def test_cas_before_act(self):
        with pytest.raises(ProtocolViolation, match="CAS before ACT"):
            ProtocolChecker(T).check([DramCommand(0, "RD", 0, 1)])

    def test_cas_wrong_row(self):
        cmds = self._legal_prefix() + [
            DramCommand(T.tRCD + 1, "RD", 0, 6),
        ]
        with pytest.raises(ProtocolViolation, match="row 6"):
            ProtocolChecker(T).check(cmds)

    def test_cas_inside_trcd(self):
        cmds = [DramCommand(0, "ACT", 0, 5),
                DramCommand(T.tRCD - 1, "RD", 0, 5)]
        with pytest.raises(ProtocolViolation, match="tRCD"):
            ProtocolChecker(T).check(cmds)

    def test_act_without_pre(self):
        cmds = self._legal_prefix() + [
            DramCommand(10 * T.tRC, "ACT", 0, 7),
        ]
        with pytest.raises(ProtocolViolation, match="missing PRE"):
            ProtocolChecker(T).check(cmds)

    def test_pre_inside_tras(self):
        cmds = [DramCommand(0, "ACT", 0, 5),
                DramCommand(T.tRAS - 1, "PRE", 0)]
        with pytest.raises(ProtocolViolation, match="tRAS"):
            ProtocolChecker(T).check(cmds)

    def test_act_inside_trp(self):
        cmds = [
            DramCommand(0, "ACT", 0, 5),
            DramCommand(T.tRAS + T.tRTP, "PRE", 0),
            DramCommand(T.tRAS + T.tRTP + T.tRP - 1, "ACT", 0, 6),
        ]
        with pytest.raises(ProtocolViolation, match="tRP"):
            ProtocolChecker(T).check(cmds)

    def test_trrd_between_banks(self):
        cmds = [DramCommand(0, "ACT", 0, 1),
                DramCommand(T.tRRD - 1, "ACT", 1, 1)]
        with pytest.raises(ProtocolViolation, match="tRRD"):
            ProtocolChecker(T).check(cmds)

    def test_tfaw_five_activates(self):
        cmds = [
            DramCommand(i * T.tRRD, "ACT", i, 1) for i in range(4)
        ]
        cmds.append(DramCommand(T.tFAW - 1, "ACT", 4, 1))
        with pytest.raises(ProtocolViolation, match="tFAW"):
            ProtocolChecker(T).check(cmds)

    def test_twtr_write_to_read(self):
        cmds = [
            DramCommand(0, "ACT", 0, 1),
            DramCommand(T.tRCD, "WR", 0, 1),
            # Read CAS immediately after write data: violates tWTR.
            DramCommand(T.tRCD + T.tCWL + T.tBURST, "RD", 0, 1),
        ]
        with pytest.raises(ProtocolViolation, match="tWTR"):
            ProtocolChecker(T).check(cmds)

    def test_non_strict_accumulates(self):
        checker = ProtocolChecker(T)
        violations = checker.check(
            [DramCommand(0, "RD", 0, 1), DramCommand(1, "WR", 0, 1)],
            strict=False,
        )
        assert len(violations) >= 2

    def test_tfaw_spaced_activates_pass(self):
        cmds = [
            DramCommand(0, "ACT", 0, 1),
            DramCommand(T.tRRD, "ACT", 1, 1),
            DramCommand(2 * T.tRRD, "ACT", 2, 1),
            DramCommand(3 * T.tRRD, "ACT", 3, 1),
            DramCommand(T.tFAW, "ACT", 4, 1),
        ]
        assert ProtocolChecker(T).check(cmds) == []


class TestLoggingIsInert:
    def test_no_log_by_default(self):
        engine = Engine()
        channel = Channel(engine, "ch0")
        channel.enqueue(MemRequest(OpType.READ, 0, 0, bank=0, row=0))
        engine.run()
        assert channel.command_log is None
        assert all(not b.record_commands for b in channel.banks)

    def test_logging_does_not_change_timing(self):
        done_plain, done_logged = [], []
        for sink, log_on in ((done_plain, False), (done_logged, True)):
            engine = Engine()
            channel = Channel(engine, "ch0")
            if log_on:
                channel.start_command_log()
            for op, bank, row in _mixed_ops(n=60):
                channel.enqueue(MemRequest(
                    op, 0, 0, bank=bank, row=row,
                    on_complete=lambda t, s=sink: s.append(t),
                ))
            engine.run()
        assert done_plain == done_logged
