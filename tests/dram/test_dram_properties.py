"""Property-based tests on the DRAM timing model (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.dram.bank import Bank, RankTimers
from repro.dram.commands import MemRequest, OpType
from repro.dram.timing import DDR3_1600 as T

requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),      # row
        st.booleans(),                               # is_write
        st.integers(min_value=0, max_value=200),     # extra arrival gap
    ),
    min_size=1,
    max_size=40,
)


def req(row, is_write):
    return MemRequest(
        OpType.WRITE if is_write else OpType.READ, 0, 0, bank=0, row=row
    )


@settings(max_examples=80, deadline=None)
@given(ops=requests)
def test_data_starts_never_precede_commands(ops):
    """Every burst start respects the minimum command chain from its
    earliest-allowed time (closed: tRCD+CAS; conflict also tRP)."""
    rank = RankTimers(T)
    bank = Bank(T, rank)
    now = 0
    for row, is_write, gap in ops:
        now += gap
        outcome = bank.classify(row)
        start, outcome2 = bank.commit(req(row, is_write), earliest=now)
        assert outcome == outcome2
        cas = T.tCWL if is_write else T.tCL
        if outcome == "closed":
            assert start >= now + T.tRCD + cas
        elif outcome == "conflict":
            assert start >= now + T.tRP + T.tRCD + cas
        assert start >= now


@settings(max_examples=80, deadline=None)
@given(ops=requests, floor_gap=st.integers(min_value=0, max_value=10_000))
def test_floor_always_respected(ops, floor_gap):
    rank = RankTimers(T)
    bank = Bank(T, rank)
    floor = 0
    for row, is_write, gap in ops:
        floor += gap + floor_gap
        start, _ = bank.commit(req(row, is_write), earliest=0, floor=floor)
        assert start >= floor


@settings(max_examples=60, deadline=None)
@given(ops=requests)
def test_same_bank_bursts_never_go_backwards(ops):
    """Sequential commits with monotone earliest yield monotone bursts
    when each burst is floored at the previous one's end (as the
    channel's shared data bus enforces)."""
    rank = RankTimers(T)
    bank = Bank(T, rank)
    last_start = -1
    bus_free = 0
    now = 0
    for row, is_write, gap in ops:
        now += gap
        start, _ = bank.commit(req(row, is_write), earliest=now,
                               floor=bus_free)
        assert start > last_start or last_start < 0
        last_start = start
        bus_free = start + T.tBURST


@settings(max_examples=60, deadline=None)
@given(
    act_gaps=st.lists(st.integers(min_value=0, max_value=50),
                      min_size=5, max_size=12),
)
def test_tfaw_rolling_window(act_gaps):
    """No five activates ever land inside one tFAW window."""
    rank = RankTimers(T)
    acts = []
    t = 0
    for gap in act_gaps:
        slot = rank.activate_slot(t + gap)
        rank.note_activate(slot)
        acts.append(slot)
        t = slot
    for i in range(len(acts) - 4):
        assert acts[i + 4] - acts[i] >= T.tFAW
