"""Scenario x faults integration: armed plans never change *results*.

Extends the tenant-isolation regression with hardware-level fault plans
(PR 5's ``repro.faults``) armed on the scenario fabric:

* an armed-but-**empty** plan must leave the whole stored payload --
  ``report_digest()`` -- bit-identical to a bare run (the recovery
  framing is schedule-neutral, pinned here at the service layer);
* link corruption and DRAM bit-flips may move per-tenant **timing**
  digests (retransmits and re-reads shift the schedule) but never the
  **functional** digests: every tenant still gets exactly the data it
  asked for, in its own completion order.

Load is kept modest (read-only, generous queue) so no run sheds work at
admission -- a timing-dependent overflow would legitimately shift seqs
and void the functional comparison; the ``rejected_overflow == 0``
guard asserts the precondition explicitly.
"""

import pytest

from repro.faults import DramFault, FaultPlan, LinkFault
from repro.faults.inject import FaultController
from repro.oram.config import OramConfig
from repro.scenarios import ScenarioConfig, run_scenario

ORAM = OramConfig(leaf_level=12)
HORIZON_NS = 20_000.0


def _config(num_tenants=3, **kw):
    return ScenarioConfig(
        num_tenants=num_tenants,
        horizon_ns=HORIZON_NS,
        oram=ORAM,
        seed=11,
        queue_cap=256,
        **kw,
    )


@pytest.fixture(scope="module")
def bare():
    return run_scenario(_config())


@pytest.fixture(scope="module")
def link_faulted():
    plan = FaultPlan(
        seed=3,
        link=(
            LinkFault(kind="corrupt", link="bob0.down", rate=0.05),
            LinkFault(kind="delay", link="bob0.up", rate=0.05,
                      delay_ns=40.0),
        ),
    )
    return run_scenario(_config(), faults=FaultController(plan))


@pytest.fixture(scope="module")
def dram_faulted():
    plan = FaultPlan(seed=3, dram=(DramFault(channel="ch0*", rate=0.01),))
    return run_scenario(_config(), faults=FaultController(plan))


def _no_shedding(result):
    return all(
        int(row["rejected_overflow"]) == 0
        and int(row["rejected_shed"]) == 0
        for row in result.tenants.values()
    )


class TestArmedEmpty:
    def test_payload_bit_identical_to_bare(self, bare):
        armed = run_scenario(_config(), faults=FaultController(FaultPlan()))
        assert armed.report_digest() == bare.report_digest()

    def test_summary_reports_quiet_sessions(self):
        armed = run_scenario(_config(), faults=FaultController(FaultPlan()))
        assert armed.fault_summary["faults"] == {}
        # One recovery session per tenant was armed (and stayed quiet).
        sessions = [k for k in armed.fault_summary if k.startswith("sdlink")]
        assert len(sessions) == 3


class TestLinkFaults:
    def test_faults_actually_fired(self, link_faulted):
        assert link_faulted.fault_summary["faults"].get(
            "link_corrupts", 0) > 0

    def test_no_admission_shedding(self, bare, link_faulted):
        assert _no_shedding(bare) and _no_shedding(link_faulted)

    def test_functional_digests_invariant(self, bare, link_faulted):
        for tenant, row in bare.tenants.items():
            assert (link_faulted.tenants[tenant]["functional_digest"]
                    == row["functional_digest"])

    def test_timing_digest_moves(self, bare, link_faulted):
        assert any(
            link_faulted.tenants[t]["timing_digest"]
            != bare.tenants[t]["timing_digest"]
            for t in bare.tenants
        )


class TestDramFaults:
    def test_faults_actually_fired(self, dram_faulted):
        fired = dram_faulted.fault_summary["faults"]
        assert fired.get("dram_flips", 0) > 0
        assert fired.get("block_rereads", 0) > 0

    def test_no_admission_shedding(self, dram_faulted):
        assert _no_shedding(dram_faulted)

    def test_functional_digests_invariant(self, bare, dram_faulted):
        for tenant, row in bare.tenants.items():
            assert (dram_faulted.tenants[tenant]["functional_digest"]
                    == row["functional_digest"])

    def test_completions_exposed_for_scoring(self, dram_faulted):
        for tenant, row in dram_faulted.tenants.items():
            ticks = dram_faulted.tenant_completions[tenant]
            assert len(ticks) == int(row["completed"])
            assert all(sojourn >= 0 for _, sojourn in ticks)
