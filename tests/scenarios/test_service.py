"""The multi-tenant service runner: SLO report, determinism, governance.

The acceptance bar for the scenario layer: >= 8 concurrent tenants under
open-loop Poisson arrivals, per-tenant p50/p99/p999 + goodput in the
report, and byte-identical reports and trace digests for equal seeds
across scheduler backends.  The short-horizon variants here stay in
tier-1; an extended heap-vs-wheel pass runs under ``-m slow``.
"""

import pytest

from repro.obs.export import trace_digest
from repro.obs.tracer import Tracer
from repro.oram.config import OramConfig
from repro.scenarios import (
    ScenarioConfig,
    ScenarioResult,
    format_report,
    golden_scenario_config,
    run_scenario,
)
from repro.sim.engine import ns

ORAM = OramConfig(leaf_level=12)


def _config(**kw):
    kw.setdefault("num_tenants", 8)
    kw.setdefault("horizon_ns", 20_000.0)
    kw.setdefault("oram", ORAM)
    kw.setdefault("seed", 3)
    return ScenarioConfig(**kw)


@pytest.fixture(scope="module")
def eight():
    return run_scenario(_config())


class TestServeSmoke:
    def test_every_tenant_served(self, eight):
        assert len(eight.tenants) == 8
        for row in eight.tenants.values():
            assert row["completed"] > 0
            assert row["goodput_rps"] > 0

    def test_slo_percentiles_reported(self, eight):
        for row in eight.tenants.values():
            lat = row["latency_ns"]
            assert set(lat) >= {"p50", "p99", "p999", "mean", "max", "count"}
            assert 0 < lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]

    def test_drain_completes_all_admitted(self, eight):
        for row in eight.tenants.values():
            assert row["completed"] == row["admitted"]
            assert (row["offered"] == row["admitted"]
                    + row["rejected_overflow"] + row["rejected_shed"]
                    + row["rejected_fault"])

    def test_tenants_spread_over_secure_subchannels(self, eight):
        # All 8 trees live on channel 0's four sub-channels; every
        # sub-channel must have seen secure traffic.
        secure = [row for name, row in eight.channels.items()
                  if name.startswith("ch0.")]
        assert len(secure) == 4
        assert all(row["secure_reads"] > 0 for row in secure)

    def test_oram_emission_pacing(self, eight):
        # Fixed-rate frontends emit dummies whenever queues run dry; an
        # open-loop tenant at this load must see both kinds.
        for row in eight.tenants.values():
            assert row["oram_emissions"]["real"] > 0
            assert row["oram_emissions"]["dummy"] > 0

    def test_format_report_renders(self, eight):
        text = format_report(eight)
        assert "aggregate:" in text
        assert "p999" in text
        assert "report digest" in text


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        first = run_scenario(_config())
        second = run_scenario(_config())
        assert first.to_json_dict() == second.to_json_dict()
        assert first.report_digest() == second.report_digest()

    def test_different_seed_differs(self, eight):
        other = run_scenario(_config(seed=4))
        assert other.report_digest() != eight.report_digest()

    def test_json_round_trip(self, eight):
        state = eight.to_json_dict()
        back = ScenarioResult.from_json_dict(state)
        assert back.to_json_dict() == state
        assert back.report_digest() == eight.report_digest()

    def test_heap_wheel_trace_identical(self, monkeypatch):
        digests = {}
        for sched in ("heap", "wheel"):
            monkeypatch.setenv("DORAM_SCHED", sched)
            tracer = Tracer()
            result = run_scenario(golden_scenario_config(), tracer=tracer)
            digests[sched] = (
                result.report_digest(), trace_digest(tracer.events),
            )
        assert digests["heap"] == digests["wheel"]


@pytest.mark.slow
class TestDeterminismExtended:
    """The acceptance-criteria run at full depth: 8 tenants, longer
    horizon, report + trace digests across heap/wheel."""

    def _run(self, monkeypatch, sched):
        monkeypatch.setenv("DORAM_SCHED", sched)
        tracer = Tracer()
        result = run_scenario(
            _config(horizon_ns=100_000.0, write_fraction=0.2,
                    slo_target_ns=1_500.0), tracer=tracer,
        )
        return result.report_digest(), trace_digest(tracer.events)

    def test_eight_tenants_heap_wheel_byte_identical(self, monkeypatch):
        assert self._run(monkeypatch, "heap") == \
            self._run(monkeypatch, "wheel")


class TestGovernor:
    @pytest.fixture(scope="class")
    def governed(self):
        # An absurdly tight SLO: every window ratio lands deep in the
        # "small" category, so shedding must engage.
        return run_scenario(_config(
            num_tenants=4, slo_target_ns=1.0, control_interval_ns=2_000.0,
        ))

    def test_decisions_logged(self, governed):
        decisions = governed.governor["decisions"]
        assert governed.governor["enabled"]
        assert len(decisions) >= 5
        for row in decisions:
            assert set(row) == {"ts", "channel", "ratio", "category",
                                "admitting"}

    def test_shedding_engages_but_respects_floor(self, governed):
        assert governed.governor["sheds"] > 0
        shed = sum(row["rejected_shed"]
                   for row in governed.tenants.values())
        assert shed > 0
        for row in governed.governor["decisions"]:
            assert row["admitting"] >= 1  # min_admitting floor

    def test_low_tenant_ids_keep_admitting(self, governed):
        # Shedding trims from the highest id down; tenant 0 never sheds.
        assert governed.tenants["0"]["rejected_shed"] == 0

    def test_loose_slo_never_sheds(self):
        relaxed = run_scenario(_config(
            num_tenants=4, slo_target_ns=1e9, control_interval_ns=2_000.0,
        ))
        assert relaxed.governor["sheds"] == 0
        assert all(row["rejected_shed"] == 0
                   for row in relaxed.tenants.values())


class TestRunModes:
    def test_no_drain_stops_at_horizon(self):
        result = run_scenario(_config(num_tenants=2, drain=False))
        assert result.end_time == ns(20_000.0)

    def test_drain_runs_past_horizon(self, eight):
        assert eight.end_time >= ns(20_000.0)

    def test_snapshots_sampled(self):
        result = run_scenario(_config(
            num_tenants=2, snapshot_interval_ns=2_000.0,
        ))
        assert len(result.snapshots) >= 10
        row = result.snapshots[0]
        assert "tenant0" in row and "sd0" in row
        assert set(row["tenant0"]) == {"queued", "backlog", "outstanding"}

    def test_two_secure_channels(self):
        result = run_scenario(_config(
            num_tenants=4, secure_channels=(0, 2),
        ))
        placements = {row["secure_channel"]
                      for row in result.tenants.values()}
        assert placements == {0, 2}
        for row in result.tenants.values():
            assert row["completed"] == row["admitted"]

    def test_queue_overflow_counted(self):
        # queue_cap=1 at a rate far past the fixed-rate frontends'
        # drain capacity: overflow must reject, not deadlock.
        result = run_scenario(_config(
            num_tenants=2, queue_cap=1,
            arrival=ScenarioConfig().arrival.with_rate(5_000_000.0),
        ))
        assert sum(row["rejected_overflow"]
                   for row in result.tenants.values()) > 0
        for row in result.tenants.values():
            assert row["completed"] == row["admitted"]

    def test_writes_complete_at_accept(self):
        result = run_scenario(_config(num_tenants=2, write_fraction=1.0))
        for row in result.tenants.values():
            assert row["writes"] == row["completed"] > 0
            # Store sojourn = queueing delay only; far below read RTT.
            assert row["latency_ns"]["p50"] < 500.0
