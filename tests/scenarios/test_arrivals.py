"""Property tests on the seeded arrival generators (hypothesis).

The determinism contract the service layer builds on:

* equal ``(spec, seed)`` => bit-identical tick sequences;
* per-stream times strictly increase (>= 1 tick gaps);
* the empirical rate tracks the configured rate;
* a merge of several tenants' streams is totally ordered by
  ``(tick, tenant)`` and leaves each tenant's subsequence untouched.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scenarios.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    derive_seed,
    make_stream,
    merge_streams,
)
from repro.sim.engine import TICKS_PER_NS, ns

seeds = st.integers(min_value=0, max_value=2**63 - 1)
kinds = st.sampled_from(ARRIVAL_KINDS)

#: 50 us at the default 200 krps: ~10 arrivals per stream -- enough to
#: exercise state machinery without slowing hypothesis down.
SHORT_HORIZON = ns(50_000)


def _spec(kind: str, rate: float = 200_000.0) -> ArrivalSpec:
    return ArrivalSpec(kind=kind, rate_rps=rate)


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(kind=kinds, seed=seeds)
def test_same_seed_bit_identical(kind, seed):
    spec = _spec(kind)
    first = make_stream(spec, seed).take_until(SHORT_HORIZON)
    second = make_stream(spec, seed).take_until(SHORT_HORIZON)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(kind=kinds, seed=seeds)
def test_incremental_take_matches_take_until(kind, seed):
    """peek/take one at a time is the same sequence as a bulk drain."""
    spec = _spec(kind)
    bulk = make_stream(spec, seed).take_until(SHORT_HORIZON)
    stream = make_stream(spec, seed)
    stepped = []
    while stream.peek() < SHORT_HORIZON:
        due = stream.peek()
        assert stream.take() == due
        stepped.append(due)
    assert stepped == bulk
    assert stream.occurrences == len(bulk)


@settings(max_examples=60, deadline=None)
@given(kind=kinds, seed=seeds)
def test_strictly_increasing_integer_ticks(kind, seed):
    times = make_stream(_spec(kind), seed).take_until(SHORT_HORIZON)
    assert all(isinstance(t, int) for t in times)
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(t < SHORT_HORIZON for t in times)


@settings(max_examples=40, deadline=None)
@given(seed=seeds, start=st.integers(min_value=0, max_value=10**6))
def test_start_tick_offsets_the_whole_stream(seed, start):
    """Shifting the origin shifts every occurrence by exactly that much
    (the draws themselves do not depend on the origin) -- poisson only;
    the modulated kinds anchor their state clocks to absolute time."""
    base = make_stream(_spec("poisson"), seed, start_tick=0)
    moved = make_stream(_spec("poisson"), seed, start_tick=start)
    base_times = base.take_until(SHORT_HORIZON)
    moved_times = moved.take_until(SHORT_HORIZON + start)
    assert moved_times == [t + start for t in base_times]


# ---------------------------------------------------------------------------
# Rate tracking
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=seeds)
def test_poisson_empirical_rate_within_tolerance(seed):
    rate = 1_000_000.0
    horizon_ns = 2_000_000.0  # expect ~2000 arrivals
    times = make_stream(_spec("poisson", rate), seed) \
        .take_until(ns(horizon_ns))
    expected = rate * horizon_ns * 1e-9
    # 25 % tolerance is ~11 sigma at n=2000: effectively impossible to
    # trip by chance, tight enough to catch a rate-unit bug instantly.
    assert abs(len(times) - expected) < 0.25 * expected


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_diurnal_long_run_rate_matches_mean(seed):
    """Thinning is calibrated so the long-run mean equals rate_rps."""
    rate = 1_000_000.0
    horizon_ns = 2_000_000.0  # 10 full default periods
    times = make_stream(_spec("diurnal", rate), seed) \
        .take_until(ns(horizon_ns))
    expected = rate * horizon_ns * 1e-9
    assert abs(len(times) - expected) < 0.30 * expected


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_bursty_rate_between_base_and_burst(seed):
    spec = _spec("bursty", 500_000.0)
    horizon_ns = 2_000_000.0
    times = make_stream(spec, seed).take_until(ns(horizon_ns))
    base = spec.rate_rps * horizon_ns * 1e-9
    burst = spec.effective_burst_rate_rps * horizon_ns * 1e-9
    assert 0.5 * base < len(times) < burst


# ---------------------------------------------------------------------------
# Merged ordering
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(kind=kinds, base_seed=seeds,
       num_tenants=st.integers(min_value=2, max_value=6))
def test_merge_is_totally_ordered_and_faithful(kind, base_seed, num_tenants):
    spec = _spec(kind)
    streams = {
        t: make_stream(spec, derive_seed(base_seed, t))
        for t in range(num_tenants)
    }
    merged = list(merge_streams(streams, SHORT_HORIZON))
    # Strict total (tick, tenant) order -- no duplicates, no inversions.
    assert merged == sorted(merged)
    assert len(set(merged)) == len(merged)
    # Each tenant's subsequence is exactly its solo stream: merging
    # (= co-locating more tenants) never perturbs anyone's arrivals.
    for t in range(num_tenants):
        solo = make_stream(spec, derive_seed(base_seed, t)) \
            .take_until(SHORT_HORIZON)
        assert [tick for tick, who in merged if who == t] == solo


@settings(max_examples=60, deadline=None)
@given(base_seed=seeds,
       a=st.integers(min_value=0, max_value=63),
       b=st.integers(min_value=0, max_value=63))
def test_derive_seed_injective_over_tenants(base_seed, a, b):
    if a == b:
        assert derive_seed(base_seed, a) == derive_seed(base_seed, b)
    else:
        assert derive_seed(base_seed, a) != derive_seed(base_seed, b)


# ---------------------------------------------------------------------------
# Spec plumbing
# ---------------------------------------------------------------------------

class TestArrivalSpec:
    def test_json_round_trip(self):
        spec = ArrivalSpec(kind="bursty", rate_rps=123_456.0,
                           burst_rate_rps=999_999.0, dwell_ns=5_000.0)
        assert ArrivalSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="constant")

    @pytest.mark.parametrize("field,value", [
        ("rate_rps", 0.0), ("rate_rps", -1.0), ("burst_rate_rps", -1.0),
        ("dwell_ns", 0.0), ("period_ns", 0.0),
        ("trough_fraction", 0.0), ("trough_fraction", 1.5),
    ])
    def test_rejects_bad_fields(self, field, value):
        with pytest.raises(ValueError):
            ArrivalSpec(**{field: value})

    def test_mean_gap_ticks(self):
        spec = ArrivalSpec(rate_rps=1e9)  # one per ns
        assert spec.mean_gap_ticks == TICKS_PER_NS

    def test_burst_rate_defaults_to_5x(self):
        assert ArrivalSpec().effective_burst_rate_rps == \
            5.0 * ArrivalSpec().rate_rps
        assert ArrivalSpec(burst_rate_rps=7.0).effective_burst_rate_rps == 7.0

    def test_with_rate(self):
        assert ArrivalSpec().with_rate(42.0).rate_rps == 42.0

    def test_stream_classes(self):
        assert isinstance(make_stream(_spec("poisson"), 1), PoissonArrivals)
        assert isinstance(make_stream(_spec("bursty"), 1), BurstyArrivals)
        assert isinstance(make_stream(_spec("diurnal"), 1), DiurnalArrivals)
