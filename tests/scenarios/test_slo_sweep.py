"""ScenarioPoint through the shared sweep runner: store, resume, rows."""

import pytest

from repro.analysis.report import slo_markdown
from repro.analysis.sweep import ResultStore, execute_point
from repro.scenarios import (
    ScenarioConfig,
    ScenarioPoint,
    run_slo_sweep,
    scenario_grid,
    slo_rows,
)

#: Every point in this file runs a tiny tree over a short horizon.
FAST = {
    "oram.leaf_level": 12,
    "horizon_ns": 10_000.0,
    "seed": 9,
}


def _grid():
    return scenario_grid([1, 2], [200_000.0], base_overrides=FAST)


class TestScenarioPoint:
    def test_grid_shape_and_labels(self):
        points = scenario_grid([1, 2, 4], [1e5, 2e5], base_overrides=FAST)
        assert len(points) == 6
        assert len({p.key() for p in points}) == 6
        for p in points:
            assert p.label.startswith("scenario[")
            assert "num_tenants=" in p.label

    def test_overrides_sorted_and_hashable(self):
        a = ScenarioPoint(overrides=(("num_tenants", 2), ("seed", 9)))
        b = ScenarioPoint(overrides=(("seed", 9), ("num_tenants", 2)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_key_varies_with_digest_flag(self):
        point = _grid()[0]
        assert point.key(with_digest=False) != point.key(with_digest=True)

    def test_resolved_config(self):
        point = _grid()[0]
        config = point.resolved_config()
        assert isinstance(config, ScenarioConfig)
        assert config.num_tenants == 1
        assert config.oram.leaf_level == 12
        assert config.arrival.rate_rps == 200_000.0

    def test_execute_payload_shape(self):
        payload = _grid()[0].execute(with_digest=True)
        assert payload["point"]["kind"] == "scenario"
        assert payload["report_digest"]
        assert payload["trace_digest"]
        assert payload["result"]["version"] >= 1

    def test_execute_point_dispatches_to_scenario(self):
        # The generalized runner entry: any point with .execute goes
        # through it instead of the RunPoint simulator.
        point = _grid()[0]
        payload = execute_point(point, timeout_s=300.0)
        assert payload["point"]["kind"] == "scenario"
        assert payload == point.execute(False)


class TestSloSweep:
    def test_sweep_then_resume_hits_store(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = run_slo_sweep(_grid(), workers=1, store=store,
                              timeout_s=300.0)
        assert first.simulated == 2 and first.store_hits == 0
        assert not first.failed
        again = run_slo_sweep(_grid(), workers=1, store=store,
                              timeout_s=300.0)
        assert again.simulated == 0 and again.store_hits == 2
        assert {p.key() for p in first.payloads} == \
            {p.key() for p in again.payloads}

    def test_slo_rows_complete_and_sorted(self, tmp_path):
        result = run_slo_sweep(
            scenario_grid([2, 1], [3e5, 2e5], base_overrides=FAST),
            workers=1, store=ResultStore(str(tmp_path)), timeout_s=300.0,
        )
        rows = slo_rows(result)
        assert [(r["tenants"], r["rate_rps"]) for r in rows] == \
            [(1, 2e5), (1, 3e5), (2, 2e5), (2, 3e5)]
        for row in rows:
            assert row["completed"] > 0
            assert row["goodput_rps"] > 0
            assert row["worst_p50_ns"] <= row["worst_p99_ns"] \
                <= row["worst_p999_ns"]
            assert row["report_digest"]

    def test_slo_markdown_renders(self, tmp_path):
        result = run_slo_sweep(_grid(), workers=1,
                               store=ResultStore(str(tmp_path)),
                               timeout_s=300.0)
        text = slo_markdown(slo_rows(result))
        assert text.startswith("|")
        assert "goodput" in text
        assert text.count("\n") >= 3  # header + rule + 2 data rows


@pytest.mark.slow
class TestSloSweepParallel:
    def test_two_workers_match_serial(self, tmp_path):
        serial = run_slo_sweep(_grid(), workers=1, timeout_s=300.0)
        parallel = run_slo_sweep(_grid(), workers=2, timeout_s=300.0)
        serial_digests = {p.key(): pay["report_digest"]
                          for p, pay in serial.payloads.items()}
        parallel_digests = {p.key(): pay["report_digest"]
                            for p, pay in parallel.payloads.items()}
        assert serial_digests == parallel_digests
