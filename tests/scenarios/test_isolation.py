"""Tenant-isolation regression: co-location moves timing, never results.

Tenant 0's *functional* digest folds ``(seq, block_id, op)`` per
completion in completion order.  With read-only load and ``drain=True``
(completed == admitted, FIFO completion per tenant), that digest is a
pure function of the tenant's own seeded streams -- so running tenant 0
alone, next to contending neighbours, or next to a *faulted* neighbour
must leave it bit-identical.  The timing digest, by contrast, must move
under contention (otherwise it pins nothing).
"""

import pytest

from repro.oram.config import OramConfig
from repro.scenarios import ScenarioConfig, TenantFault, run_scenario

#: Small tree + short horizon: each run takes well under a second.
ORAM = OramConfig(leaf_level=12)
HORIZON_NS = 20_000.0


def _config(num_tenants, **kw):
    return ScenarioConfig(
        num_tenants=num_tenants,
        horizon_ns=HORIZON_NS,
        oram=ORAM,
        seed=11,
        **kw,
    )


@pytest.fixture(scope="module")
def solo():
    return run_scenario(_config(1))


@pytest.fixture(scope="module")
def trio():
    return run_scenario(_config(3))


class TestTenantIsolation:
    def test_runs_did_real_work(self, solo, trio):
        assert solo.tenants["0"]["completed"] > 0
        assert all(row["completed"] > 0 for row in trio.tenants.values())

    def test_functional_digest_unmoved_by_neighbours(self, solo, trio):
        assert (trio.tenants["0"]["functional_digest"]
                == solo.tenants["0"]["functional_digest"])

    def test_offered_and_admitted_unmoved_by_neighbours(self, solo, trio):
        for key in ("offered", "admitted", "completed"):
            assert trio.tenants["0"][key] == solo.tenants["0"][key]

    def test_timing_digest_moves_under_contention(self, solo, trio):
        # Shared delegator + secure channel: the schedule must shift.
        assert (trio.tenants["0"]["timing_digest"]
                != solo.tenants["0"]["timing_digest"])

    def test_drain_completes_everything(self, trio):
        for row in trio.tenants.values():
            assert row["completed"] == row["admitted"]


class TestTenantScopedFaults:
    @pytest.fixture(scope="class")
    def faulted(self):
        fault = TenantFault(tenant_id=1, kind="drop", fraction=1.0, seed=5)
        return run_scenario(_config(3, tenant_faults=(fault,)))

    def test_fault_perturbs_only_its_tenant(self, trio, faulted):
        assert faulted.tenants["1"]["rejected_fault"] > 0
        assert (faulted.tenants["1"]["functional_digest"]
                != trio.tenants["1"]["functional_digest"])

    def test_other_tenants_functionally_untouched(self, trio, faulted):
        for tenant in ("0", "2"):
            assert (faulted.tenants[tenant]["functional_digest"]
                    == trio.tenants[tenant]["functional_digest"])
            assert (faulted.tenants[tenant]["admitted"]
                    == trio.tenants[tenant]["admitted"])

    def test_delay_fault_moves_latency_not_results(self, trio):
        fault = TenantFault(tenant_id=1, kind="delay", fraction=1.0,
                            delay_ns=500.0, seed=5)
        delayed = run_scenario(_config(3, tenant_faults=(fault,)))
        # Accounting delay: same functional results for everyone...
        for tenant in ("0", "1", "2"):
            assert (delayed.tenants[tenant]["functional_digest"]
                    == trio.tenants[tenant]["functional_digest"])
        # ...but the faulted tenant's latency shifted by >= the delay.
        assert (delayed.tenants["1"]["latency_ns"]["p50"]
                >= trio.tenants["1"]["latency_ns"]["p50"] + 500.0)
        assert (delayed.tenants["0"]["latency_ns"]["p50"]
                == trio.tenants["0"]["latency_ns"]["p50"])
