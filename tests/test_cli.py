"""CLI: argument parsing and end-to-end command execution."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "doram"])
        assert args.scheme == "doram"
        assert args.benchmark == "libq"

    def test_exp_choices(self):
        args = build_parser().parse_args(["exp", "fig9"])
        assert args.experiment == "fig9"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "doram"])
        assert args.scheme == "doram"
        assert args.categories == ""
        assert args.snapshot_interval_ns == 500.0
        assert args.jsonl == "" and args.chrome == ""

    def test_exp_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp", "fig99"])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf", "doram"])
        assert args.scheme == "doram"
        assert args.top == 25
        assert args.sort == "cumulative"
        assert args.output == ""

    def test_perf_rejects_unknown_sort(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "doram", "--sort", "bogus"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_schemes_command(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "doram+K" in out
        assert "mu(24.0)" in out

    def test_run_command(self, capsys):
        assert main(["run", "doram", "--benchmark", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "NS mean execution time" in out
        assert "ch0.0" in out

    def test_exp_table1(self, capsys):
        assert main(["exp", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "0.292" in out  # k=3 normal share

    def test_exp_fig10_tiny(self, capsys):
        assert main(["exp", "fig10", "--benchmarks", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out
        assert "gmean" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "li", "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "category" in out

    def test_perf_command(self, capsys, tmp_path):
        dump = tmp_path / "run.pstats"
        assert main(["perf", "baseline", "--benchmark", "li",
                     "--trace-length", "300", "--top", "5",
                     "--output", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "cumulative" in out
        assert "engine.py" in out  # Engine.run must be in the top 5
        assert dump.exists()

    def test_trace_command_writes_exports(self, capsys, tmp_path):
        import json

        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert main(["trace", "doram", "--trace-length", "300",
                     "--jsonl", str(jsonl), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "digest: " in out
        assert "stat snapshots" in out
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert {"ts", "cat", "name", "track", "ph"} <= set(first)
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_trace_command_rejects_unknown_category(self, capsys):
        assert main(["trace", "doram", "--trace-length", "300",
                     "--categories", "dram,nope"]) == 2
        assert "unknown trace categories" in capsys.readouterr().err


class TestValidation:
    """Every subcommand fails fast (exit 2, one-line stderr) on bad args."""

    def test_run_rejects_unknown_scheme(self, capsys):
        assert main(["run", "no-such-scheme"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("doram: error:")
        assert "unknown scheme" in err
        assert err.count("\n") == 1

    def test_run_rejects_unknown_benchmark(self, capsys):
        assert main(["run", "doram", "--benchmark", "zz"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_rejects_bad_trace_length(self, capsys):
        assert main(["run", "doram", "--trace-length", "0"]) == 2
        assert "--trace-length" in capsys.readouterr().err

    def test_run_rejects_out_of_range_c_limit(self, capsys):
        """doram/C validation happens before any simulation starts."""
        assert main(["run", "doram/99"]) == 2
        assert "c_limit" in capsys.readouterr().err

    def test_exp_rejects_unknown_benchmark_code(self, capsys):
        assert main(["exp", "fig9", "--benchmarks", "li,zz"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_sweep_rejects_unknown_figures(self, capsys):
        assert main(["sweep", "--figures", "fig99"]) == 2
        assert "unknown figures" in capsys.readouterr().err

    def test_sweep_rejects_negative_timeout(self, capsys):
        assert main(["sweep", "--figures", "fig9", "--timeout", "-1"]) == 2
        assert "--timeout" in capsys.readouterr().err

    def test_report_rejects_unknown_benchmark(self, capsys):
        assert main(["report", "--benchmarks", "nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_faults_rejects_missing_plan_file(self, capsys, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert main(["faults", "--plan", missing]) == 2
        assert "cannot read fault plan" in capsys.readouterr().err

    def test_faults_rejects_malformed_plan(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"link": [{"kind": "melt"}]}')
        assert main(["faults", "--plan", str(bad)]) == 2
        assert "unknown link fault kind" in capsys.readouterr().err


class TestFaultsCommand:
    def _plan_file(self, tmp_path, doc):
        import json

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_dry_run_prints_resolved_schedule(self, capsys, tmp_path):
        plan = self._plan_file(tmp_path, {
            "seed": 5,
            "link": [{"kind": "drop", "link": "bob0.up", "tag": "raw",
                      "packets": [3]}],
        })
        assert main(["faults", "--plan", plan, "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "seed 5" in out
        assert "bob0.up" in out
        assert "recovery:" in out
        assert "simulated" not in out  # dry run must not simulate

    def test_full_run_reports_invariants_ok(self, capsys, tmp_path):
        plan = self._plan_file(tmp_path, {
            "link": [{"kind": "corrupt", "link": "bob0.down",
                      "tag": "raw", "packets": [3]}],
        })
        assert main(["faults", "--plan", plan]) == 0
        out = capsys.readouterr().out
        assert "[OK]" in out
        assert "link_corrupts=1" in out

    def test_run_with_armed_plan_prints_fault_summary(
        self, capsys, tmp_path
    ):
        plan = self._plan_file(tmp_path, {
            "link": [{"kind": "drop", "link": "bob0.up", "tag": "raw",
                      "packets": [3]}],
        })
        assert main(["run", "doram", "--trace-length", "300",
                     "--faults", plan]) == 0
        out = capsys.readouterr().out
        assert "link_drops=1" in out
        assert "sdlink0" in out

    def test_faults_seed_override(self, capsys, tmp_path):
        plan = self._plan_file(tmp_path, {"seed": 1})
        assert main(["faults", "--plan", plan, "--seed", "42",
                     "--dry-run"]) == 0
        assert "seed 42" in capsys.readouterr().out


class TestSweepFailureSurfacing:
    def test_failed_points_exit_nonzero_with_reasons(
        self, capsys, monkeypatch
    ):
        from repro.analysis import sweep as sweep_mod

        def _always(point, with_digest=False):
            raise RuntimeError("injected sweep failure")

        monkeypatch.setattr(sweep_mod, "_simulate_point", _always)
        code = main(["sweep", "--figures", "fig9", "--benchmarks", "li",
                     "--trace-length", "100", "--workers", "1",
                     "--store", "none"])
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED after retry" in captured.err
        assert "injected sweep failure" in captured.err
        assert "retried=" in captured.out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.tenants == 8
        assert args.arrival == "poisson"
        assert args.rate == 200_000.0
        assert args.horizon_us == 100.0
        assert args.queue_cap == 64
        assert args.leaf_level == 23
        assert args.slo_target_ns == 0.0
        assert args.store == "none"
        assert not args.digest

    def test_parser_rejects_unknown_sched(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--sched", "bogus"])

    def test_serve_smoke_report(self, capsys):
        code = main(["serve", "--tenants", "2", "--leaf-level", "12",
                     "--horizon-us", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out
        assert "p999" in out
        assert "report digest" in out

    def test_serve_digest_and_json(self, capsys, tmp_path, monkeypatch):
        # Seed the env vars via monkeypatch so its teardown undoes the
        # os.environ writes cmd_serve makes for --sched/--periodic.
        monkeypatch.setenv("DORAM_SCHED", "heap")
        monkeypatch.setenv("DORAM_PERIODIC", "lazy")
        report = tmp_path / "slo.json"
        code = main(["serve", "--tenants", "2", "--leaf-level", "12",
                     "--horizon-us", "10", "--sched", "wheel",
                     "--digest", "--json", str(report)])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace digest:" in out
        import json

        doc = json.loads(report.read_text())
        assert len(doc["tenants"]) == 2
        assert all("latency_ns" in row for row in doc["tenants"].values())

    def test_serve_rejects_unknown_arrival(self, capsys):
        code = main(["serve", "--arrival", "constant"])
        assert code == 2
        assert "unknown arrival kind" in capsys.readouterr().err

    def test_serve_rejects_bad_config(self, capsys):
        code = main(["serve", "--tenants", "0", "--leaf-level", "12"])
        assert code == 2
        assert "num_tenants" in capsys.readouterr().err

    def test_serve_sweep_grid(self, capsys):
        code = main(["serve", "--leaf-level", "12", "--horizon-us", "10",
                     "--sweep-tenants", "1,2", "--sweep-rates", "100000",
                     "--workers", "1", "--store", "none"])
        assert code == 0
        out = capsys.readouterr().out
        assert "tenants" in out and "p999_ns" in out
        assert "2 simulated" in out


class TestSweepQueueModes:
    """``doram sweep --queue/--join/--status`` (the distributed drain)."""

    def test_modes_are_mutually_exclusive(self, capsys):
        assert main(["sweep", "--queue", "a", "--status", "b"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_queue_requires_a_store(self, capsys, tmp_path):
        code = main(["sweep", "--figures", "fig9", "--store", "none",
                     "--queue", str(tmp_path / "q")])
        assert code == 2
        assert "needs a result store" in capsys.readouterr().err

    def test_status_on_missing_queue_fails_fast(self, capsys, tmp_path):
        assert main(["sweep", "--status", str(tmp_path / "nope")]) == 2
        assert capsys.readouterr().err.startswith("doram: error:")

    def test_queue_drain_then_status_then_late_join(
        self, capsys, tmp_path
    ):
        queue = str(tmp_path / "queue")
        store = str(tmp_path / "store")
        code = main(["sweep", "--figures", "fig10", "--benchmarks", "li",
                     "--trace-length", "120", "--workers", "2",
                     "--queue", queue, "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out  # drivers evaluated from store hits

        assert main(["sweep", "--status", queue]) == 0
        status = capsys.readouterr().out
        assert "4 done" in status and "0 pending" in status

        # A worker joining after the drain finds nothing left to do.
        assert main(["sweep", "--join", queue,
                     "--worker-id", "late"]) == 0
        joined = capsys.readouterr().out
        assert "worker late: 0 completed" in joined


class TestExploreCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.grid == "smoke"
        assert args.benchmark == "li"
        assert args.budget_frac == 0.2
        assert args.anchors == 3
        assert args.band_frac == 0.08
        assert args.max_rounds == 4
        assert args.seed == 1
        # --store defaults to the shared resumable store, like sweep.
        assert args.store is None
        assert args.queue == ""

    def test_rejects_unknown_grid(self, capsys):
        assert main(["explore", "--grid", "galaxy"]) == 2
        assert "unknown grid preset" in capsys.readouterr().err

    def test_rejects_bad_budget(self, capsys):
        assert main(["explore", "--budget-frac", "0"]) == 2
        assert "--budget-frac" in capsys.readouterr().err

    def test_rejects_unknown_benchmark(self, capsys):
        assert main(["explore", "--benchmark", "zz"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_smoke_explore_writes_reports_and_bench(
        self, capsys, tmp_path
    ):
        import json

        out_json = tmp_path / "surface.json"
        out_md = tmp_path / "surface.md"
        bench = tmp_path / "BENCH_explore.json"
        code = main(["explore", "--grid", "smoke",
                     "--trace-length", "150", "--workers", "1",
                     "--budget-frac", "0.5",
                     "--store", str(tmp_path / "store"),
                     "--out-json", str(out_json),
                     "--out-md", str(out_md),
                     "--bench-out", str(bench), "--label", "citest"])
        assert code == 0
        out = capsys.readouterr().out
        assert "explore: grid=16" in out
        assert "frontier" in out
        assert "model-vs-sim error" in out
        doc = json.loads(out_json.read_text())
        assert doc["simulated"] <= doc["budget"]
        assert "Pareto" in out_md.read_text()
        rows = json.loads(bench.read_text())
        assert rows[0]["workload"] == "explore"
        assert rows[0]["label"] == "citest"
        assert 0.0 < rows[0]["sim_fraction"] <= 0.5
