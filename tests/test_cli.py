"""CLI: argument parsing and end-to-end command execution."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "doram"])
        assert args.scheme == "doram"
        assert args.benchmark == "libq"

    def test_exp_choices(self):
        args = build_parser().parse_args(["exp", "fig9"])
        assert args.experiment == "fig9"

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "doram"])
        assert args.scheme == "doram"
        assert args.categories == ""
        assert args.snapshot_interval_ns == 500.0
        assert args.jsonl == "" and args.chrome == ""

    def test_exp_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp", "fig99"])

    def test_perf_defaults(self):
        args = build_parser().parse_args(["perf", "doram"])
        assert args.scheme == "doram"
        assert args.top == 25
        assert args.sort == "cumulative"
        assert args.output == ""

    def test_perf_rejects_unknown_sort(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf", "doram", "--sort", "bogus"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_schemes_command(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "doram+K" in out
        assert "mu(24.0)" in out

    def test_run_command(self, capsys):
        assert main(["run", "doram", "--benchmark", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "NS mean execution time" in out
        assert "ch0.0" in out

    def test_exp_table1(self, capsys):
        assert main(["exp", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "0.292" in out  # k=3 normal share

    def test_exp_fig10_tiny(self, capsys):
        assert main(["exp", "fig10", "--benchmarks", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out
        assert "gmean" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "li", "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "category" in out

    def test_perf_command(self, capsys, tmp_path):
        dump = tmp_path / "run.pstats"
        assert main(["perf", "baseline", "--benchmark", "li",
                     "--trace-length", "300", "--top", "5",
                     "--output", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "cumulative" in out
        assert "engine.py" in out  # Engine.run must be in the top 5
        assert dump.exists()

    def test_trace_command_writes_exports(self, capsys, tmp_path):
        import json

        jsonl = tmp_path / "t.jsonl"
        chrome = tmp_path / "t.json"
        assert main(["trace", "doram", "--trace-length", "300",
                     "--jsonl", str(jsonl), "--chrome", str(chrome)]) == 0
        out = capsys.readouterr().out
        assert "digest: " in out
        assert "stat snapshots" in out
        first = json.loads(jsonl.read_text().splitlines()[0])
        assert {"ts", "cat", "name", "track", "ph"} <= set(first)
        doc = json.loads(chrome.read_text())
        assert doc["traceEvents"]

    def test_trace_command_rejects_unknown_category(self, capsys):
        assert main(["trace", "doram", "--trace-length", "300",
                     "--categories", "dram,nope"]) == 2
        assert "unknown trace categories" in capsys.readouterr().err
