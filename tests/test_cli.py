"""CLI: argument parsing and end-to-end command execution."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "doram"])
        assert args.scheme == "doram"
        assert args.benchmark == "libq"

    def test_exp_choices(self):
        args = build_parser().parse_args(["exp", "fig9"])
        assert args.experiment == "fig9"

    def test_exp_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["exp", "fig99"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_schemes_command(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "doram+K" in out
        assert "mu(24.0)" in out

    def test_run_command(self, capsys):
        assert main(["run", "doram", "--benchmark", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "NS mean execution time" in out
        assert "ch0.0" in out

    def test_exp_table1(self, capsys):
        assert main(["exp", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "0.292" in out  # k=3 normal share

    def test_exp_fig10_tiny(self, capsys):
        assert main(["exp", "fig10", "--benchmarks", "li",
                     "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 10" in out
        assert "gmean" in out

    def test_profile_command(self, capsys):
        assert main(["profile", "li", "--trace-length", "400"]) == 0
        out = capsys.readouterr().out
        assert "ratio" in out
        assert "category" in out
