"""FaultPlan DSL: validation, JSON round-trips, deterministic streams."""

import json

import pytest

from repro.faults import (
    DelegatorFault,
    DramFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    RecoveryParams,
)
from repro.faults.plan import site_rng
from repro.sim.engine import ns


class TestValidation:
    def test_unknown_link_kind(self):
        with pytest.raises(FaultPlanError):
            LinkFault(kind="melt")

    def test_rate_must_be_probability(self):
        with pytest.raises(FaultPlanError):
            LinkFault(rate=1.0)
        with pytest.raises(FaultPlanError):
            DramFault(rate=-0.1)

    def test_delay_needs_positive_delay(self):
        with pytest.raises(FaultPlanError):
            LinkFault(kind="delay", delay_ns=0.0)

    def test_window_must_be_ordered(self):
        with pytest.raises(FaultPlanError):
            LinkFault(start_ns=100.0, stop_ns=100.0)
        with pytest.raises(FaultPlanError):
            DramFault(start_ns=5.0, stop_ns=1.0)

    def test_stall_needs_duration(self):
        with pytest.raises(FaultPlanError):
            DelegatorFault(kind="stall", duration_ns=0.0)

    def test_at_most_one_crash(self):
        crash = DelegatorFault(kind="crash", start_ns=10.0)
        with pytest.raises(FaultPlanError):
            FaultPlan(delegator=(crash, crash))

    def test_recovery_bounds(self):
        with pytest.raises(FaultPlanError):
            RecoveryParams(deadline_ns=0.0)
        with pytest.raises(FaultPlanError):
            RecoveryParams(watchdog_misses=0)
        with pytest.raises(FaultPlanError):
            RecoveryParams(max_attempts=1)

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json_dict({"seed": 1, "links": []})

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_json_dict({"link": [{"kindd": "drop"}]})

    def test_negative_start_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFault(start_ns=-1.0)
        with pytest.raises(FaultPlanError):
            DramFault(start_ns=-0.5)
        with pytest.raises(FaultPlanError):
            DelegatorFault(kind="stall", start_ns=-2.0, duration_ns=5.0)

    def test_negative_indices_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFault(packets=(3, -1))
        with pytest.raises(FaultPlanError):
            DramFault(reads=(-7,))

    def test_unknown_literal_site_names_rejected(self):
        with pytest.raises(FaultPlanError):
            LinkFault(link="bob0.dwn")
        with pytest.raises(FaultPlanError):
            LinkFault(link="sdlink0")
        with pytest.raises(FaultPlanError):
            DramFault(channel="chan0")

    def test_wildcard_site_patterns_still_allowed(self):
        LinkFault(link="bob*.down")
        LinkFault(link="bob0.up")
        DramFault(channel="ch0*")
        DramFault(channel="ch2.1")

    def test_overlapping_stall_windows_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(delegator=(
                DelegatorFault(kind="stall", start_ns=10.0,
                               duration_ns=10.0),
                DelegatorFault(kind="stall", start_ns=15.0,
                               duration_ns=10.0),
            ))

    def test_stall_past_crash_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(delegator=(
                DelegatorFault(kind="crash", start_ns=20.0),
                DelegatorFault(kind="stall", start_ns=10.0,
                               duration_ns=50.0),
            ))


class TestRoundTrip:
    def _plan(self):
        return FaultPlan(
            seed=7,
            link=(
                LinkFault(kind="corrupt", link="bob0.down", tag="raw",
                          packets=(2, 5)),
                LinkFault(kind="delay", link="bob*.up", rate=0.01,
                          delay_ns=40.0, start_ns=100.0, stop_ns=900.0),
            ),
            dram=(DramFault(channel="ch0*", rate=0.02),),
            delegator=(DelegatorFault(kind="stall", start_ns=50.0,
                                      duration_ns=25.0),),
            recovery=RecoveryParams(deadline_ns=1500.0, watchdog_misses=2),
        )

    def test_json_dict_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_json_dict(plan.to_json_dict()) == plan

    @pytest.mark.parametrize("plan", [
        FaultPlan(link=(LinkFault(kind="corrupt", link="bob1.down",
                                  rate=0.1, tag="mac"),)),
        FaultPlan(link=(LinkFault(kind="drop", link="bob*.up",
                                  packets=(0, 9)),)),
        FaultPlan(link=(LinkFault(kind="delay", delay_ns=12.5,
                                  start_ns=10.0, stop_ns=20.0),)),
        FaultPlan(dram=(DramFault(channel="ch1.0", rate=0.5,
                                  reads=(4,)),)),
        FaultPlan(delegator=(DelegatorFault(kind="stall", start_ns=5.0,
                                            duration_ns=2.0),)),
        FaultPlan(delegator=(DelegatorFault(kind="crash",
                                            start_ns=7.0),)),
    ], ids=["corrupt", "drop", "delay", "dram", "stall", "crash"])
    def test_every_kind_round_trips(self, plan):
        doc = json.loads(json.dumps(plan.to_json_dict()))
        assert FaultPlan.from_json_dict(doc) == plan

    def test_json_bytes_round_trip(self, tmp_path):
        plan = self._plan()
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_json_dict()))
        assert FaultPlan.from_file(str(path)) == plan

    def test_from_file_errors_are_plan_errors(self, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.from_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.from_file(str(bad))

    def test_reseeded_keeps_rules(self):
        plan = self._plan()
        other = plan.reseeded(99)
        assert other.seed == 99
        assert other.link == plan.link
        assert other.dram == plan.dram
        assert other.delegator == plan.delegator
        assert other.recovery == plan.recovery


class TestSchedule:
    def test_empty_plan_is_empty(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(dram=(DramFault(rate=0.1),)).is_empty

    def test_crash_tick(self):
        plan = FaultPlan(
            delegator=(DelegatorFault(kind="crash", start_ns=3.0),)
        )
        assert plan.crash_tick() == ns(3.0)
        assert FaultPlan().crash_tick() is None

    def test_stall_windows_sorted(self):
        plan = FaultPlan(delegator=(
            DelegatorFault(kind="stall", start_ns=100.0, duration_ns=5.0),
            DelegatorFault(kind="stall", start_ns=10.0, duration_ns=10.0),
        ))
        assert plan.stall_windows() == [
            (ns(10.0), ns(20.0)), (ns(100.0), ns(105.0)),
        ]

    def test_describe_mentions_every_rule(self):
        plan = FaultPlan(
            link=(LinkFault(kind="drop", link="bob0.up", packets=(3,)),),
            dram=(DramFault(channel="ch1*", rate=0.5e-1),),
            delegator=(DelegatorFault(kind="crash", start_ns=2.0),),
        )
        text = "\n".join(plan.describe())
        assert "bob0.up" in text
        assert "ch1*" in text
        assert "crash at 2" in text
        assert "recovery:" in text


class TestSiteRng:
    def test_streams_are_deterministic(self):
        a = [site_rng(1, "link", "bob0.down").random() for _ in range(3)]
        b = [site_rng(1, "link", "bob0.down").random() for _ in range(3)]
        assert a == b

    def test_streams_are_independent_per_site(self):
        down = site_rng(1, "link", "bob0.down").random()
        up = site_rng(1, "link", "bob0.up").random()
        other_seed = site_rng(2, "link", "bob0.down").random()
        assert down != up
        assert down != other_seed
