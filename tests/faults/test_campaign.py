"""Chaos-campaign generator: determinism, validation, sweep protocol.

The campaign contract (ISSUE 10): a ``CampaignSpec`` is a *pure
function* from (spec, seed) to a FaultPlan stream -- re-materializing
any point yields byte-identical plans, every point owns a distinct
derived seed, and a campaign cell with no fault rules produces exactly
the bare scenario payload.  Validation is front-loaded: a spec that
could materialize an invalid plan anywhere in its grid is rejected at
load time with a :class:`CampaignError` (the CLI's exit-2 boundary).
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.faults.campaign import (
    CampaignError,
    CampaignSpec,
    DelegatorSpec,
    DramSpec,
    FaultPoint,
    Intensity,
    LinkSpec,
    bench_records,
    chaos_rows,
    render_markdown,
)
from repro.scenarios.arrivals import derive_seed

#: Small-but-real scenario: every spec below resolves through
#: ``apply_overrides`` against a default ScenarioConfig at load time.
SCENARIO = (("horizon_ns", 8000.0), ("num_tenants", 2),
            ("oram.leaf_level", 12), ("queue_cap", 256))


def _spec(**kw):
    kw.setdefault("name", "t")
    kw.setdefault("points", 3)
    kw.setdefault("scenario", SCENARIO)
    kw.setdefault("trace_length", 60)
    kw.setdefault("functional_ops", 30)
    return CampaignSpec(**kw)


def _plan_stream(spec):
    """The campaign's full plan stream as canonical bytes."""
    return json.dumps(
        [spec.plan_for(i).to_json_dict() for i in range(spec.points)],
        sort_keys=True,
    ).encode()


_INTENSITY = st.one_of(
    st.floats(0.0, 0.2).map(Intensity),
    st.tuples(
        st.floats(0.0, 0.1), st.floats(0.1, 0.2),
        st.sampled_from(("ramp", "uniform")),
    ).map(lambda t: Intensity(lo=t[0], hi=t[1], mode=t[2])),
)

_SPECS = st.builds(
    lambda points, seed, link_rate, dram_rate: _spec(
        points=points, seed=seed,
        link=(LinkSpec(kind="corrupt", rate=link_rate),),
        dram=(DramSpec(rate=dram_rate),),
    ),
    points=st.integers(1, 5),
    seed=st.integers(0, 2**32),
    link_rate=_INTENSITY,
    dram_rate=_INTENSITY,
)


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(spec=_SPECS)
    def test_same_spec_same_seed_byte_identical_stream(self, spec):
        clone = CampaignSpec.from_json_dict(
            json.loads(json.dumps(spec.to_json_dict()))
        )
        assert clone == spec
        assert _plan_stream(clone) == _plan_stream(spec)

    @settings(max_examples=25, deadline=None)
    @given(spec=_SPECS)
    def test_points_own_disjoint_derived_seeds(self, spec):
        seeds = [spec.plan_for(i).seed for i in range(spec.points)]
        assert len(set(seeds)) == spec.points
        assert seeds == [derive_seed(spec.seed, i)
                         for i in range(spec.points)]

    def test_adding_points_never_moves_earlier_plans(self):
        base = _spec(points=2, dram=(DramSpec(rate=Intensity(0.01)),))
        grown = dataclasses.replace(base, points=5)
        for i in range(base.points):
            assert grown.plan_for(i) == base.plan_for(i)

    def test_ramp_hits_both_endpoints(self):
        spec = _spec(
            points=3,
            link=(LinkSpec(rate=Intensity(0.0, 0.08, "ramp")),),
        )
        rates = [spec.plan_for(i).link[0].rate for i in range(3)]
        assert rates == [0.0, 0.04, 0.08]

    def test_uniform_draw_is_point_local(self):
        spec = _spec(
            points=4,
            dram=(DramSpec(rate=Intensity(0.001, 0.02, "uniform")),),
        )
        # The draw for point i depends only on (seed, site, i): the
        # same index re-queried from a fresh spec object matches.
        again = _spec(
            points=4,
            dram=(DramSpec(rate=Intensity(0.001, 0.02, "uniform")),),
        )
        assert [spec.plan_for(i).dram[0].rate for i in range(4)] \
            == [again.plan_for(i).dram[0].rate for i in range(4)]


class TestValidation:
    def test_unknown_spec_keys_rejected(self):
        with pytest.raises(CampaignError, match="unknown campaign"):
            CampaignSpec.from_json_dict(
                {"name": "x", "points": 1, "bogus": 1}
            )

    def test_points_must_be_positive(self):
        with pytest.raises(CampaignError, match="points >= 1"):
            _spec(points=0)

    def test_intensity_lo_above_hi_rejected(self):
        with pytest.raises(CampaignError, match="lo"):
            Intensity(lo=0.5, hi=0.1)

    def test_intensity_unknown_mode_rejected(self):
        with pytest.raises(CampaignError, match="mode"):
            Intensity(lo=0.1, mode="gaussian")

    def test_bad_fault_rate_fails_at_load_not_drain(self):
        # rate hi=1.5 is an invalid LinkFault: the LinkSpec probe at
        # construction time must catch it, before any grid exists.
        from repro.faults.plan import FaultPlanError

        with pytest.raises(FaultPlanError):
            LinkSpec(rate=Intensity(0.0, 1.5, "ramp"))

    def test_bad_scenario_override_rejected(self):
        with pytest.raises(CampaignError, match="overrides"):
            _spec(scenario=(("no_such_field", 1),))

    def test_two_crash_specs_rejected(self):
        crash = DelegatorSpec(kind="crash",
                              start_ns=Intensity(5000.0))
        with pytest.raises(CampaignError, match="crash"):
            _spec(delegator=(crash, crash))

    def test_overlapping_stalls_rejected_per_point(self):
        # Both stalls materialize to the same window at every point:
        # plan validation fires inside spec construction.
        stall = DelegatorSpec(kind="stall",
                              start_ns=Intensity(1000.0),
                              duration_ns=Intensity(500.0))
        with pytest.raises(CampaignError, match="point 0"):
            _spec(delegator=(stall, stall))


class TestSweepProtocol:
    def test_manifest_round_trip(self):
        spec = _spec(dram=(DramSpec(rate=Intensity(0.005)),),
                     workloads=((("arrival.rate_rps", 150_000.0),), ()))
        for point in spec.grid():
            doc = json.loads(json.dumps(point.to_manifest()))
            clone = FaultPoint.from_manifest(doc)
            assert clone == point
            assert clone.key() == point.key()
            assert clone.key(True) == point.key(True)

    def test_key_distinguishes_every_axis(self):
        spec = _spec(points=2, schemes=("doram", "baseline"),
                     workloads=((("arrival.rate_rps", 150_000.0),), ()),
                     dram=(DramSpec(rate=Intensity(0.0, 0.01, "ramp")),))
        keys = {p.key() for p in spec.grid()}
        assert len(keys) == 2 * 2 * 2
        point = spec.grid()[0]
        assert point.key(True) != point.key(False)

    def test_grid_is_index_major_and_complete(self):
        spec = _spec(points=2, schemes=("doram",),
                     workloads=((("arrival.rate_rps", 150_000.0),), ()))
        cells = [(p.index, p.scheme, p.workload_id)
                 for p in spec.grid()]
        assert cells == [(0, "doram", 0), (0, "doram", 1),
                         (1, "doram", 0), (1, "doram", 1)]


class TestArmedEmptyCell:
    def test_empty_campaign_cell_matches_bare_scenario(self):
        from repro.scenarios.service import run_scenario

        spec = _spec(points=1)
        payload = spec.grid()[0].execute()
        bare = run_scenario(spec.scenario_config(()))
        assert payload["invariants"]["ok"]
        assert payload["fault_summary"] == {}
        assert payload["report_digest"] == bare.report_digest()

    def test_execute_is_deterministic(self):
        spec = _spec(points=1,
                     dram=(DramSpec(rate=Intensity(0.005)),))
        point = spec.grid()[0]
        first = json.dumps(point.execute(), sort_keys=True)
        second = json.dumps(point.execute(), sort_keys=True)
        assert first == second


class TestReporting:
    def _payloads(self):
        spec = _spec(points=1)
        point = spec.grid()[0]
        return {point: point.execute()}

    def test_rows_and_markdown_and_bench(self):
        rows = chaos_rows(self._payloads())
        assert len(rows) == 1
        assert rows[0]["invariants_ok"] is True
        table = render_markdown(rows)
        assert "| point | scheme |" in table
        assert "| OK |" in table
        records = bench_records(rows, "test", 1.0)
        assert records[0]["workload"] == "chaos_point"
        assert records[0]["config"] == "t#0:doram:w0"
        # The -1.0 sentinel only appears when no recovery was measured.
        assert records[0]["recovery_p99_ns"] != 0.0


class TestCli:
    SPEC = "examples/campaigns/ci-smoke.json"

    def test_dry_run_lists_every_point(self, capsys):
        assert main(["chaos", "--campaign", self.SPEC,
                     "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "campaign 'ci-smoke'" in out
        assert out.count("point ") == 3

    def test_missing_spec_is_exit_2(self, capsys):
        assert main(["chaos", "--campaign", "/no/such.json"]) == 2
        assert "doram: error" in capsys.readouterr().err

    def test_malformed_spec_is_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "points": 1,
                                   "link": [{"kind": "meteor"}]}))
        assert main(["chaos", "--campaign", str(bad)]) == 2
        assert "doram: error" in capsys.readouterr().err

    def test_queue_flags_mutually_exclusive(self, capsys):
        assert main(["chaos", "--campaign", self.SPEC,
                     "--queue", "a", "--join", "b"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_report_without_store_is_exit_2(self, capsys):
        assert main(["chaos", "report", "--campaign", self.SPEC]) == 2
        assert "store" in capsys.readouterr().err
