"""Property tests: *arbitrary* bounded fault plans keep every guarantee.

The scenario tests pin known-good plans; this suite lets hypothesis
draw seeded plans from the whole bounded DSL -- random mixes of link
corrupt/drop/delay rules, DRAM flip rates, stall windows -- and asserts
the end-to-end invariant harness (:mod:`repro.faults.invariants`) holds
for every one of them: the run terminates, the DRAM referee stays green,
the secure link's send schedule remains wire-deterministic, and the
functional ORAM returns the last written value for every read.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.faults import (  # noqa: E402
    DelegatorFault,
    DramFault,
    FaultPlan,
    LinkFault,
    RecoveryParams,
)
from repro.faults.invariants import check_fault_invariants  # noqa: E402

# Bounded rule strategies.  Rates are kept low enough that a 300-access
# run still completes within the retry bounds (that is the *bounded*
# part of the contract); windows live inside the ~12 us the run spans.
_link_rule = st.builds(
    LinkFault,
    kind=st.sampled_from(("corrupt", "drop", "delay")),
    link=st.sampled_from(("bob0.down", "bob0.up", "bob*.down", "bob*.up")),
    tag=st.just("raw"),
    rate=st.floats(min_value=0.0, max_value=0.05),
    packets=st.lists(
        st.integers(min_value=0, max_value=40), max_size=2
    ).map(tuple),
    delay_ns=st.floats(min_value=5.0, max_value=60.0),
)

_dram_rule = st.builds(
    DramFault,
    channel=st.sampled_from(("ch0*", "ch*", "ch1*")),
    rate=st.floats(min_value=0.0, max_value=0.02),
    reads=st.lists(
        st.integers(min_value=0, max_value=200), max_size=2
    ).map(tuple),
)

_stall_rule = st.builds(
    DelegatorFault,
    kind=st.just("stall"),
    start_ns=st.floats(min_value=0.0, max_value=8000.0),
    duration_ns=st.floats(min_value=10.0, max_value=1500.0),
)

_plan = st.builds(
    FaultPlan,
    seed=st.integers(min_value=0, max_value=2**31),
    link=st.lists(_link_rule, max_size=2).map(tuple),
    dram=st.lists(_dram_rule, max_size=1).map(tuple),
    delegator=st.lists(_stall_rule, max_size=1).map(tuple),
    recovery=st.just(RecoveryParams()),
)


class TestArbitraryPlans:
    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(plan=_plan)
    def test_bounded_plans_keep_every_invariant(self, plan):
        report = check_fault_invariants(plan, functional_ops=80)
        assert report.ok, report.describe()
        assert report.end_time > 0

    @settings(
        max_examples=4, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_empty_plan_holds_under_any_seed(self, seed):
        report = check_fault_invariants(
            FaultPlan(seed=seed), functional_ops=60
        )
        assert report.ok, report.describe()
        summary = report.fault_summary
        assert all(v == 0 for v in summary["faults"].values())


class TestHarnessReporting:
    def test_crash_plan_passes_with_tuned_watchdog(self):
        plan = FaultPlan(
            delegator=(DelegatorFault(kind="crash", start_ns=3000.0),),
            recovery=RecoveryParams(deadline_ns=1500.0, watchdog_misses=2),
        )
        report = check_fault_invariants(plan)
        assert report.ok, report.describe()
        assert report.fault_summary["faults"]["failovers"] == 1
        assert "[OK]" in report.describe()

    def test_report_surfaces_simulation_crashes(self):
        report = check_fault_invariants(
            FaultPlan(), scheme="no-such-scheme"
        )
        assert not report.ok
        assert "simulation did not complete" in report.violations[0]
        assert "FAILED" in report.describe()
