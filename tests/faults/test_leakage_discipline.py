"""check_recovery_discipline: the retry schedule stays wire-deterministic.

The recovery protocol's security argument (DESIGN.md section 10): every
CPU->SD send time is a function of the *observable wire* -- the initial
emission, an up-packet arrival plus the fixed pacer slot, or a prior
send plus the fixed deadline.  These tests run the check against real
armed traces (clean, faulted, failed-over) and then perturb a trace to
prove the check rejects schedules that are not wire-deterministic.
"""

from repro.faults import (
    DelegatorFault,
    FaultController,
    FaultPlan,
    LinkFault,
    RecoveryParams,
)
from repro.obs.golden import run_traced
from repro.obs.leakage import check_recovery_discipline, secure_link_packets


def _armed_trace(plan):
    result, tracer = run_traced("doram", faults=FaultController(plan))
    return result, tracer.events


class TestCleanRuns:
    def test_empty_plan_trace_passes(self):
        _result, events = _armed_trace(FaultPlan())
        assert check_recovery_discipline(events) == []

    def test_retransmissions_still_pass(self):
        """A dropped response forces a deadline retransmission; that is
        exactly the schedule rule, so the check must stay green."""
        plan = FaultPlan(link=(
            LinkFault(kind="drop", link="bob0.up", tag="raw",
                      packets=(3,)),
        ))
        result, events = _armed_trace(plan)
        assert result.fault_summary["sdlink0"]["retransmissions"] >= 1
        assert check_recovery_discipline(
            events, deadline_ns=plan.recovery.deadline_ns
        ) == []

    def test_silence_after_failover_passes(self):
        plan = FaultPlan(
            delegator=(DelegatorFault(kind="crash", start_ns=3000.0),),
            recovery=RecoveryParams(deadline_ns=1500.0, watchdog_misses=2),
        )
        result, events = _armed_trace(plan)
        assert result.fault_summary["faults"]["failovers"] == 1
        assert check_recovery_discipline(
            events, deadline_ns=plan.recovery.deadline_ns
        ) == []


class TestTeeth:
    def test_perturbed_send_time_is_flagged(self):
        """Nudge one request's send time off its slot: no longer a
        function of the wire, so the check must flag it."""
        _result, events = _armed_trace(FaultPlan())
        down, _up = secure_link_packets(events)
        victim = down[2]
        victim.args["sent"] += 7
        violations = check_recovery_discipline(events)
        assert violations
        assert "request 2" in violations[0]

    def test_wrong_packet_size_is_flagged(self):
        _result, events = _armed_trace(FaultPlan())
        down, _up = secure_link_packets(events)
        down[0].args["bytes"] = 73
        violations = check_recovery_discipline(events)
        assert any("73 B" in v for v in violations)

    def test_missing_stream_is_flagged(self):
        assert check_recovery_discipline([]) != []
