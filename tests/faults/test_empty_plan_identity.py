"""Empty-plan identity: arming recovery with no fault rules is free.

The fault layer's core zero-overhead promise: a run with an *empty*
:class:`FaultPlan` armed -- recovery sessions, sequence-numbered frames,
deadline timers and all -- is **bit-identical** to a run with no fault
controller at all.  Same golden trace digest, same serialized
:class:`SimResult` payload, same logical event census, and that holds on
every scheduler backend (heap/wheel) x periodic mode (eager/lazy)
combination the engine supports.
"""

import os

import pytest

from repro.faults import FaultController, FaultPlan
from repro.obs.export import trace_digest
from repro.obs.golden import GOLDEN_SCHEMES, run_traced

BACKENDS = [
    ("heap", "lazy"), ("heap", "eager"),
    ("wheel", "lazy"), ("wheel", "eager"),
]


def _set_backend(monkeypatch, sched, periodic):
    monkeypatch.setenv("DORAM_SCHED", sched)
    monkeypatch.setenv("DORAM_PERIODIC", periodic)


class TestEmptyPlanIdentity:
    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    def test_digest_and_payload_identical(self, scheme):
        bare_result, bare_tracer = run_traced(scheme)
        armed_result, armed_tracer = run_traced(
            scheme, faults=FaultController(FaultPlan())
        )
        assert trace_digest(armed_tracer.events) == \
            trace_digest(bare_tracer.events)
        assert armed_result.to_json_dict() == bare_result.to_json_dict()
        assert armed_result.events == bare_result.events
        if os.environ.get("DORAM_LINK") != "kernel":
            # Under the link kernel, arming a plan (even an empty one)
            # deliberately forces the per-packet legacy pipeline --
            # recovery frames and NAKs are pinned against that schedule
            # -- so the *raw* dispatch count rises while every logical
            # observable above stays identical.  The fallback itself is
            # pinned by tests/core/test_link_kernel_oracle.py.
            assert armed_result.raw_events == bare_result.raw_events

    @pytest.mark.parametrize("sched,periodic", BACKENDS)
    def test_identity_holds_on_every_engine_backend(
        self, monkeypatch, sched, periodic
    ):
        _set_backend(monkeypatch, sched, periodic)
        bare_result, bare_tracer = run_traced("doram")
        armed_result, armed_tracer = run_traced(
            "doram", faults=FaultController(FaultPlan())
        )
        assert trace_digest(armed_tracer.events) == \
            trace_digest(bare_tracer.events)
        assert armed_result.to_json_dict() == bare_result.to_json_dict()

    def test_empty_plan_reports_a_summary_anyway(self):
        """Arming is observable through fault_summary (all zeros), just
        never through timing."""
        _result, tracer = run_traced(
            "doram", faults=FaultController(FaultPlan())
        )
        result = _result
        assert result.fault_summary is not None
        assert all(
            value == 0
            for value in result.fault_summary["faults"].values()
        )

    def test_fault_summary_stays_out_of_the_payload(self):
        """fault_summary is execution metadata, not simulated state: the
        serialized payload (and so the sweep store) must not change when
        a plan is armed."""
        result, _tracer = run_traced(
            "doram", faults=FaultController(FaultPlan())
        )
        assert "fault_summary" not in result.to_json_dict()
