"""Functional durability: MAC-detected transient flips never corrupt data."""

import pytest

from repro.crypto.codec import CodecError
from repro.faults.resilient import (
    DurabilityError,
    ResilientPathOram,
    durability_check,
)
from repro.oram.config import OramConfig

CONFIG = OramConfig(leaf_level=5)


class TestResilientPathOram:
    def test_rejects_bad_flip_rate(self):
        with pytest.raises(ValueError):
            ResilientPathOram(CONFIG, flip_rate=1.0)

    def test_clean_run_injects_nothing(self):
        oram = ResilientPathOram(CONFIG, seed=3, flip_rate=0.0)
        stats = durability_check(oram, num_ops=100, seed=3)
        assert stats["flips_injected"] == 0
        assert stats["flips_detected"] == 0
        assert stats["rereads"] == 0
        assert stats["reads"] + stats["writes"] == 100

    def test_every_flip_is_detected_and_reread(self):
        oram = ResilientPathOram(CONFIG, seed=3, flip_rate=0.05)
        stats = durability_check(oram, num_ops=150, seed=3)
        assert stats["flips_injected"] > 0
        assert stats["flips_detected"] == stats["flips_injected"]
        assert stats["rereads"] == stats["flips_injected"]
        assert stats["stash_peak"] <= 500

    def test_fault_schedule_is_deterministic(self):
        first = durability_check(
            ResilientPathOram(CONFIG, seed=9, flip_rate=0.05),
            num_ops=120, seed=9,
        )
        second = durability_check(
            ResilientPathOram(CONFIG, seed=9, flip_rate=0.05),
            num_ops=120, seed=9,
        )
        assert first == second

    def test_retry_bound_is_enforced(self):
        """With no retries allowed the first flip must surface as a
        CodecError instead of looping forever."""
        oram = ResilientPathOram(CONFIG, seed=3, flip_rate=0.6,
                                 retry_limit=0)
        with pytest.raises(CodecError):
            durability_check(oram, num_ops=200, seed=3)

    def test_durability_oracle_has_teeth(self):
        """An ORAM that silently loses writes must trip the shadow-map
        oracle -- otherwise the invariant harness proves nothing."""

        class _LyingOram(ResilientPathOram):
            def read(self, block_id):
                data = super().read(block_id)
                return bytes(len(data))

        with pytest.raises(DurabilityError):
            durability_check(
                _LyingOram(CONFIG, seed=3, flip_rate=0.0),
                num_ops=200, seed=3,
            )
