"""End-to-end recovery scenarios: every fault class injects and heals.

Each test arms one deterministic fault plan on a short golden-size run
and asserts (a) the fault actually fired, (b) the recovery protocol's
counters show the advertised mechanism recovering it, and (c) the run
still drains to completion.  The full invariant harness over these same
plans lives in ``test_invariants.py``; these tests pin the *mechanism*,
not just the outcome.
"""

import pytest

from repro.core.schemes import run_scheme
from repro.faults import (
    DelegatorFault,
    DramFault,
    FaultController,
    FaultPlan,
    LinkFault,
    RecoveryParams,
)

LENGTH = 300


def _run(plan, scheme="doram"):
    controller = FaultController(plan)
    result = run_scheme(scheme, "libq", LENGTH, faults=controller)
    assert result.fault_summary is not None
    return result, result.fault_summary


class TestLinkRecovery:
    def test_corrupted_request_is_nakked_and_retransmitted(self):
        """Garbling a CPU->SD frame trips the SD's MAC check; the SD
        answers with a NAK and the CPU retransmits on a pacer slot."""
        plan = FaultPlan(link=(
            LinkFault(kind="corrupt", link="bob0.down", tag="raw",
                      packets=(3,)),
        ))
        _result, summary = _run(plan)
        assert summary["faults"]["link_corrupts"] == 1
        assert summary["faults"]["sd_mac_failures"] == 1
        link = summary["sdlink0"]
        assert link["naks"] == 1
        assert link["retransmissions"] >= 1
        assert link["recovered_requests"] >= 1
        assert link.get("failovers", 0) == 0

    def test_corrupted_response_fails_mac_at_the_cpu(self):
        plan = FaultPlan(link=(
            LinkFault(kind="corrupt", link="bob0.up", tag="raw",
                      packets=(3,)),
        ))
        _result, summary = _run(plan)
        assert summary["faults"]["link_corrupts"] == 1
        link = summary["sdlink0"]
        assert link["mac_failures"] == 1
        assert link["retransmissions"] >= 1
        assert link["recovered_requests"] >= 1

    def test_dropped_response_times_out_and_retransmits(self):
        plan = FaultPlan(link=(
            LinkFault(kind="drop", link="bob0.up", tag="raw",
                      packets=(3,)),
        ))
        _result, summary = _run(plan)
        assert summary["faults"]["link_drops"] == 1
        link = summary["sdlink0"]
        assert link["timeouts"] >= 1
        assert link["retransmissions"] >= 1
        assert link["recovered_requests"] >= 1
        assert link.get("failovers", 0) == 0

    def test_duplicate_request_is_answered_from_the_response_cache(self):
        """Dropping the *response* makes the retransmitted request a
        duplicate of a completed sequence number; the SD must replay the
        cached RESP, not re-execute the ORAM access."""
        plan = FaultPlan(link=(
            LinkFault(kind="drop", link="bob0.up", tag="raw",
                      packets=(3,)),
        ))
        _result, summary = _run(plan)
        assert summary["faults"]["sd_duplicate_requests"] >= 1

    def test_link_delay_shifts_packets_without_protocol_action(self):
        plan = FaultPlan(link=(
            LinkFault(kind="delay", link="bob0.down", tag="raw",
                      packets=(3,), delay_ns=25.0),
        ))
        _result, summary = _run(plan)
        assert summary["faults"]["link_delays"] == 1
        link = summary["sdlink0"]
        assert link.get("mac_failures", 0) == 0
        assert link.get("failovers", 0) == 0


class TestDramRecovery:
    def test_flips_on_secure_reads_are_reread(self):
        """Every MAC-protected flip must be matched by a guarded
        re-read; unprotected (NS-app) flips are counted and ignored."""
        plan = FaultPlan(dram=(DramFault(channel="ch*", rate=0.01),))
        _result, summary = _run(plan)
        faults = summary["faults"]
        protected = faults.get("dram_flips", 0)
        unprotected = faults.get("dram_flips_unprotected", 0)
        assert protected + unprotected > 0
        assert faults.get("block_rereads", 0) == protected


class TestDelegatorRecovery:
    def test_stall_buffers_and_drains_without_failover(self):
        plan = FaultPlan(delegator=(
            DelegatorFault(kind="stall", start_ns=2000.0,
                           duration_ns=1000.0),
        ))
        result, summary = _run(plan)
        assert summary["faults"]["sd_stall_holds"] >= 1
        assert summary["faults"].get("failovers", 0) == 0
        # Buffering alone absorbs a stall shorter than the deadline:
        # frames drain in order at the window's end, no retransmission.
        assert summary["sdlink0"].get("failovers", 0) == 0
        assert result.end_time > 0

    def test_crash_triggers_watchdog_failover_to_host_engine(self):
        plan = FaultPlan(
            delegator=(DelegatorFault(kind="crash", start_ns=3000.0),),
            recovery=RecoveryParams(deadline_ns=1500.0, watchdog_misses=2),
        )
        result, summary = _run(plan)
        assert summary["faults"]["failovers"] == 1
        link = summary["sdlink0"]
        assert link["timeouts"] >= 2
        assert link["failovers"] == 1
        # The host-side fallback engine was built and did real work.
        fb = result.component_stats.get("oram0.fb")
        assert fb is not None
        assert fb.get("real_accesses", 0) + fb.get("dummy_accesses", 0) > 0

    def test_no_failover_without_a_fault(self):
        result, summary = _run(FaultPlan())
        assert summary["faults"].get("failovers", 0) == 0
        assert "oram0.fb" not in result.component_stats


class TestOnchipGuardedReads:
    def test_baseline_scheme_recovers_dram_flips_too(self):
        """The host-side (onchip) engine uses the same GuardedRead path
        on its direct channel sink."""
        plan = FaultPlan(dram=(DramFault(channel="ch*", rate=0.01),))
        _result, summary = _run(plan, scheme="baseline")
        faults = summary["faults"]
        assert faults.get("dram_flips", 0) + \
            faults.get("dram_flips_unprotected", 0) > 0
        assert faults.get("block_rereads", 0) == faults.get("dram_flips", 0)


class TestBoundedRecovery:
    def test_controller_is_single_run(self):
        controller = FaultController(FaultPlan())
        run_scheme("doram", "libq", LENGTH, faults=controller)
        with pytest.raises(RuntimeError):
            run_scheme("doram", "libq", LENGTH, faults=controller)
