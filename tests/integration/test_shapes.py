"""End-to-end shape assertions: the paper's qualitative results.

These are the reproduction's contract: absolute numbers may drift with
the synthetic traces and the event-driven DRAM model, but orderings and
rough factors must match Section V.  Each test states the claim it
guards.  Scale: ~1500 accesses/core (seconds per sim); results are
cached across tests in this module.
"""

import pytest

from repro.analysis import experiments

TRACE = 1500
BENCH = "li"          # streaming, memory-intensive: a sensitive workload
BENCH_B = "mu"        # pointer-chasing counterpart


def run(scheme, bench=BENCH):
    return experiments.cached_run(scheme, bench, TRACE)


class TestFig4Motivation:
    """Fig. 4: ORAM co-run devastates NS-Apps; partitioning helps some."""

    def test_oram_corun_hurts_more_than_ns_corun(self):
        solo = run("1ns").ns_mean_time()
        corun = run("7ns-4ch").ns_mean_time()
        oram = run("baseline").ns_mean_time()
        assert solo < corun < oram

    def test_oram_corun_slowdown_is_large(self):
        # Paper: avg 90.6 % overhead, worst 5.26x (vs solo).
        solo = run("1ns").ns_mean_time()
        oram = run("baseline").ns_mean_time()
        assert oram / solo > 1.5

    def test_channel_partition_beats_full_oram_corun(self):
        # 7NS-3ch gives NS-Apps clean channels; far better than sharing
        # all four with Path ORAM.
        assert run("7ns-3ch").ns_mean_time() < run("baseline").ns_mean_time()

    def test_4ch_beats_3ch_partition(self):
        assert run("7ns-4ch").ns_mean_time() <= run("7ns-3ch").ns_mean_time()

    def test_securemem_between_partition_and_pathoram(self):
        securemem = run("securemem").ns_mean_time()
        assert run("7ns-4ch").ns_mean_time() < securemem
        assert securemem < run("baseline").ns_mean_time()


class TestFig9Headline:
    """Fig. 9: D-ORAM improves NS-App time over the Path ORAM baseline."""

    @pytest.mark.parametrize("bench", [BENCH, BENCH_B])
    def test_doram_beats_baseline(self, bench):
        base = run("baseline", bench).ns_mean_time()
        doram = run("doram", bench).ns_mean_time()
        assert doram < base
        # Paper: 12.5 % mean improvement; allow a broad band but demand a
        # real win.
        assert doram / base < 0.97

    def test_doram_x_at_least_as_good_as_doram(self):
        sweep = experiments.fig11((BENCH,), TRACE, c_values=(0, 2, 4, 7))
        row = sweep[BENCH]
        best = min(row[f"c{c}"] for c in (0, 2, 4, 7))
        assert best <= row["c7"] + 1e-9

    def test_doram_plus_1_close_to_doram(self):
        # Paper: D-ORAM+1 is "only slightly slower than D-ORAM"
        # (88.6 % vs 87.5 % of Baseline).
        doram = run("doram").ns_mean_time()
        plus1 = run("doram+1").ns_mean_time()
        assert plus1 >= doram * 0.98
        assert plus1 <= doram * 1.15


class TestFig10Expansion:
    """Fig. 10: each extra split level adds small NS overhead."""

    def test_overhead_grows_with_k_and_stays_small(self):
        doram = run("doram").ns_mean_time()
        k1 = run("doram+1").ns_mean_time()
        k3 = run("doram+3").ns_mean_time()
        assert k1 <= k3 * 1.02  # monotone-ish (2 % tolerance for noise)
        # Paper: +1.02 % / +3.29 %; demand single-digit-percent overhead.
        assert k3 / doram < 1.25


class TestFig13Latency:
    """Fig. 13: NS memory latency drops vs the Path ORAM baseline."""

    def test_read_latency_reduced(self):
        base = run("baseline")
        doram4 = run("doram/4")
        assert doram4.read_latency_ns() < base.read_latency_ns()

    def test_write_latency_reduced(self):
        # Paper: writes drop to ~48 % of baseline (ORAM writes no longer
        # clog the shared write queues).
        base = run("baseline")
        doram4 = run("doram/4")
        assert doram4.write_latency_ns() < base.write_latency_ns()


class TestSAppBehaviour:
    """V-E: delegation keeps S-App ORAM latency in the same ballpark."""

    def test_oram_access_latency_thousands_of_ns(self):
        doram = run("doram")
        assert 200 < doram.s_app["oram_response_ns"] < 20_000

    def test_dummy_stream_maintained(self):
        # The fixed-rate guard keeps emitting after the S-App's real
        # requests dry up: real fraction strictly inside (0, 1).
        doram = run("doram")
        assert 0.0 < doram.s_app["oram_real_fraction"] < 1.0

    def test_split_tree_remote_messages_present_only_with_k(self):
        assert run("doram").s_app.get("remote_short_reads", 0) == 0
        assert run("doram+1").s_app["remote_short_reads"] > 0
