"""Cross-cutting end-to-end checks: determinism, conservation, scaling."""

import pytest

from repro.analysis import experiments
from repro.core.schemes import run_scheme

TRACE = 800


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["baseline", "doram", "doram+1/4"])
    def test_bit_identical_reruns(self, scheme):
        a = run_scheme(scheme, "c2", TRACE)
        b = run_scheme(scheme, "c2", TRACE)
        assert a.ns_finish == b.ns_finish
        assert a.events == b.events
        assert a.ns_read_latency.total == b.ns_read_latency.total
        assert a.channels == b.channels


class TestConservation:
    def test_every_ns_load_is_serviced(self):
        r = run_scheme("7ns-4ch", "li", TRACE)
        serviced = sum(row["reads"] for row in r.channels.values())
        assert serviced == r.ns_read_latency.count

    def test_oram_block_count_matches_protocol(self):
        # Each ORAM access reads exactly 84 blocks (L=23, Z=4, top 3
        # cached).  Totals on the secure sub-channels must be a multiple.
        r = run_scheme("doram", "li", TRACE)
        secure_reads = sum(
            row["secure_reads"] for name, row in r.channels.items()
            if name.startswith("ch0")
        )
        accesses = r.s_app["oram_accesses"]
        blocks_per_access = 84
        # The final access may be cut off by simulation end.
        assert secure_reads >= (accesses - 2) * blocks_per_access
        assert secure_reads <= accesses * blocks_per_access

    def test_finish_times_bounded_by_sim_end(self):
        r = run_scheme("doram", "bl", TRACE)
        assert all(t <= r.end_time for t in r.ns_finish.values())


class TestScaleStability:
    """The headline ordering must not be an artifact of trace length."""

    @pytest.mark.parametrize("length", [600, 1800])
    def test_doram_beats_baseline_at_any_scale(self, length):
        base = run_scheme("baseline", "li", length).ns_mean_time()
        doram = run_scheme("doram", "li", length).ns_mean_time()
        assert doram < base

    def test_longer_traces_take_longer(self):
        short = run_scheme("7ns-4ch", "li", 600).ns_mean_time()
        long = run_scheme("7ns-4ch", "li", 1800).ns_mean_time()
        assert long > 2 * short


class TestWorkloadSensitivity:
    def test_memory_intensity_orders_exec_time(self):
        # face (MPKI 26.8) has more misses than comm4 (MPKI 3.7): per
        # retired instruction it must spend more time.
        heavy = run_scheme("7ns-4ch", "fa", TRACE)
        light = run_scheme("7ns-4ch", "c4", TRACE)
        # Normalize finish time by instruction count (gap differs).
        heavy_instr = 1000 * TRACE / 26.8
        light_instr = 1000 * TRACE / 3.7
        assert (heavy.ns_mean_time() / heavy_instr
                > light.ns_mean_time() / light_instr)

    def test_streaming_row_hits_exceed_pointer_chasing(self):
        stream = run_scheme("1ns", "li", TRACE)
        chase = run_scheme("1ns", "mu", TRACE)
        def hit_rate(result):
            rows = [r for r in result.channels.values() if r["reads"] > 0]
            return sum(r["row_hit_rate"] for r in rows) / len(rows)
        assert hit_rate(stream) > hit_rate(chase)
