"""Security-facing end-to-end properties.

The threat model (Section II-B): an observer sees every address and
command on the parallel buses (behind the BOB buffer included) and every
packet on the serial links, but packet *contents* on the secure link are
sealed.  These tests check the observable traces carry no information
about the S-App's logical behaviour.
"""

import random
from collections import Counter as TallyCounter

from repro.bob.channel import BobChannel
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.crypto.otp import OtpEngine
from repro.dram.channel import Channel
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.oram.path_oram import PathOram
from repro.sim.engine import Engine


class TestFunctionalObliviousness:
    def _physical_trace(self, logical_pattern, seed=13):
        trace = []
        oram = PathOram(
            OramConfig(leaf_level=6, treetop_levels=2, subtree_levels=3),
            seed=seed,
            trace_hook=lambda kind, bucket: trace.append(bucket),
        )
        for block in logical_pattern:
            oram.read(block)
        return trace

    def test_hot_block_does_not_bias_bucket_histogram(self):
        """Repeatedly reading one block vs scanning all blocks yields
        statistically similar level-by-level bucket usage."""
        hot = self._physical_trace([7] * 200)
        scan = self._physical_trace([i % 100 for i in range(200)])
        hot_counts = TallyCounter(hot)
        scan_counts = TallyCounter(scan)
        # Compare at level 2 (4 buckets: 4..7): each should get ~1/4 of
        # the traffic under both patterns.
        for bucket in (4, 5, 6, 7):
            hot_frac = hot_counts[bucket] / 200
            scan_frac = scan_counts[bucket] / 200
            assert abs(hot_frac - scan_frac) < 0.15

    def test_trace_length_is_pattern_independent(self):
        """Every access touches exactly one path: trace length is a
        function of access count only."""
        a = self._physical_trace([0] * 50)
        b = self._physical_trace(list(range(50)))
        assert len(a) == len(b)


class TestRequestTypeHiding:
    def test_sealed_read_write_indistinguishable_in_length(self):
        from repro.core.packets import SecurePacket
        cpu = OtpEngine(b"K" * 16, 1)
        read = cpu.seal(SecurePacket.read_request(0x10).encode())
        write = cpu.seal(
            SecurePacket.write_request(0x20, b"\x99" * 64).encode()
        )
        assert len(read) == len(write)

    def test_sealed_packets_look_random(self):
        # Two seals of the same packet share no long common prefix.
        from repro.core.packets import SecurePacket
        cpu = OtpEngine(b"K" * 16, 1)
        pkt = SecurePacket.read_request(0x10).encode()
        a, b = cpu.seal(pkt), cpu.seal(pkt)
        common = sum(x == y for x, y in zip(a[8:], b[8:]))
        assert common < len(a) // 3


class TestTimingChannel:
    def _request_times(self, real_blocks, seed=1):
        """Observable request-packet times on the secure link for a given
        S-App demand pattern."""
        eng = Engine()
        subs = [Channel(eng, f"s{i}") for i in range(4)]
        bob = BobChannel(eng, 0, subs)
        sd = SecureDelegator(eng, bob, {}, process_ns=5.0)
        cfg = OramConfig(leaf_level=8, treetop_levels=3, subtree_levels=3)
        layout = OramLayout(cfg, [(0, i) for i in range(4)])
        controller = OramController(eng, cfg, layout, sd.sink, seed=seed)
        sd.sequencer = OramSequencer(controller)

        from repro.core.frontend import DelegatorBackend, OramFrontend
        from repro.dram.commands import OpType

        backend = DelegatorBackend(eng, bob, sd)
        frontend = OramFrontend(eng, backend, t_cycles=50)

        times = []
        original = backend.submit

        def tracked(block_id, on_response):
            times.append(eng.now)
            original(block_id, on_response)

        backend.submit = tracked
        frontend.start()
        for block in real_blocks:
            eng.after(100, lambda b=block: frontend.issue(
                OpType.READ, b, 7, lambda t: None))
        eng.run(until=400_000)
        return times

    def test_emission_times_independent_of_demand(self):
        """The request stream on the link is the same whether the S-App
        is idle (all dummies) or busy -- the timing-channel guarantee."""
        idle = self._request_times([])
        busy = self._request_times([1, 2, 3, 4, 5])
        assert idle == busy
