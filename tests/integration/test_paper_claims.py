"""Direct checks of quantitative statements in the paper's text.

Each test quotes (paraphrased) a sentence from the paper and asserts the
reproduction's corresponding quantity.  These pin the model to the text
independently of the evaluation figures.
"""

import pytest

from repro.bob.link import LinkParams
from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES, SystemConfig
from repro.core.packets import SecurePacket
from repro.core.tree_split import split_space_shares
from repro.oram.config import OramConfig
from repro.sim.engine import cpu_cycles, ns


class TestSectionII:
    def test_one_phase_accesses_23x4_blocks_root_cached(self):
        """II-B1: 'one phase accesses 23x4 blocks if only the root node
        is cached'."""
        cfg = OramConfig(treetop_levels=1)
        assert cfg.blocks_per_phase == 23 * 4

    def test_one_phase_accesses_21x4_blocks_top3_cached(self):
        """...'or 21x4 blocks if top 3 levels are cached'."""
        cfg = OramConfig(treetop_levels=3)
        assert cfg.blocks_per_phase == 21 * 4

    def test_4gb_tree_has_24_levels(self):
        """II-B1: 'Given 4GB Path ORAM tree, if each bucket contains 4
        blocks, the tree has 24 levels'."""
        cfg = OramConfig()
        assert cfg.num_levels == 24
        assert cfg.tree_bytes == pytest.approx(4 * 2**30, rel=0.01)

    def test_50_percent_space_efficiency(self):
        """III-C: 'a 4GB tree needs to be built for 2GB user data'."""
        cfg = OramConfig()
        assert cfg.num_user_blocks * cfg.block_bytes == pytest.approx(
            2 * 2**30, rel=0.01
        )


class TestSectionIII:
    def test_packet_is_72_bytes_with_fields(self):
        """III-B: 'Each packet is 72B long ... access type (1 bit),
        memory address (63 bits), and data (512 bits)'."""
        assert PACKET_BYTES == 72
        packet = SecurePacket.write_request(0x123, bytes(64))
        assert len(packet.encode()) == 72
        assert len(packet.data) * 8 == 512

    def test_t_is_50_cycles(self):
        """III-B(2): 'a new Path ORAM request t cycles after receiving
        the response ... We choose t=50'."""
        assert SystemConfig().t_cycles == 50
        assert cpu_cycles(50) == 250  # ticks at 3.2 GHz

    def test_tree_doubles_when_k_is_1(self):
        """Section V: 'The tree space doubles when k=1'."""
        base = SystemConfig()
        plus1 = SystemConfig(split_k=1)
        assert plus1.effective_oram().tree_bytes == pytest.approx(
            2 * base.oram.tree_bytes, rel=1e-6
        )

    def test_table1_k2_balances_at_25_percent(self):
        """III-C: 'when k=2, each channel saves 25% data blocks'."""
        shares = split_space_shares(2)
        assert shares["secure"] == pytest.approx(0.25, abs=0.001)
        assert shares["normal"] == pytest.approx(0.25, abs=0.001)

    def test_short_read_packets_smaller(self):
        """III-C: 'the read packets are short packets with data field
        omitted'."""
        assert SHORT_PACKET_BYTES < PACKET_BYTES
        assert SHORT_PACKET_BYTES * 8 >= 64  # still fits the address


class TestSectionIV:
    def test_link_latency_15ns(self):
        """IV: 'We added 15ns data transfer latency for the overhead of
        link bus and BoB control' (split across the two directions)."""
        params = LinkParams()
        assert 2 * params.latency == ns(15)

    def test_serial_link_comparable_to_parallel_channel(self):
        """III-A: 'the peak bandwidth of one serial link channel is set
        to be comparable with that of one parallel link channel'
        (DDR3-1600 x64 = 12.8 GB/s)."""
        assert LinkParams().bytes_per_ns == pytest.approx(12.8)

    def test_secure_channel_has_4_subchannels_normals_1(self):
        """IV: 'we choose to set the secure channel with 4 sub-channels,
        and other channels with 1 sub-channel'."""
        cfg = SystemConfig()
        assert cfg.secure_subchannels == 4
        assert cfg.normal_subchannels == 1

    def test_bandwidth_threshold_50_percent(self):
        """IV: 'We set the threshold to 50% so that both kinds of
        applications have similar slowdown.'"""
        assert SystemConfig().secure_share == 0.5


class TestSectionVE:
    def test_path_oram_access_finishes_in_thousands_of_ns(self):
        """V-E: 'Path ORAM accesses typically finish in the range of
        thousands of nanoseconds' -- check the on-chip baseline's
        response latency lands in that band."""
        from repro.core.schemes import run_scheme

        result = run_scheme("baseline", "li", 600)
        assert 300 < result.s_app["oram_response_ns"] < 20_000

    def test_sd_overhead_is_tens_of_ns(self):
        """V-E: 'adopting Secure Delegator in BoB architecture slows
        down the memory access latency by tens of nanoseconds' -- the
        round-trip link + SD processing cost."""
        cfg = SystemConfig()
        overhead_ns = (
            2 * cfg.link_params.latency / 16
            + cfg.sd_process_ns
            + (PACKET_BYTES * 2) / cfg.link_params.bytes_per_ns
        )
        assert 10 < overhead_ns < 100
