"""Consistency between the functional and timing ORAM layers.

The two layers share the protocol but not code paths for the access
itself; these tests pin them to each other so a drift in one is caught.
"""

from repro.dram.commands import OpType
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.oram.path_oram import PathOram
from repro.sim.engine import Engine

CFG = OramConfig(leaf_level=7, treetop_levels=2, subtree_levels=3)


class _CollectingSink:
    def __init__(self, engine):
        self.engine = engine
        self.ops = []

    def try_issue(self, placement, op, on_complete):
        self.ops.append((op, placement.bucket))
        self.engine.after(1, lambda: on_complete(self.engine.now))
        return True

    def notify_on_space(self, callback):
        raise AssertionError("unbounded sink")


class TestLayerConsistency:
    def test_blocks_touched_per_access_match(self):
        """Functional buckets-per-access x Z == timing block placements
        (for the non-cached levels)."""
        # Functional trace: buckets touched below the treetop.
        touched = []
        functional = PathOram(
            CFG, seed=1, trace_hook=lambda kind, b: touched.append((kind, b))
        )
        functional.read(0)
        func_read_buckets = [b for kind, b in touched if kind == "read"]

        # Timing side.
        eng = Engine()
        layout = OramLayout(CFG, [(0, i) for i in range(4)])
        sink = _CollectingSink(eng)
        controller = OramController(eng, CFG, layout, sink, seed=1)
        controller.begin_read(0, lambda t: None)
        eng.run()
        timing_reads = [b for op, b in sink.ops if op is OpType.READ]

        # The functional layer reads the full path (its "cache" is the
        # data structure itself); the timing layer skips the tree-top.
        assert len(timing_reads) == (
            (len(func_read_buckets) - CFG.treetop_levels) * CFG.bucket_size
        )

    def test_path_selection_distributions_agree(self):
        """Both layers draw uniformly random leaves: over many accesses
        of one block, the leaf-level buckets they touch cover a similar
        spread."""
        touched = []
        functional = PathOram(
            CFG, seed=5, trace_hook=lambda kind, b: touched.append(b)
        )
        for _ in range(60):
            functional.read(3)
        leaf_lo = 1 << CFG.leaf_level
        func_leaves = {b for b in touched if b >= leaf_lo}

        eng = Engine()
        layout = OramLayout(CFG, [(0, i) for i in range(4)])
        sink = _CollectingSink(eng)
        controller = OramController(eng, CFG, layout, sink, seed=5)
        for _ in range(60):
            controller.begin_read(3, lambda t: None)
            eng.run()
            controller.begin_write(lambda t: None)
            eng.run()
        timing_leaves = {
            b for _op, b in sink.ops if b >= leaf_lo
        }
        # Uniform sampling of 2^7 = 128 leaves, 60 draws: both should
        # cover a substantial, similar fraction.
        assert len(func_leaves) > 30
        assert len(timing_leaves) > 30

    def test_both_layers_remap_on_access(self):
        functional = PathOram(CFG, seed=2)
        f_before = functional.state.position_map.lookup(9)
        functional.read(9)

        eng = Engine()
        layout = OramLayout(CFG, [(0, i) for i in range(4)])
        controller = OramController(eng, CFG, layout, _CollectingSink(eng),
                                    seed=2)
        t_before = controller.state.position_map.lookup(9)
        controller.begin_read(9, lambda t: None)
        eng.run()
        # Remap happened in both (values may coincide by chance for one
        # block; check the mechanism ran by confirming map entries are
        # materialized/refreshed).
        assert functional.accesses == 1
        assert controller.stats.counter("real_accesses").value == 1
        assert 0 <= functional.state.position_map.lookup(9) < CFG.num_leaves
        assert 0 <= controller.state.position_map.lookup(9) < CFG.num_leaves
