"""Exporters: canonical JSONL, digests, Chrome trace_event structure."""

import json

from repro.obs.export import (
    canonical_line,
    chrome_trace,
    event_dict,
    render_jsonl,
    trace_digest,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer
from repro.sim.engine import TICKS_PER_NS


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.instant("oram", "emit", "oram_fe0", 0, {"real": 1})
    tracer.complete("dram", "read", "ch0", 160, 64, {"bank": 2, "row": 9})
    tracer.counter("stats", "snapshot", "ch0", 320, {"queued": 3.0})
    return tracer


class TestCanonicalForm:
    def test_sorted_compact_json(self):
        tracer = _sample_tracer()
        line = canonical_line(tracer.events[1])
        # Keys sorted, no spaces: byte-stable across dict insert orders.
        assert line.index('"args"') < line.index('"cat"') < line.index('"ts"')
        assert ": " not in line and ", " not in line
        assert json.loads(line) == event_dict(tracer.events[1])

    def test_render_matches_write(self, tmp_path):
        tracer = _sample_tracer()
        path = tmp_path / "trace.jsonl"
        count = write_jsonl(tracer.events, str(path))
        assert count == 3
        assert path.read_text() == render_jsonl(tracer.events)
        lines = path.read_text().splitlines()
        assert [json.loads(l)["name"] for l in lines] == [
            "emit", "read", "snapshot",
        ]


class TestDigest:
    def test_stable_for_equal_streams(self):
        assert trace_digest(_sample_tracer().events) == trace_digest(
            _sample_tracer().events
        )

    def test_sensitive_to_any_field(self):
        base = trace_digest(_sample_tracer().events)
        shifted = _sample_tracer()
        shifted.events[1].ts += 1
        renamed = _sample_tracer()
        renamed.events[0].args["real"] = 0
        reordered = _sample_tracer()
        reordered.events.reverse()
        digests = {base, trace_digest(shifted.events),
                   trace_digest(renamed.events),
                   trace_digest(reordered.events)}
        assert len(digests) == 4

    def test_empty_stream(self):
        assert trace_digest([]) == trace_digest([])
        assert trace_digest([]) != trace_digest(_sample_tracer().events)


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(_sample_tracer().events, process_name="unit")
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"] == {"name": "unit"}
        # One thread_name per distinct track, in first-appearance order.
        names = [e["args"]["name"] for e in meta[1:]]
        assert names == ["oram_fe0", "ch0"]

    def test_timestamp_scaling_and_phases(self):
        doc = chrome_trace(_sample_tracer().events)
        payload = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        instant, complete, counter = payload
        # Ticks -> microseconds.
        assert complete["ts"] == 160 / (TICKS_PER_NS * 1000.0)
        assert complete["dur"] == 64 / (TICKS_PER_NS * 1000.0)
        assert instant["s"] == "t" and "dur" not in instant
        assert counter["ph"] == "C" and counter["args"] == {"queued": 3.0}

    def test_same_track_shares_tid(self):
        doc = chrome_trace(_sample_tracer().events)
        payload = [e for e in doc["traceEvents"] if e["ph"] != "M"]
        assert payload[1]["tid"] == payload[2]["tid"]  # both ch0
        assert payload[0]["tid"] != payload[1]["tid"]

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(_sample_tracer().events, str(path))
        assert count == 3
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ns"
        assert len(doc["traceEvents"]) == 3 + 3  # process + 2 threads + events
