"""Tracer core: category routing, event capture, null behaviour."""

import pytest

from repro.obs.tracer import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    NULL_TRACER,
    NullTracer,
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TraceEvent,
    Tracer,
    coerce,
)


class TestCategories:
    def test_default_excludes_engine(self):
        assert "engine" not in DEFAULT_CATEGORIES
        assert DEFAULT_CATEGORIES < ALL_CATEGORIES

    def test_default_constructor_uses_default_set(self):
        assert Tracer().categories == DEFAULT_CATEGORIES

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError, match="unknown trace categories"):
            Tracer(categories={"dram", "bogus"})

    def test_category_returns_self_when_captured(self):
        tracer = Tracer(categories={"dram"})
        assert tracer.category("dram") is tracer
        assert tracer.wants("dram")

    def test_category_returns_null_when_filtered(self):
        tracer = Tracer(categories={"dram"})
        assert tracer.category("link") is NULL_TRACER
        assert not tracer.wants("link")


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_category_is_identity(self):
        assert NULL_TRACER.category("dram") is NULL_TRACER

    def test_emissions_are_noops(self):
        null = NullTracer()
        null.instant("dram", "x", "t", 0)
        null.complete("dram", "x", "t", 0, 5)
        null.counter("stats", "x", "t", 0, {"v": 1})
        # No storage at all -- nothing to assert beyond "didn't raise".
        assert not null.wants("dram")

    def test_coerce(self):
        tracer = Tracer()
        assert coerce(None) is NULL_TRACER
        assert coerce(tracer) is tracer


class TestEmission:
    def test_instant(self):
        tracer = Tracer()
        tracer.instant("dram", "issue", "ch0", 42, {"bank": 3})
        (event,) = tracer.events
        assert isinstance(event, TraceEvent)
        assert (event.ts, event.cat, event.name, event.track) == (
            42, "dram", "issue", "ch0",
        )
        assert event.ph == PH_INSTANT
        assert event.dur == 0
        assert event.args == {"bank": 3}

    def test_instant_default_args_is_empty_dict(self):
        tracer = Tracer()
        tracer.instant("dram", "issue", "ch0", 0)
        assert tracer.events[0].args == {}

    def test_complete(self):
        tracer = Tracer()
        tracer.complete("oram", "read_phase", "oram0", 100, 50)
        (event,) = tracer.events
        assert event.ph == PH_COMPLETE
        assert (event.ts, event.dur) == (100, 50)

    def test_counter_copies_values(self):
        tracer = Tracer()
        values = {"depth": 4}
        tracer.counter("stats", "snap", "ch0", 7, values)
        values["depth"] = 99
        (event,) = tracer.events
        assert event.ph == PH_COUNTER
        assert event.args == {"depth": 4}

    def test_complete_series_matches_individual_completes(self):
        # The census layer's batch hook must be indistinguishable from
        # the per-occurrence calls it replaces.
        batched = Tracer()
        batched.complete_series("dram", "refresh", "ch0", 1000, 250, 3, 40)
        loop = Tracer()
        for i in range(3):
            loop.complete("dram", "refresh", "ch0", 1000 + i * 250, 40)
        assert len(batched) == len(loop) == 3
        for got, want in zip(batched.events, loop.events):
            assert (
                (got.ts, got.cat, got.name, got.track, got.ph, got.dur,
                 got.args)
                == (want.ts, want.cat, want.name, want.track, want.ph,
                    want.dur, want.args)
            )

    def test_complete_series_zero_count_is_noop(self):
        tracer = Tracer()
        tracer.complete_series("dram", "refresh", "ch0", 0, 10, 0, 5)
        assert len(tracer) == 0

    def test_len_and_clear(self):
        tracer = Tracer()
        tracer.instant("dram", "a", "t", 0)
        tracer.instant("dram", "b", "t", 1)
        assert len(tracer) == 2
        tracer.clear()
        assert len(tracer) == 0
