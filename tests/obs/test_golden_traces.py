"""Golden-trace regression suite.

Two properties per pinned scheme:

1. **Determinism** -- two fresh runs of the same configuration produce
   byte-identical canonical traces (same sha256 digest).
2. **Pinned history** -- the digest matches the committed value in
   ``golden_digests.json``, so any change to event-level timing
   behaviour (scheduling order, packet times, phase boundaries) fails
   here even if every aggregate metric stays the same.  Intentional
   changes: regenerate with ``python tools/regen_goldens.py`` and commit
   the new digests alongside the change.
"""

import json
import os

import pytest

from repro.obs.export import trace_digest
from repro.obs.golden import (
    GOLDEN_BENCHMARK,
    GOLDEN_SCHEMES,
    GOLDEN_TRACE_LENGTH,
    run_traced,
)

_GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden_digests.json")

with open(_GOLDEN_PATH) as _fp:
    _GOLDEN = json.load(_fp)

#: Digest cache so the pinned-value test reuses the determinism runs.
_digests = {}


def _digest_pair(scheme):
    if scheme not in _digests:
        _result, first = run_traced(scheme)
        _result, second = run_traced(scheme)
        _digests[scheme] = (
            trace_digest(first.events), trace_digest(second.events),
        )
    return _digests[scheme]


class TestGoldenTraces:
    def test_fixture_matches_module_constants(self):
        assert _GOLDEN["benchmark"] == GOLDEN_BENCHMARK
        assert _GOLDEN["trace_length"] == GOLDEN_TRACE_LENGTH
        assert set(_GOLDEN["digests"]) == set(GOLDEN_SCHEMES)

    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    def test_run_is_deterministic(self, scheme):
        first, second = _digest_pair(scheme)
        assert first == second, (
            f"{scheme}: two identical runs diverged -- the model is "
            "nondeterministic"
        )

    @pytest.mark.parametrize("scheme", GOLDEN_SCHEMES)
    def test_digest_matches_committed_golden(self, scheme):
        first, _second = _digest_pair(scheme)
        assert first == _GOLDEN["digests"][scheme], (
            f"{scheme}: event-level timing behaviour changed. If "
            "intentional, run `python tools/regen_goldens.py` and commit "
            "the updated golden_digests.json with an explanation."
        )

    def test_schemes_are_distinguishable(self):
        digests = {_digest_pair(s)[0] for s in GOLDEN_SCHEMES}
        assert len(digests) == len(GOLDEN_SCHEMES)

    def test_engine_category_off_by_default(self):
        _result, tracer = run_traced("doram")
        assert all(e.cat != "engine" for e in tracer.events)
        # The default capture still sees every instrumented layer.
        cats = {e.cat for e in tracer.events}
        assert {"dram", "link", "oram", "sd"} <= cats


class TestEngineCategory:
    def test_dispatch_events_when_enabled(self):
        _result, tracer = run_traced(
            "doram", trace_length=50, categories={"engine"}
        )
        dispatches = [e for e in tracer.events if e.name == "dispatch"]
        assert dispatches, "engine category enabled but no dispatch events"
        assert all(e.track == "engine" for e in dispatches)
        # Labels are stable symbols (never reprs with memory addresses).
        assert all("0x" not in e.args["fn"] for e in dispatches)
