"""StatsSampler: periodic polling into rows and counter events."""

import pytest

from repro.obs.snapshot import StatsSampler
from repro.obs.tracer import Tracer
from repro.sim.engine import Engine, ns


class TestStatsSampler:
    def test_samples_on_the_interval(self):
        engine = Engine()
        sampler = StatsSampler(engine, ns(10))
        ticks = {"n": 0}

        def source():
            ticks["n"] += 1
            return {"n": float(ticks["n"])}

        sampler.add_source("comp", source)
        sampler.start()
        engine.at(ns(95), engine.stop)
        engine.run()
        # Samples at 0, 10, ..., 90 ns.
        assert len(sampler.rows) == 10
        assert [row["ts"] for row in sampler.rows] == [
            ns(10 * i) for i in range(10)
        ]
        assert sampler.rows[0]["comp"] == {"n": 1.0}
        assert sampler.rows[-1]["comp"] == {"n": 10.0}

    def test_emits_counter_events(self):
        engine = Engine()
        tracer = Tracer()
        sampler = StatsSampler(engine, ns(10), tracer=tracer)
        sampler.add_source("comp", lambda: {"v": 2.0})
        sampler.start()
        engine.at(ns(25), engine.stop)
        engine.run()
        counters = [e for e in tracer.events if e.cat == "stats"]
        assert len(counters) == 3
        assert all(e.ph == "C" and e.args == {"v": 2.0} for e in counters)
        assert all(e.track == "comp" for e in counters)

    def test_stats_category_filtered_out(self):
        engine = Engine()
        tracer = Tracer(categories={"dram"})
        sampler = StatsSampler(engine, ns(10), tracer=tracer)
        sampler.add_source("comp", lambda: {"v": 1.0})
        sampler.start()
        engine.at(ns(25), engine.stop)
        engine.run()
        assert len(tracer.events) == 0
        assert len(sampler.rows) == 3  # rows still collected

    def test_series_extraction(self):
        engine = Engine()
        sampler = StatsSampler(engine, ns(10))
        values = iter(range(100))
        sampler.add_source("comp", lambda: {"v": float(next(values))})
        sampler.start()
        engine.at(ns(35), engine.stop)
        engine.run()
        assert sampler.series("comp", "v") == [
            (ns(0), 0.0), (ns(10), 1.0), (ns(20), 2.0), (ns(30), 3.0),
        ]
        assert sampler.series("comp", "missing") == []
        assert sampler.series("other", "v") == []

    def test_no_sources_never_starts(self):
        engine = Engine()
        sampler = StatsSampler(engine, ns(10))
        sampler.start()
        engine.run()  # queue empty: returns immediately
        assert sampler.rows == []

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            StatsSampler(Engine(), 0)


class TestSystemIntegration:
    def test_run_scheme_collects_snapshots(self):
        from repro.core.schemes import run_scheme

        result = run_scheme("doram", "libq", trace_length=300,
                            snapshot_interval_ns=500.0)
        assert result.snapshots
        first = result.snapshots[0]
        assert first["ts"] == 0
        # Every DRAM (sub-)channel and the ORAM frontend are sampled.
        tracks = set(first) - {"ts"}
        assert "oram_fe0" in tracks
        assert any(t.startswith("ch") for t in tracks)
        assert set(first["oram_fe0"]) == {"backlog"}
        channel_track = sorted(t for t in tracks if t.startswith("ch"))[0]
        assert set(first[channel_track]) == {"queued", "util"}

    def test_component_stats_exported(self):
        from repro.core.schemes import run_scheme

        result = run_scheme("doram", "libq", trace_length=300)
        assert "oram_fe0" in result.component_stats
        stats = result.component_stats["oram_fe0"]
        assert stats["oram_response.min"] > 0
        assert stats["oram_response.max"] >= stats["oram_response.min"]
        assert stats["backlog.p50"] <= stats["backlog.p99"]
        assert "delegator" in result.component_stats

    def test_no_interval_means_no_snapshots(self):
        from repro.core.schemes import run_scheme

        result = run_scheme("doram", "libq", trace_length=300)
        assert result.snapshots == []
