"""Timing-channel guard on the CPU <-> SD link (Section III-B).

D-ORAM's security argument for the delegated engine is that the secure
channel's wire traffic is independent of the S-App's memory behaviour:
every request/response packet is exactly PACKET_BYTES long and a new
request leaves exactly ``t`` CPU cycles (plus fixed CPU processing)
after the previous response arrived, whether the access is real or a
dummy.  These tests check that invariant on the traced wire events --
and that the checker actually fails when the schedule is perturbed.
"""

import pytest

from repro.core.config import PACKET_BYTES
from repro.obs.golden import run_traced
from repro.obs.leakage import check_fixed_rate, secure_link_packets

_TRACE_LENGTH = 300


def _traced(scheme, **overrides):
    _result, tracer = run_traced(
        scheme, trace_length=_TRACE_LENGTH, **overrides
    )
    return _result, tracer


class TestFixedRateHolds:
    @pytest.mark.parametrize("scheme", ["doram", "doram/0", "doram+1"])
    def test_no_violations(self, scheme):
        _result, tracer = _traced(scheme)
        assert check_fixed_rate(tracer.events) == []

    def test_every_packet_is_packet_bytes(self):
        _result, tracer = _traced("doram")
        down, up = secure_link_packets(tracer.events)
        assert down and up
        assert all(e.args["bytes"] == PACKET_BYTES for e in down + up)

    def test_dummies_indistinguishable_on_the_wire(self):
        result, tracer = _traced("doram")
        emits = [e for e in tracer.events
                 if e.cat == "oram" and e.name == "emit"]
        real = sum(e.args["real"] for e in emits)
        # The workload exercises both real and dummy accesses...
        assert 0 < real < len(emits)
        # ...while the wire carries one identical packet per emission.
        down, _up = secure_link_packets(tracer.events)
        assert len(down) == len(emits)
        assert len({e.args["bytes"] for e in down}) == 1

    def test_strict_alternation(self):
        _result, tracer = _traced("doram")
        down, up = secure_link_packets(tracer.events)
        # One response per request, minus at most the one in flight at
        # simulation end.
        assert len(up) <= len(down) <= len(up) + 1


class TestCheckerHasTeeth:
    def test_detects_changed_emission_period(self):
        # Run with t=60 but audit against the protocol's t=50: every
        # inter-packet gap is now wrong and must be flagged.
        _result, tracer = _traced("doram", t_cycles=60)
        violations = check_fixed_rate(tracer.events, t_cycles=50)
        assert violations
        assert any("fixed rate" in v for v in violations)

    def test_detects_wrong_packet_size(self):
        _result, tracer = _traced("doram")
        violations = check_fixed_rate(tracer.events, packet_bytes=64)
        assert violations
        assert all("72" in v or "64" in v for v in violations[:1])

    def test_accepts_matching_custom_period(self):
        # t=60 audited as t=60 is a valid (differently-tuned) guard.
        _result, tracer = _traced("doram", t_cycles=60)
        assert check_fixed_rate(tracer.events, t_cycles=60) == []
