"""Last-level cache model."""

import pytest

from repro.cpu.cache import CacheParams, LastLevelCache
from repro.trace.trace_format import TraceRecord


def small_cache(ways=2, sets=4):
    return LastLevelCache(CacheParams(
        capacity_bytes=64 * ways * sets, line_bytes=64, ways=ways,
    ))


class TestGeometry:
    def test_default_is_4mb_16way(self):
        cache = LastLevelCache()
        assert cache.params.num_sets == 4 * 1024 * 1024 // (64 * 16)

    def test_capacity_must_divide(self):
        with pytest.raises(ValueError):
            CacheParams(capacity_bytes=100, line_bytes=64, ways=2).num_sets


class TestAccessBehaviour:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0, False) == [("fill", 0)]
        assert cache.access(0, False) == []
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0, False)
        cache.access(1, False)
        cache.access(0, False)          # touch 0: 1 becomes LRU
        tx = cache.access(2, False)     # evicts 1 (clean -> no writeback)
        assert tx == [("fill", 2)]
        assert cache.access(1, False) == [("fill", 1)]  # 1 was evicted

    def test_dirty_eviction_writes_back(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, True)
        tx = cache.access(1, False)
        assert ("writeback", 0) in tx
        assert cache.writebacks == 1

    def test_write_hit_sets_dirty(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, False)
        cache.access(0, True)  # hit, marks dirty
        tx = cache.access(1, False)
        assert ("writeback", 0) in tx

    def test_sets_isolate_lines(self):
        cache = small_cache(ways=1, sets=4)
        cache.access(0, False)
        cache.access(1, False)  # different set: no eviction
        assert cache.access(0, False) == []

    def test_hit_rate(self):
        cache = small_cache()
        cache.access(0, False)
        cache.access(0, False)
        assert cache.hit_rate == 0.5


class TestTraceFiltering:
    def test_hits_fold_gaps_into_next_miss(self):
        cache = small_cache(ways=4, sets=4)
        records = [
            TraceRecord(10, False, 0),   # miss
            TraceRecord(10, False, 0),   # hit -> gap carried
            TraceRecord(10, False, 99),  # miss, carries 11 extra instrs
        ]
        out = list(cache.filter_trace(iter(records)))
        assert len(out) == 2
        assert out[1].gap == 10 + 11

    def test_instruction_count_preserved(self):
        cache = small_cache(ways=2, sets=2)
        # Distinct cold lines: every access misses, the last one included,
        # so no gap instructions are left carried at the end.
        records = [TraceRecord(7, False, 100 + i * 13) for i in range(20)]
        total_in = sum(r.instructions for r in records)
        out = list(cache.filter_trace(iter(records)))
        fills = [r for r in out if not r.is_write]
        writebacks = [r for r in out if r.is_write]
        total_out = sum(r.instructions for r in fills)
        # Each fill accounts for its access plus carried gap; writebacks
        # add one instruction each (their own record), which are extra
        # memory operations, not program instructions.
        assert total_out == total_in
        assert all(r.gap == 0 for r in writebacks)

    def test_write_misses_fill_as_reads(self):
        cache = small_cache()
        out = list(cache.filter_trace(iter([TraceRecord(0, True, 5)])))
        assert len(out) == 1
        assert not out[0].is_write  # write-allocate fill is a read
