"""ROB core model: retirement blocking, MLP, backpressure, finish."""

from typing import List, Optional

import pytest

from repro.cpu.core import Core, CoreParams
from repro.dram.commands import OpType
from repro.sim.engine import CPU_CYCLE_TICKS, Engine
from repro.trace.trace_format import TraceRecord


class FixedLatencyPort:
    """Memory port answering every read after a fixed delay."""

    def __init__(self, engine: Engine, latency: int,
                 accept: bool = True) -> None:
        self.engine = engine
        self.latency = latency
        self.accept = accept
        self.issued: List = []
        self._waiters: List = []

    def can_accept(self, op: OpType) -> bool:
        return self.accept

    def issue(self, op, line_addr, app_id, on_complete) -> None:
        self.issued.append((self.engine.now, op, line_addr))
        if on_complete is not None:
            self.engine.after(self.latency, lambda: on_complete(self.engine.now))

    def notify_on_space(self, callback) -> None:
        self._waiters.append(callback)

    def release(self) -> None:
        self.accept = True
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb()


def run_core(records, latency=100, params=CoreParams(), port_cls=FixedLatencyPort):
    eng = Engine()
    port = port_cls(eng, latency)
    finish: List[int] = []
    core = Core(eng, 0, iter(records), port, params=params,
                on_finish=finish.append)
    core.start()
    eng.run(max_events=1_000_000)
    return eng, port, core, finish


def R(gap, addr=0):
    return TraceRecord(gap=gap, is_write=False, line_addr=addr)


def W(gap, addr=0):
    return TraceRecord(gap=gap, is_write=True, line_addr=addr)


class TestBasicExecution:
    def test_pure_compute_finishes_at_pace(self):
        # One read with a huge gap: time dominated by 1000 instrs / 4-wide.
        _, _, core, finish = run_core([R(999)], latency=10)
        assert core.finished
        expected_min = (1000 // 4) * CPU_CYCLE_TICKS
        assert finish[0] >= expected_min

    def test_read_latency_blocks_retirement(self):
        _, _, _, finish_fast = run_core([R(0)], latency=10)
        _, _, _, finish_slow = run_core([R(0)], latency=10_000)
        assert finish_slow[0] - finish_fast[0] >= 9_000

    def test_all_records_issued(self):
        records = [R(10, addr=i) for i in range(20)]
        _, port, core, _ = run_core(records, latency=50)
        assert len(port.issued) == 20
        assert core.stats.counter("loads_issued").value == 20

    def test_writes_do_not_block(self):
        # Writes retire on acceptance: finish ~ pace, not port latency.
        _, _, _, finish_w = run_core([W(10) for _ in range(10)], latency=10**6)
        assert finish_w[0] < 10**6

    def test_finish_reported_once(self):
        _, _, _, finish = run_core([R(5), R(5)], latency=10)
        assert len(finish) == 1

    def test_ipc_sane(self):
        _, _, core, _ = run_core([R(99, addr=i) for i in range(10)], latency=40)
        assert 0.1 < core.ipc() <= 4.0


class TestMemoryLevelParallelism:
    def test_independent_reads_overlap(self):
        # 8 reads with tiny gaps: the ROB lets them all issue before the
        # first completes, so total time ~ one latency, not eight.
        latency = 10_000
        _, port, _, finish = run_core(
            [R(0, addr=i) for i in range(8)], latency=latency
        )
        issue_times = [t for t, _op, _a in port.issued]
        assert max(issue_times) < latency  # all issued before first return
        assert finish[0] < 2 * latency

    def test_rob_limits_outstanding(self):
        # Gap 63 -> each record occupies 64 ROB slots; with ROB=128 only
        # ~2 records fit, so issues serialize in waves.
        latency = 50_000
        params = CoreParams(rob_size=128)
        _, port, _, _ = run_core(
            [R(63, addr=i) for i in range(8)], latency=latency, params=params
        )
        early = [t for t, _o, _a in port.issued if t < latency]
        assert len(early) <= 3


class TestBackpressure:
    def test_stalls_until_port_has_space(self):
        eng = Engine()
        port = FixedLatencyPort(eng, latency=10, accept=False)
        core = Core(eng, 0, iter([R(0)]), port)
        core.start()
        eng.run(max_events=10_000)
        assert port.issued == []
        port.release()
        eng.run(max_events=10_000)
        assert len(port.issued) == 1
        assert core.finished


class TestEdgeCases:
    def test_empty_trace_finishes_immediately(self):
        _, _, core, finish = run_core([], latency=10)
        assert core.finished
        assert finish[0] == 0

    def test_zero_gap_records(self):
        _, port, core, _ = run_core([R(0, addr=i) for i in range(5)],
                                    latency=10)
        assert core.finished
        assert len(port.issued) == 5

    def test_gap_larger_than_rob(self):
        # A 1000-instruction gap exceeds ROB=128; fetch must chunk it.
        _, _, core, finish = run_core([R(1000), R(1000)], latency=100)
        assert core.finished
        assert finish[0] >= (2002 // 4) * CPU_CYCLE_TICKS

    def test_mixed_reads_writes(self):
        records = [R(5, 1), W(5, 2), R(5, 3), W(5, 4)]
        _, port, core, _ = run_core(records, latency=30)
        ops = [op for _t, op, _a in port.issued]
        assert ops.count(OpType.READ) == 2
        assert ops.count(OpType.WRITE) == 2

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            CoreParams(rob_size=0)
