"""DirectRouter hold/drain re-entrancy.

``DirectRouter._drain`` swaps the held list out and re-sends each entry;
while that is in flight, ``channel.enqueue`` -> ``_wake`` can run
arbitrary waiter callbacks that issue *new* requests back into the same
router (exactly what a core does when its port reports space).  Every
request must be serviced exactly once -- no drops when the channel fills
mid-drain, no double-sends of re-held entries.
"""

from collections import Counter

from repro.core.system import DirectRouter
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.dram.timing import ChannelParams
from repro.sim.engine import Engine


def make_router(read_queue_depth=2, hold_cap=64):
    eng = Engine()
    channel = Channel(
        eng, "ch0",
        params=ChannelParams(read_queue_depth=read_queue_depth),
    )
    router = DirectRouter(
        eng, {(0, 0): channel}, [(0, 0)], app_id=0, app_slot=0,
        hold_cap=hold_cap,
    )
    return eng, channel, router


class TestSendOrHold:
    def test_overflow_is_held_then_drained(self):
        eng, channel, router = make_router(read_queue_depth=2)
        done = Counter()
        for line in range(8):
            router.issue(OpType.READ, line, 0, lambda _t, l=line: done.update([l]))
        assert len(router._held) == 6  # channel took 2, the rest held
        eng.run()
        assert sorted(done) == list(range(8))
        assert all(count == 1 for count in done.values())
        assert router._held == []

    def test_reentrant_issue_during_drain_not_dropped(self):
        # A completion issues a follow-up request; completions dispatch
        # while the router still has held entries, so the new issue runs
        # against a draining router.
        eng, channel, router = make_router(read_queue_depth=1)
        done = Counter()
        followups = []

        def complete(_time, line):
            done.update([line])
            if line < 4:  # chain: 0 -> 10 -> ... (disjoint line numbers)
                follow = line + 10
                followups.append(follow)
                router.issue(
                    OpType.READ, follow, 0,
                    lambda _t, l=follow: done.update([l]),
                )

        for line in range(5):
            router.issue(OpType.READ, line, 0,
                         lambda t, l=line: complete(t, l))
        eng.run()
        expected = list(range(5)) + followups
        assert sorted(done) == sorted(expected)
        assert all(count == 1 for count in done.values())
        assert router._held == []

    def test_space_waiter_issuing_into_drain_keeps_fifo_per_request(self):
        # The port-level waiter (what a Core registers) fires from _wake
        # during _drain's enqueue loop; its issue must coexist with the
        # remaining held entries without dropping either.
        eng, channel, router = make_router(read_queue_depth=1, hold_cap=4)
        done = Counter()

        def fill(start, n):
            for line in range(start, start + n):
                if not router.can_accept(OpType.READ):
                    router.notify_on_space(lambda s=line, e=start + n - line:
                                           fill(s, e))
                    return
                router.issue(OpType.READ, line, 0,
                             lambda _t, l=line: done.update([l]))

        fill(0, 10)
        eng.run()
        assert sorted(done) == list(range(10))
        assert all(count == 1 for count in done.values())
        assert router._held == []
