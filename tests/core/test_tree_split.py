"""Table I: analytic space shares and extra-message counts."""

import pytest

from repro.core.tree_split import (
    TABLE_I,
    split_extra_messages,
    split_space_shares,
)


class TestSpaceShares:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_paper_table1(self, k):
        shares = split_space_shares(k)
        assert shares["secure"] == pytest.approx(TABLE_I[k]["secure"],
                                                 abs=0.001)
        assert shares["normal"] == pytest.approx(TABLE_I[k]["normal"],
                                                 abs=0.001)

    def test_shares_sum_to_one(self):
        for k in range(5):
            shares = split_space_shares(k)
            total = shares["secure"] + 3 * shares["normal"]
            assert total == pytest.approx(1.0)

    def test_k_zero_keeps_everything_local(self):
        shares = split_space_shares(0)
        assert shares["secure"] == 1.0
        assert shares["normal"] == 0.0

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            split_space_shares(-1)

    def test_capacity_doubles_per_level(self):
        # k=1 halves the secure share because the new level equals the
        # whole original tree in size.
        assert split_space_shares(1)["secure"] == pytest.approx(0.5,
                                                                abs=1e-6)


class TestExtraMessages:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_secure_channel_counts(self, k):
        # Table I: 4k short reads, 4k responses, 4k writes on channel #0.
        m = split_extra_messages(k)
        assert m.secure_short_reads == 4 * k
        assert m.secure_responses == 4 * k
        assert m.secure_writes == 4 * k

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_normal_channel_bounds(self, k):
        # Table I: m in [k, 2k] per normal channel.
        m = split_extra_messages(k)
        assert m.normal_min == k
        assert m.normal_max == 2 * k
        assert m.normal_min <= m.normal_expected <= m.normal_max

    def test_expected_value(self):
        # k fixed + k/3 rotating on average.
        assert split_extra_messages(3).normal_expected == pytest.approx(4.0)

    def test_zero_k(self):
        m = split_extra_messages(0)
        assert m.secure_short_reads == 0
        assert m.normal_max == 0
