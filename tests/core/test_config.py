"""SystemConfig validation and Table II defaults."""

import pytest

from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES, SystemConfig
from repro.sim.engine import mem_cycles


class TestTable2Defaults:
    def test_processor(self):
        cfg = SystemConfig()
        assert cfg.core_params.rob_size == 128
        assert cfg.core_params.retire_width == 4
        assert cfg.core_params.fetch_width == 4

    def test_memory_organization(self):
        cfg = SystemConfig()
        assert cfg.num_channels == 4
        assert cfg.secure_subchannels == 4
        assert cfg.normal_subchannels == 1
        assert cfg.channel_params.num_banks == 8
        assert cfg.channel_params.num_ranks == 1

    def test_ddr3_1600(self):
        assert SystemConfig().dram_timing.tCL == mem_cycles(11)

    def test_oram_paper_config(self):
        cfg = SystemConfig()
        assert cfg.oram.leaf_level == 23
        assert cfg.oram.bucket_size == 4
        assert cfg.oram.treetop_levels == 3
        assert cfg.oram.subtree_levels == 7

    def test_protection_knobs(self):
        cfg = SystemConfig()
        assert cfg.t_cycles == 50
        assert cfg.secure_share == 0.5

    def test_packet_sizes(self):
        assert PACKET_BYTES == 72
        assert SHORT_PACKET_BYTES == 16


class TestValidation:
    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            SystemConfig(arch="quantum")

    def test_unknown_protection(self):
        with pytest.raises(ValueError):
            SystemConfig(protection="prayers")

    def test_delegation_needs_bob(self):
        with pytest.raises(ValueError):
            SystemConfig(arch="direct", oram_placement="delegated",
                         protection="path")

    def test_split_needs_delegation(self):
        with pytest.raises(ValueError):
            SystemConfig(arch="bob", oram_placement="onchip", split_k=1)

    def test_c_limit_range(self):
        with pytest.raises(ValueError):
            SystemConfig(arch="bob", oram_placement="delegated",
                         c_limit=8, num_ns_apps=7)

    def test_share_range(self):
        with pytest.raises(ValueError):
            SystemConfig(secure_share=1.0)


class TestDerived:
    def test_total_cores(self):
        assert SystemConfig().total_cores == 8
        assert SystemConfig(has_s_app=False).total_cores == 7

    def test_effective_oram_expansion(self):
        cfg = SystemConfig(arch="bob", oram_placement="delegated", split_k=2)
        expanded = cfg.effective_oram()
        assert expanded.leaf_level == 25
        # Capacity quadruples (4 GB -> 16 GB) with k = 2.
        assert expanded.tree_bytes == pytest.approx(
            4 * cfg.oram.tree_bytes, rel=0.01
        )

    def test_effective_oram_identity_without_split(self):
        cfg = SystemConfig()
        assert cfg.effective_oram() is cfg.oram
