"""Secure delegator hardware budget (Section III-E)."""

import pytest

from repro.core.hardware import (
    PAPER_BUDGET_MM2,
    DelegatorBudget,
    size_delegator,
)
from repro.oram.config import OramConfig


class TestSizing:
    def test_flat_position_map_dominates_at_l23(self):
        # The honest reproduction finding: a flat position map for the
        # paper's 4 GB tree is ~100 MB of SRAM -- it cannot fit the
        # 1 mm^2 envelope the paper cites.
        budget = size_delegator(OramConfig())
        assert budget.position_map_bytes > 50 * 2**20
        assert not budget.fits_paper_budget

    def test_recursive_map_fits_budget(self):
        # With the position map recursed into the tree, the SD carries
        # only stash + tree-top + top map and fits comfortably.
        budget = size_delegator(OramConfig(), recursive_position_map=True)
        assert budget.fits_paper_budget
        assert budget.area_mm2 < PAPER_BUDGET_MM2

    def test_small_tree_fits_either_way(self):
        budget = size_delegator(OramConfig().scaled(16))
        assert budget.fits_paper_budget

    def test_treetop_bytes_grow_with_cached_levels(self):
        shallow = size_delegator(OramConfig(treetop_levels=1))
        deep = size_delegator(OramConfig(treetop_levels=6))
        assert deep.treetop_bytes > shallow.treetop_bytes

    def test_area_components_additive(self):
        budget = size_delegator(OramConfig().scaled(10))
        more_aes = size_delegator(OramConfig().scaled(10), aes_cores=10)
        assert more_aes.area_mm2 > budget.area_mm2

    def test_validation(self):
        with pytest.raises(ValueError):
            size_delegator(OramConfig(), stash_entries=0)

    def test_sram_total(self):
        budget = DelegatorBudget(100, 200, 300, aes_cores=1)
        assert budget.sram_bytes == 600
