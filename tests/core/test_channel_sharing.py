"""D-ORAM/c channel masks and the profiling rule."""

import pytest

from repro.core.channel_sharing import (
    SharingDecision,
    recommend_c,
    sharing_targets,
)


class TestSharingTargets:
    def test_c7_lets_everyone_in(self):
        targets = sharing_targets(7, 7)
        assert all(t == (0, 1, 2, 3) for t in targets.values())

    def test_c0_excludes_secure_channel(self):
        targets = sharing_targets(7, 0)
        assert all(t == (1, 2, 3) for t in targets.values())

    def test_partial_c(self):
        targets = sharing_targets(7, 3)
        assert sum(0 in t for t in targets.values()) == 3
        assert all(
            set(t) <= {0, 1, 2, 3} and {1, 2, 3} <= set(t)
            for t in targets.values()
        )

    def test_c_out_of_range(self):
        with pytest.raises(ValueError):
            sharing_targets(7, 8)

    def test_secure_channel_must_exist(self):
        with pytest.raises(ValueError):
            sharing_targets(7, 2, channels=(1, 2, 3))

    def test_needs_a_normal_channel(self):
        with pytest.raises(ValueError):
            sharing_targets(2, 1, channels=(0,))


class TestRecommendC:
    def test_high_ratio_small_c(self):
        decision = recommend_c(1.4)
        assert decision.category == "small"
        assert decision.suggested_c < 4

    def test_low_ratio_large_c(self):
        decision = recommend_c(0.8)
        assert decision.category == "large"
        assert decision.suggested_c >= 4

    def test_boundary_exactly_one_is_large(self):
        # r <= 1: "better to fully utilize all channels".
        assert recommend_c(1.0).category == "large"

    def test_ratio_recorded(self):
        assert recommend_c(1.23).ratio == 1.23

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            recommend_c(0.0)

    def test_small_category_always_suggests_one(self):
        # The loaded secure channel is the bottleneck: strip it down to a
        # single co-located NS-App no matter how many are available.
        for n in (1, 2, 3, 7, 16):
            assert recommend_c(1.01, num_ns_apps=n).suggested_c == 1

    @pytest.mark.parametrize("ratio", [1e-9, 0.5, 1.0, 1.01, 1e9])
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 16])
    def test_suggestion_always_a_usable_app_count(self, ratio, n):
        suggested = recommend_c(ratio, num_ns_apps=n).suggested_c
        assert 1 <= suggested <= n

    def test_large_branch_degenerate_populations(self):
        # n <= 2: nobody worth shedding -- suggest everyone, instead of
        # the n-2 rule of thumb going nonpositive.
        assert recommend_c(0.9, num_ns_apps=1).suggested_c == 1
        assert recommend_c(0.9, num_ns_apps=2).suggested_c == 2
        assert recommend_c(0.9, num_ns_apps=3).suggested_c == 1
        assert recommend_c(0.9, num_ns_apps=7).suggested_c == 5

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            recommend_c(1.2, num_ns_apps=0)
