"""NS-App routers: address striping and backpressure."""

from repro.bob.channel import BobChannel
from repro.core.system import APP_SLICE_LINES, BobRouter, DirectRouter
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.sim.engine import Engine


def direct_setup(targets=((0, 0), (1, 0), (2, 0), (3, 0))):
    eng = Engine()
    channels = {(ch, 0): Channel(eng, f"ch{ch}") for ch in range(4)}
    router = DirectRouter(eng, channels, list(targets), app_id=0, app_slot=0)
    return eng, channels, router


def bob_setup(allowed=(0, 1, 2, 3), secure_subs=4):
    eng = Engine()
    bobs = {}
    for ch in range(4):
        nsub = secure_subs if ch == 0 else 1
        bobs[ch] = BobChannel(
            eng, ch, [Channel(eng, f"ch{ch}.{i}") for i in range(nsub)]
        )
    router = BobRouter(eng, bobs, allowed, app_id=0, app_slot=0)
    return eng, bobs, router


class TestDirectRouter:
    def test_lines_stripe_across_targets(self):
        eng, channels, router = direct_setup()
        for line in range(8):
            router.issue(OpType.READ, line, 0, None)
        eng.run()
        for ch in range(4):
            assert channels[(ch, 0)].stats.counter(
                "reads_serviced").value == 2

    def test_restricted_targets(self):
        eng, channels, router = direct_setup(targets=((1, 0), (2, 0)))
        for line in range(6):
            router.issue(OpType.READ, line, 0, None)
        eng.run()
        assert channels[(0, 0)].stats.counter("reads_serviced").value == 0
        assert channels[(1, 0)].stats.counter("reads_serviced").value == 3

    def test_latency_recorded(self):
        eng, channels, router = direct_setup()
        router.issue(OpType.READ, 0, 0, None)
        router.issue(OpType.WRITE, 1, 0, None)
        eng.run()
        assert router.stats.latency("read_latency").count == 1
        assert router.stats.latency("write_latency").count == 1

    def test_completion_callback(self):
        eng, _, router = direct_setup()
        done = []
        router.issue(OpType.READ, 5, 0, done.append)
        eng.run()
        assert len(done) == 1


class TestBobRouter:
    def test_channel_striping(self):
        eng, bobs, router = bob_setup()
        assert [router._map(line)[0] for line in range(8)] == \
               [0, 1, 2, 3, 0, 1, 2, 3]

    def test_secure_channel_subchannel_striping(self):
        eng, bobs, router = bob_setup()
        # Lines mapping to channel 0 (line % 4 == 0) rotate over its
        # four sub-channels.
        subs = [router._map(line)[1] for line in range(0, 32, 4)]
        assert subs == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_normal_channels_single_subchannel(self):
        eng, bobs, router = bob_setup()
        for line in range(1, 32, 4):  # channel 1
            assert router._map(line)[1] == 0

    def test_exclusion_of_secure_channel(self):
        eng, bobs, router = bob_setup(allowed=(1, 2, 3))
        channels_used = {router._map(line)[0] for line in range(30)}
        assert channels_used == {1, 2, 3}

    def test_base_line_offsets(self):
        eng, bobs, _ = bob_setup()
        router_a = BobRouter(eng, bobs, (0, 1, 2, 3), app_id=0, app_slot=0)
        router_b = BobRouter(eng, bobs, (0, 1, 2, 3), app_id=1, app_slot=1)
        coords_a = router_a._map(0)
        coords_b = router_b._map(0)
        assert coords_a != coords_b
        assert router_b.base_line == APP_SLICE_LINES

    def test_end_to_end_read(self):
        eng, bobs, router = bob_setup()
        done = []
        router.issue(OpType.READ, 3, 0, done.append)
        eng.run()
        assert len(done) == 1
        assert router.stats.latency("read_latency").count == 1
