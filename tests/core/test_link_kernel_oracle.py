"""Link-kernel conformance: the macro-stepping pipeline vs the legacy
frontend/delegator trio, op mix by op mix.

``repro.core.link_kernel`` fuses the fixed-rate pipeline of Section
III-B -- pacer slot issue, down-link transfer, SD intake, up-link
transfer, CPU decrypt hop -- into single synthesized call chains when
each hop is the engine's strictly-next event.  The legacy
:class:`OramFrontend` / :class:`DelegatorBackend` /
:class:`SecureDelegator` trio is kept as the bit-exact oracle.  This
suite replays hypothesis-generated app op mixes through both backends
on twin engines (full stack: real DRAM sub-channels, real BOB serial
links, real Path ORAM controller) and requires *identical*:

* implied DRAM command streams on every sub-channel,
* app read completion times, in order,
* frontend / delegator / BOB / controller / sub-channel StatSets,
* logical event census (``events_dispatched``) and final engine time,
* on traced runs: the golden trace digest and the leakage-audit
  verdict (:func:`repro.obs.leakage.check_fixed_rate`).

Shrunk failures from development are committed as ``@example``
regression seeds.  The fallback modes the kernel must leave untouched
(eager periodic, per-dispatch engine tracing) additionally pin the
*raw* dispatch schedule -- with fusion off, the kernel classes take the
literal legacy code paths and must not even reorder pushes.
"""

import os

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.bob.channel import BobChannel
from repro.bob.link import LinkParams
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.core.frontend import DelegatorBackend, OramFrontend
from repro.core.link_kernel import (
    KernelDelegatorBackend,
    KernelOramFrontend,
    KernelSecureDelegator,
    link_classes,
)
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.obs.export import trace_digest
from repro.obs.leakage import check_fixed_rate
from repro.obs.tracer import DEFAULT_CATEGORIES, Tracer
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.sim.engine import Engine

N_SUBS = 2
LEAF_LEVEL = 5
QUEUE_DEPTH = 8
#: Run this long past the last app arrival: enough for every queued
#: access plus a stretch of pure dummy periods (the quiescent
#: fast-forward regime).
TAIL_TICKS = 25_000


# ---------------------------------------------------------------------------
# Twin-engine replay harness
# ---------------------------------------------------------------------------

def _replay(kernel, ops, *, t_cycles=50, process_ns=5.0, cpu_process_ns=2.0,
            bytes_per_ns=12.8, periodic=None, scheduler=None, tracer_cats=None):
    """Run one app op mix through the legacy or kernel pipeline.

    ``ops`` is a list of ``(gap, line, is_write)`` tuples; arrivals are
    cumulative ticks.  Ops that find the frontend queue full are held
    and retried on ``notify_on_space`` (same deterministic policy for
    both backends).  Returns every observable the oracle must match.
    """
    prior = os.environ.get("DORAM_LINK")
    os.environ["DORAM_LINK"] = "kernel" if kernel else "legacy"
    try:
        tracer = Tracer(tracer_cats) if tracer_cats is not None else None
        eng = Engine(tracer=tracer, scheduler=scheduler, periodic=periodic)
    finally:
        if prior is None:
            del os.environ["DORAM_LINK"]
        else:
            os.environ["DORAM_LINK"] = prior
    frontend_cls, backend_cls, delegator_cls = link_classes(eng)
    assert (frontend_cls is KernelOramFrontend) == kernel

    subs = [Channel(eng, f"ch0.{i}") for i in range(N_SUBS)]
    logs = [sub.start_command_log() for sub in subs]
    bob = BobChannel(
        eng, 0, subs, LinkParams(bytes_per_ns=bytes_per_ns), tracer=tracer
    )
    delegator = delegator_cls(
        eng, bob, {}, process_ns=process_ns, tracer=tracer
    )
    cfg = OramConfig(
        leaf_level=LEAF_LEVEL,
        treetop_levels=2,
        subtree_levels=3,
    )
    layout = OramLayout(cfg, home_targets=[(0, i) for i in range(N_SUBS)])
    controller = OramController(
        eng, cfg, layout, delegator.sink, seed=1, tracer=tracer
    )
    delegator.sequencer = OramSequencer(controller)
    backend = backend_cls(eng, bob, delegator, cpu_process_ns=cpu_process_ns)
    frontend = frontend_cls(
        eng, backend, t_cycles=t_cycles, queue_depth=QUEUE_DEPTH,
        tracer=tracer,
    )

    completions = []
    held = []

    def drain():
        while held and frontend.can_accept(held[0][0]):
            op, line, cb = held.pop(0)
            frontend.issue(op, line, 0, cb)
        if held:
            frontend.notify_on_space(drain)

    def arrive(op, line, cb):
        if held or not frontend.can_accept(op):
            if not held:
                frontend.notify_on_space(drain)
            held.append((op, line, cb))
        else:
            frontend.issue(op, line, 0, cb)

    now = 0
    for idx, (gap, line, is_write) in enumerate(ops):
        now += gap
        op = OpType.WRITE if is_write else OpType.READ
        cb = (lambda t, i=idx: completions.append((i, t)))
        eng.at(now, lambda o=op, l=line, c=cb: arrive(o, l, c))
    frontend.start()
    eng.run(until=now + TAIL_TICKS)
    return {
        "logs": logs,
        "completions": completions,
        "stats": {
            "frontend": frontend.stats.as_dict(),
            "sd": delegator.stats.as_dict(),
            "bob": bob.stats.as_dict(),
            "oram": controller.stats.as_dict(),
            "subs": [sub.stats.as_dict() for sub in subs],
        },
        "events": eng.events_dispatched,
        "raw": eng.raw_events_dispatched,
        "synthesized": eng.events_synthesized,
        "now": eng.now,
        "tracer": tracer,
    }


def assert_oracle_match(ops, **kw):
    legacy = _replay(False, ops, **kw)
    kernel = _replay(True, ops, **kw)
    assert kernel["logs"] == legacy["logs"]
    assert kernel["completions"] == legacy["completions"]
    assert kernel["stats"] == legacy["stats"]
    assert kernel["events"] == legacy["events"]
    assert kernel["now"] == legacy["now"]
    # Fusion may only ever *remove* dispatches, never add them.
    assert kernel["raw"] <= legacy["raw"]
    return legacy, kernel


# ---------------------------------------------------------------------------
# Property: arbitrary mixes, both backends, identical observables
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3000),  # arrival gap (ticks)
        st.integers(min_value=0, max_value=63),    # line address
        st.booleans(),                             # is_write
    ),
    min_size=1,
    max_size=10,
)

_t_cycles = st.sampled_from([10, 50, 130])
_process_ns = st.sampled_from([0.5, 5.0, 12.0])
_bw = st.sampled_from([6.4, 12.8])


class TestLinkKernelOracleProperty:
    @settings(max_examples=25, deadline=None)
    @given(ops=_ops, t_cycles=_t_cycles, process_ns=_process_ns,
           bytes_per_ns=_bw)
    # Regression seeds (shrunk during development):
    # a zero-gap burst overfills the depth-8 queue and exercises the
    # held/notify_on_space path on both twins; the write-then-read pair
    # pins request buffering during the overlapped write phase; the long
    # idle gap crosses many pure-dummy pacer periods (the quiescent
    # fast-forward regime); t=10 makes the pacer slot land inside the
    # link round trip, so the response-anchored rebase is exercised with
    # a zero idle gap.
    @example(ops=[(0, 0, False)], t_cycles=50, process_ns=5.0,
             bytes_per_ns=12.8)
    @example(ops=[(0, i, i % 3 == 0) for i in range(10)], t_cycles=50,
             process_ns=5.0, bytes_per_ns=12.8)
    @example(ops=[(0, 7, True), (1, 7, False)], t_cycles=50,
             process_ns=5.0, bytes_per_ns=12.8)
    @example(ops=[(0, 1, False), (9000, 2, False)], t_cycles=130,
             process_ns=12.0, bytes_per_ns=6.4)
    @example(ops=[(0, 3, False), (0, 4, True), (0, 5, False)], t_cycles=10,
             process_ns=0.5, bytes_per_ns=12.8)
    def test_mix_matches_oracle(self, ops, t_cycles, process_ns,
                                bytes_per_ns):
        assert_oracle_match(ops, t_cycles=t_cycles, process_ns=process_ns,
                            bytes_per_ns=bytes_per_ns)

    @settings(max_examples=10, deadline=None)
    @given(ops=_ops, t_cycles=_t_cycles)
    def test_eager_periodic_matches_oracle_raw(self, ops, t_cycles):
        # Eager periodic mode turns batch_inline_ok off: the kernel
        # classes must take the literal legacy code paths, so even the
        # raw (unfused) dispatch schedule matches.
        legacy, kernel = assert_oracle_match(
            ops, t_cycles=t_cycles, periodic="eager"
        )
        assert kernel["raw"] == legacy["raw"]
        assert kernel["synthesized"] == 0

    @settings(max_examples=10, deadline=None)
    @given(ops=_ops, t_cycles=_t_cycles)
    def test_wheel_backend_matches_oracle(self, ops, t_cycles):
        assert_oracle_match(ops, t_cycles=t_cycles, scheduler="wheel")

    @settings(max_examples=10, deadline=None)
    @given(ops=_ops, t_cycles=_t_cycles, process_ns=_process_ns)
    def test_traced_run_digest_and_leakage_verdict(self, ops, t_cycles,
                                                   process_ns):
        # Component tracing stays on under fusion (only the per-dispatch
        # *engine* category disables it), so traced kernel runs must
        # produce the byte-identical golden digest -- and the leakage
        # audit, which replays Section III-B's fixed-rate argument
        # against the wire trace, must return the same (empty) verdict.
        legacy, kernel = assert_oracle_match(
            ops, t_cycles=t_cycles, process_ns=process_ns,
            tracer_cats=DEFAULT_CATEGORIES,
        )
        levents = legacy["tracer"].events
        kevents = kernel["tracer"].events
        assert trace_digest(kevents) == trace_digest(levents)
        lverdict = check_fixed_rate(levents, t_cycles=t_cycles)
        kverdict = check_fixed_rate(kevents, t_cycles=t_cycles)
        assert kverdict == lverdict
        assert kverdict == []


# ---------------------------------------------------------------------------
# Fallback modes pin the raw schedule, fusion modes must actually fuse
# ---------------------------------------------------------------------------

class TestFusionRegimes:
    def test_fusion_fires_on_a_quiet_pipeline(self):
        # A long pacer period lets every access fully drain before the
        # next slot, so each hop of the next period is strictly next:
        # the kernel must elide dispatches (and account every one as
        # synthesized, keeping the logical census identical).
        ops = [(0, 1, False), (0, 2, True), (0, 3, False)]
        legacy, kernel = assert_oracle_match(ops, t_cycles=200)
        assert kernel["raw"] < legacy["raw"]
        assert kernel["synthesized"] > 0
        assert kernel["raw"] + kernel["synthesized"] == kernel["events"]

    def test_engine_trace_category_forces_per_packet(self):
        # Enabling the per-dispatch engine category turns fusion off;
        # the kernel classes fall back to the legacy closures, so the
        # dispatch *schedule* -- every (time, seq) the engine pops -- is
        # identical, and every non-engine trace event matches byte for
        # byte.  (The engine events' ``fn`` labels differ only by the
        # kernel class names in the qualnames.)
        cats = tuple(DEFAULT_CATEGORIES) + ("engine",)
        ops = [(0, 1, False), (500, 2, True)]
        legacy, kernel = assert_oracle_match(ops, tracer_cats=cats)
        assert kernel["raw"] == legacy["raw"]
        assert kernel["synthesized"] == 0

        def schedule(run):
            return [(e.ts, e.args["seq"]) for e in run["tracer"].events
                    if e.cat == "engine"]

        def component_events(run):
            return [e for e in run["tracer"].events if e.cat != "engine"]

        assert schedule(kernel) == schedule(legacy)
        assert trace_digest(component_events(kernel)) == \
            trace_digest(component_events(legacy))


# ---------------------------------------------------------------------------
# Backend selection plumbing
# ---------------------------------------------------------------------------

class TestBackendSelection:
    def test_link_classes_follow_engine_backend(self, monkeypatch):
        monkeypatch.delenv("DORAM_LINK", raising=False)
        assert link_classes(Engine()) == (
            OramFrontend, DelegatorBackend, SecureDelegator
        )
        monkeypatch.setenv("DORAM_LINK", "legacy")
        assert link_classes(Engine()) == (
            OramFrontend, DelegatorBackend, SecureDelegator
        )
        monkeypatch.setenv("DORAM_LINK", "kernel")
        assert link_classes(Engine()) == (
            KernelOramFrontend, KernelDelegatorBackend, KernelSecureDelegator
        )

    def test_invalid_backend_rejected(self, monkeypatch):
        monkeypatch.setenv("DORAM_LINK", "simd")
        with pytest.raises(ValueError):
            Engine()

    def test_kernel_classes_substitute_for_legacy(self):
        # System wiring and the scenario layer type against the legacy
        # trio; the kernel classes must be drop-in subclasses.
        assert issubclass(KernelOramFrontend, OramFrontend)
        assert issubclass(KernelDelegatorBackend, DelegatorBackend)
        assert issubclass(KernelSecureDelegator, SecureDelegator)
