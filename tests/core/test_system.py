"""System assembly: routers, termination, measurement plumbing.

Small trace lengths keep each simulation in the tens of milliseconds.
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.schemes import run_scheme
from repro.core.system import SimResult, build_and_run

SHORT = 400


class TestBasicRuns:
    def test_solo_run_produces_result(self):
        r = run_scheme("1ns", "li", SHORT)
        assert isinstance(r, SimResult)
        assert len(r.ns_finish) == 1
        assert r.ns_mean_time() > 0
        assert r.ns_read_latency.count > 0

    def test_seven_apps_all_finish(self):
        r = run_scheme("7ns-4ch", "bl", SHORT)
        assert len(r.ns_finish) == 7
        assert all(t > 0 for t in r.ns_finish.values())

    def test_3ch_partition_leaves_channel0_idle(self):
        r = run_scheme("7ns-3ch", "bl", SHORT)
        assert r.channels["ch0"]["reads"] == 0
        assert r.channels["ch1"]["reads"] > 0

    def test_baseline_runs_oram_on_all_channels(self):
        r = run_scheme("baseline", "li", SHORT)
        assert r.s_app["oram_accesses"] > 0
        for ch in ("ch0", "ch1", "ch2", "ch3"):
            # Secure path traffic lands everywhere (interleaved tree).
            assert r.channels[ch]["reads"] > 0

    def test_doram_confines_oram_to_secure_channel(self):
        r = run_scheme("doram", "li", SHORT)
        # Normal channels must see zero secure-class reads.
        for name, row in r.channels.items():
            if not name.startswith("ch0"):
                assert row["secure_read_ns"] == 0.0, name

    def test_doram_split_reaches_normal_channels(self):
        r = run_scheme("doram+1", "li", SHORT)
        assert r.s_app["remote_short_reads"] > 0
        secure_reads_on_normals = sum(
            1 for name, row in r.channels.items()
            if not name.startswith("ch0") and row["secure_read_ns"] > 0
        )
        assert secure_reads_on_normals == 3

    def test_securemem_replicates(self):
        r = run_scheme("securemem", "bl", SHORT)
        assert len(r.ns_finish) == 7

    def test_c_limit_reduces_ns_presence_on_ch0(self):
        open_run = run_scheme("doram", "li", SHORT)
        closed = run_scheme("doram/0", "li", SHORT)
        ns_reads_open = sum(
            row["normal_reads"] for name, row in open_run.channels.items()
            if name.startswith("ch0")
        )
        ns_reads_closed = sum(
            row["normal_reads"] for name, row in closed.channels.items()
            if name.startswith("ch0")
        )
        # With c=0 no NS-App may allocate on channel 0.
        assert ns_reads_closed == 0
        assert ns_reads_open > 0


class TestResultMetrics:
    def test_mean_and_max(self):
        r = run_scheme("7ns-4ch", "bl", SHORT)
        assert r.ns_mean_time() <= r.ns_max_time()

    def test_ns_conversion(self):
        r = run_scheme("1ns", "bl", SHORT)
        assert r.ns_mean_ns() == pytest.approx(r.ns_mean_time() / 16)

    def test_latency_stats_populated(self):
        r = run_scheme("7ns-4ch", "bl", SHORT)
        assert r.read_latency_ns() > 0
        assert r.write_latency_ns() > 0

    def test_no_ns_apps_raises_on_mean(self):
        cfg = SystemConfig(num_ns_apps=0, has_s_app=True,
                           benchmark="li", trace_length=SHORT)
        result = build_and_run(cfg)
        with pytest.raises(ValueError):
            result.ns_mean_time()

    def test_empty_config_rejected(self):
        with pytest.raises(ValueError):
            build_and_run(SystemConfig(num_ns_apps=0, has_s_app=False))


class TestDeterminism:
    def test_identical_configs_identical_results(self):
        a = run_scheme("doram", "li", SHORT)
        b = run_scheme("doram", "li", SHORT)
        assert a.ns_finish == b.ns_finish
        assert a.events == b.events

    def test_seed_changes_results(self):
        a = run_scheme("doram", "li", SHORT, seed=1)
        b = run_scheme("doram", "li", SHORT, seed=2)
        assert a.ns_finish != b.ns_finish
