"""Secure delegator: sequencing, buffering, remote messaging."""

from typing import List, Optional

import pytest

from repro.bob.channel import BobChannel
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.sim.engine import Engine


def build_doram(split_k=0, leaf_level=9, merge_short_reads=False):
    """A secure BOB channel with SD + three normal BOB channels."""
    eng = Engine()
    secure_subs = [Channel(eng, f"ch0.{i}") for i in range(4)]
    secure_bob = BobChannel(eng, 0, secure_subs)
    normal_bobs = {
        ch: BobChannel(eng, ch, [Channel(eng, f"ch{ch}.0")])
        for ch in (1, 2, 3)
    }
    sd = SecureDelegator(eng, secure_bob, normal_bobs, process_ns=5.0,
                         merge_short_reads=merge_short_reads)
    cfg = OramConfig(leaf_level=leaf_level, treetop_levels=3,
                     subtree_levels=3)
    layout = OramLayout(
        cfg,
        home_targets=[(0, i) for i in range(4)],
        home_levels=cfg.num_levels - split_k,
        remote_targets=[(1, 0), (2, 0), (3, 0)] if split_k else (),
    )
    controller = OramController(eng, cfg, layout, sd.sink, seed=1)
    sd.sequencer = OramSequencer(controller)
    return eng, sd, controller, secure_bob, normal_bobs


class TestSequencer:
    def test_response_fires_after_read_phase(self):
        eng, sd, ctrl, *_ = build_doram()
        responses: List[int] = []
        sd.receive_request(0, responses.append)
        eng.run()
        assert len(responses) == 1
        assert ctrl.stats.latency("read_phase").count == 1

    def test_write_phase_follows_response(self):
        eng, sd, ctrl, *_ = build_doram()
        sd.receive_request(0, lambda t: None)
        eng.run()
        assert ctrl.stats.latency("write_phase").count == 1

    def test_request_during_write_phase_is_buffered(self):
        eng, sd, ctrl, *_ = build_doram()
        order: List[str] = []

        def first_response(t: int) -> None:
            order.append("resp1")
            # Inject the second request immediately: the write phase of
            # access 1 is still ongoing, so it must buffer.
            sd.receive_request(1, lambda t2: order.append("resp2"))

        sd.receive_request(0, first_response)
        eng.run()
        assert order == ["resp1", "resp2"]
        assert ctrl.stats.counter("real_accesses").value == 2
        assert ctrl.stats.latency("write_phase").count == 2

    def test_unwired_delegator_rejects(self):
        eng = Engine()
        subs = [Channel(eng, "s0")]
        bob = BobChannel(eng, 0, subs)
        sd = SecureDelegator(eng, bob, {})
        with pytest.raises(RuntimeError, match="not wired"):
            sd.receive_request(0, lambda t: None)

    def test_dummy_requests_processed(self):
        eng, sd, ctrl, *_ = build_doram()
        sd.receive_request(None, lambda t: None)
        eng.run()
        assert ctrl.stats.counter("dummy_accesses").value == 1


class TestLocalTraffic:
    def test_blocks_stripe_over_four_subchannels(self):
        eng, sd, ctrl, secure_bob, _ = build_doram()
        sd.receive_request(0, lambda t: None)
        eng.run()
        counts = [
            sub.stats.counter("reads_serviced").value
            for sub in secure_bob.subchannels
        ]
        # 7 fetched levels x 4 blocks: one block per bucket per sub-channel.
        assert counts == [7, 7, 7, 7]

    def test_no_remote_traffic_without_split(self):
        eng, sd, ctrl, _, normal_bobs = build_doram(split_k=0)
        sd.receive_request(0, lambda t: None)
        eng.run()
        assert sd.stats.counter("remote_short_reads").value == 0
        for bob in normal_bobs.values():
            assert bob.subchannels[0].queued == 0


class TestRemoteTraffic:
    def test_split_generates_table1_messages(self):
        eng, sd, ctrl, secure_bob, normal_bobs = build_doram(split_k=1)
        sd.receive_request(0, lambda t: None)
        eng.run()
        # k=1: 4 relocated blocks -> 4 short reads + 4 writes via SD.
        assert sd.stats.counter("remote_short_reads").value == 4
        assert sd.stats.counter("remote_writes").value == 4

    def test_remote_blocks_hit_normal_channels(self):
        eng, sd, ctrl, _, normal_bobs = build_doram(split_k=1)
        sd.receive_request(0, lambda t: None)
        eng.run()
        serviced = sum(
            bob.subchannels[0].stats.counter("reads_serviced").value
            for bob in normal_bobs.values()
        )
        assert serviced == 4

    def test_remote_messages_cross_both_links(self):
        eng, sd, ctrl, secure_bob, normal_bobs = build_doram(split_k=1)
        sd.receive_request(0, lambda t: None)
        eng.run()
        # Secure channel up: 4 short reads + 4 write packets + 1 response
        # path is via backend (not used here); down: 4 data responses.
        assert secure_bob.stats.counter("raw_up").value == 8
        assert secure_bob.stats.counter("raw_down").value == 4

    def test_remote_read_latency_exceeds_local(self):
        eng_l, sd_l, ctrl_l, *_ = build_doram(split_k=0)
        sd_l.receive_request(0, lambda t: None)
        eng_l.run()
        local_read = ctrl_l.stats.latency("read_phase").mean

        eng_r, sd_r, ctrl_r, *_ = build_doram(split_k=1)
        sd_r.receive_request(0, lambda t: None)
        eng_r.run()
        remote_read = ctrl_r.stats.latency("read_phase").mean
        # Four extra link round trips stretch the read phase.
        assert remote_read > local_read

    def test_per_channel_rotation_counts(self):
        eng, sd, ctrl, _, _ = build_doram(split_k=2)
        sd.receive_request(0, lambda t: None)
        eng.run()
        total_reads = sum(
            sd.stats.counter(f"ch{ch}_reads").value for ch in (1, 2, 3)
        )
        assert total_reads == 8  # 2 nodes x 4 blocks
        # Each channel receives at least its fixed-slot share (k = 2).
        for ch in (1, 2, 3):
            assert sd.stats.counter(f"ch{ch}_reads").value >= 2


class TestShortReadMerging:
    """Footnote-1 future work: coalesced split-tree read packets."""

    def test_merged_packet_count_drops(self):
        _eng, sd, ctrl, *_ = self._run(merge=True)
        # k=2: 8 relocated blocks over 3 channels -> at most 3 merged
        # packets per access (one per channel) instead of 8.
        assert sd.stats.counter("remote_short_reads").value <= 3
        assert sd.stats.counter("remote_read_blocks").value == 8

    def test_unmerged_sends_one_packet_per_block(self):
        _eng, sd, ctrl, *_ = self._run(merge=False)
        assert sd.stats.counter("remote_short_reads").value == 8
        assert sd.stats.counter("remote_read_blocks").value == 8

    def test_merging_preserves_dram_traffic(self):
        for merge in (False, True):
            _eng, sd, ctrl, _, normal_bobs = self._run(merge=merge)
            serviced = sum(
                bob.subchannels[0].stats.counter("reads_serviced").value
                for bob in normal_bobs.values()
            )
            assert serviced == 8, f"merge={merge}"

    def test_merging_completes_read_phase(self):
        _eng, _sd, ctrl, *_ = self._run(merge=True)
        assert ctrl.stats.latency("read_phase").count == 1
        assert ctrl.stats.latency("write_phase").count == 1

    @staticmethod
    def _run(merge):
        parts = build_doram(split_k=2, merge_short_reads=merge)
        eng, sd = parts[0], parts[1]
        sd.receive_request(0, lambda t: None)
        eng.run()
        return parts
