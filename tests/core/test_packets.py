"""Secure packet encoding (Fig. 6 format)."""

import pytest

from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES
from repro.core.packets import PacketType, SecurePacket, ShortReadPacket
from repro.crypto.otp import OtpEngine


class TestSecurePacket:
    def test_wire_size_is_72_bytes(self):
        assert len(SecurePacket.read_request(0x1234).encode()) == PACKET_BYTES

    def test_round_trip(self):
        pkt = SecurePacket.write_request(0xDEAD_BEEF, b"\x5A" * 64)
        assert SecurePacket.decode(pkt.encode()) == pkt

    def test_type_bit_packed_in_header(self):
        read = SecurePacket.read_request(0x77).encode()
        write = SecurePacket.write_request(0x77, bytes(64)).encode()
        # Same address, different type -> differ only in the top bit.
        assert read[1:] == write[1:]
        assert read[0] ^ write[0] == 0x80

    def test_read_carries_dummy_data(self):
        # III-B (1): reads always attach a 64 B data field so request
        # types are indistinguishable by length.
        pkt = SecurePacket.read_request(5)
        assert pkt.data == bytes(64)
        assert len(pkt.encode()) == len(
            SecurePacket.write_request(5, b"x" * 64).encode()
        )

    def test_address_width(self):
        SecurePacket.read_request((1 << 63) - 1)  # max ok
        with pytest.raises(ValueError):
            SecurePacket(PacketType.READ, 1 << 63)

    def test_data_size_checked(self):
        with pytest.raises(ValueError):
            SecurePacket(PacketType.WRITE, 0, b"short")

    def test_decode_size_checked(self):
        with pytest.raises(ValueError):
            SecurePacket.decode(b"x" * 10)

    def test_seal_open_through_otp_engine(self):
        cpu = OtpEngine(b"K" * 16, 3)
        sd = OtpEngine(b"K" * 16, 3)
        pkt = SecurePacket.write_request(0xABC, b"\x10" * 64)
        sealed = cpu.seal(pkt.encode())
        assert SecurePacket.decode(sd.open(sealed)) == pkt


class TestShortReadPacket:
    def test_wire_size(self):
        assert len(ShortReadPacket(0x123).encode()) == SHORT_PACKET_BYTES

    def test_round_trip(self):
        pkt = ShortReadPacket(0xFEED)
        assert ShortReadPacket.decode(pkt.encode()) == pkt

    def test_smaller_than_full_packet(self):
        # The split-tree read omits the data field (III-C).
        assert SHORT_PACKET_BYTES < PACKET_BYTES

    def test_decode_size_checked(self):
        with pytest.raises(ValueError):
            ShortReadPacket.decode(b"x" * 3)
