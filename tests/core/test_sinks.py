"""DirectChannelSink (on-chip baseline ORAM traffic routing)."""

from repro.core.sinks import DirectChannelSink
from repro.dram.channel import Channel
from repro.dram.commands import OpType, TrafficClass
from repro.dram.timing import ChannelParams
from repro.oram.layout import BlockPlacement
from repro.sim.engine import Engine


def make_sink(depth=64):
    eng = Engine()
    params = ChannelParams(read_queue_depth=depth, write_queue_depth=depth,
                           write_drain_hi=min(40, depth),
                           write_drain_lo=min(16, depth - 1))
    channels = {
        (ch, 0): Channel(eng, f"ch{ch}", params=params) for ch in range(4)
    }
    return eng, channels, DirectChannelSink(channels, app_id=9)


def placement(channel=0, bank=0, row=0):
    return BlockPlacement(bucket=8, slot=0, channel=channel, subchannel=0,
                          bank=bank, row=row, col=0, remote=False)


class TestDirectChannelSink:
    def test_issue_routes_to_placement_channel(self):
        eng, channels, sink = make_sink()
        done = []
        assert sink.try_issue(placement(channel=2), OpType.READ, done.append)
        eng.run()
        assert channels[(2, 0)].stats.counter("reads_serviced").value == 1
        assert len(done) == 1

    def test_traffic_tagged_secure(self):
        eng, channels, sink = make_sink()
        sink.try_issue(placement(), OpType.READ, lambda t: None)
        eng.run()
        assert channels[(0, 0)].stats.latency(
            "secure_read_latency").count == 1

    def test_full_queue_returns_false(self):
        eng, channels, sink = make_sink(depth=2)
        assert sink.try_issue(placement(row=0), OpType.READ, lambda t: None)
        assert sink.try_issue(placement(row=1), OpType.READ, lambda t: None)
        assert not sink.try_issue(placement(row=2), OpType.READ,
                                  lambda t: None)

    def test_notify_on_space_fires_once(self):
        eng, channels, sink = make_sink(depth=2)
        sink.try_issue(placement(row=0), OpType.READ, lambda t: None)
        sink.try_issue(placement(row=1), OpType.READ, lambda t: None)
        woken = []
        sink.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        assert len(woken) == 1  # the once-guard deduplicates channels
