"""Multiple S-Apps sharing one secure delegator (Section III-C scenario)."""

import pytest

from repro.core.config import SystemConfig
from repro.core.schemes import run_scheme

TRACE = 500


class TestConfig:
    def test_multi_s_requires_delegation(self):
        with pytest.raises(ValueError):
            SystemConfig(arch="direct", protection="path",
                         oram_placement="onchip", num_s_apps=2)
        with pytest.raises(ValueError):
            SystemConfig(protection="securemem", arch="direct",
                         oram_placement="onchip", num_s_apps=2)

    def test_positive_count(self):
        with pytest.raises(ValueError):
            SystemConfig(num_s_apps=0)

    def test_total_cores(self):
        cfg = SystemConfig(num_s_apps=2, num_ns_apps=2)
        assert cfg.total_cores == 4
        assert cfg.effective_s_apps == 2


class TestTwoSApps:
    @pytest.fixture(scope="class")
    def pair(self):
        one = run_scheme("doram", "li", TRACE, num_ns_apps=2)
        two = run_scheme("doram", "li", TRACE, num_ns_apps=2, num_s_apps=2)
        return one, two

    def test_both_run_to_completion(self, pair):
        _one, two = pair
        assert len(two.ns_finish) == 2
        assert two.s_app["oram_accesses"] > 0

    def test_sd_serialization_slows_each_s_app(self, pair):
        one, two = pair
        # Two trees share one engine: per-access response latency grows
        # (close to doubling under full dummy load).
        assert (two.s_app["oram_response_ns"]
                > 1.4 * one.s_app["oram_response_ns"])

    def test_oram_traffic_stays_on_secure_channel(self, pair):
        _one, two = pair
        for name, row in two.channels.items():
            if not name.startswith("ch0"):
                assert row["secure_reads"] == 0, name

    def test_trees_do_not_collide(self, pair):
        # Distinct base regions: both trees' accesses succeed and the
        # per-subchannel secure read totals are consistent with two
        # interleaved engines (84 blocks per access overall).
        _one, two = pair
        secure_reads = sum(
            row["secure_reads"] for name, row in two.channels.items()
            if name.startswith("ch0")
        )
        accesses = two.s_app["oram_accesses"]
        assert secure_reads >= (accesses - 3) * 84
        assert secure_reads <= accesses * 84

    def test_ns_apps_pay_little_extra(self, pair):
        one, two = pair
        # The second S-App adds load but the fixed-rate pacing bounds it:
        # NS time should grow mildly, not multiplicatively.
        assert two.ns_mean_time() < 1.5 * one.ns_mean_time()
