"""ORAM frontend: fixed-rate emission, dummies, queue semantics."""

from typing import List, Optional

import pytest

from repro.core.frontend import OramBackend, OramFrontend
from repro.dram.commands import OpType
from repro.sim.engine import Engine, cpu_cycles


class StubBackend(OramBackend):
    """Backend answering every request after a fixed delay."""

    def __init__(self, engine: Engine, latency: int = 1000,
                 user_blocks: int = 4096) -> None:
        self.engine = engine
        self.latency = latency
        self._user_blocks = user_blocks
        self.submissions: List[Optional[int]] = []

    @property
    def num_user_blocks(self) -> int:
        return self._user_blocks

    def submit(self, block_id, on_response) -> None:
        self.submissions.append(block_id)
        self.engine.after(self.latency, lambda: on_response(self.engine.now))


def make_frontend(latency=1000, t_cycles=50, queue_depth=8):
    eng = Engine()
    backend = StubBackend(eng, latency)
    fe = OramFrontend(eng, backend, t_cycles=t_cycles,
                      queue_depth=queue_depth)
    fe.start()
    return eng, backend, fe


class TestFixedRateEmission:
    def test_dummies_flow_without_app_requests(self):
        eng, backend, fe = make_frontend(latency=1000, t_cycles=50)
        eng.run(until=10_000)
        # Period = latency + t = 1000 + 250 ticks.
        assert len(backend.submissions) >= 7
        assert all(b is None for b in backend.submissions)

    def test_emission_period_is_response_plus_t(self):
        eng, backend, fe = make_frontend(latency=1000, t_cycles=50)
        times: List[int] = []
        original = backend.submit

        def tracking_submit(block_id, on_response):
            times.append(eng.now)
            original(block_id, on_response)

        backend.submit = tracking_submit
        eng.run(until=6_000)
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert gaps == {1000 + cpu_cycles(50)}

    def test_real_requests_take_priority_over_dummies(self):
        eng, backend, fe = make_frontend()
        fe.issue(OpType.READ, 42, 7, lambda t: None)
        eng.run(until=3_000)
        reals = [b for b in backend.submissions if b is not None]
        assert reals == [42]

    def test_real_fraction_tracked(self):
        eng, backend, fe = make_frontend()
        fe.issue(OpType.READ, 1, 7, lambda t: None)
        eng.run(until=10_000)
        assert 0.0 < fe.pacer.real_fraction() < 1.0


class TestAppInterface:
    def test_read_completion_delivered(self):
        eng, backend, fe = make_frontend(latency=500)
        done: List[int] = []
        fe.issue(OpType.READ, 5, 7, done.append)
        eng.run(until=2_000)
        assert len(done) == 1

    def test_write_does_not_call_back(self):
        eng, backend, fe = make_frontend(latency=500)
        done: List[int] = []
        fe.issue(OpType.WRITE, 5, 7, done.append)
        eng.run(until=3_000)
        assert done == []  # stores retire at issue; no data to return

    def test_line_address_maps_into_user_blocks(self):
        eng, backend, fe = make_frontend()
        fe.issue(OpType.READ, backend.num_user_blocks + 3, 7, lambda t: None)
        eng.run(until=2_000)
        reals = [b for b in backend.submissions if b is not None]
        assert reals == [3]

    def test_queue_depth_enforced(self):
        eng, backend, fe = make_frontend(queue_depth=2)
        fe.issue(OpType.READ, 1, 7, None)
        fe.issue(OpType.READ, 2, 7, None)
        assert not fe.can_accept(OpType.READ)
        with pytest.raises(RuntimeError):
            fe.issue(OpType.READ, 3, 7, None)

    def test_space_waiters_fire_on_dequeue(self):
        eng, backend, fe = make_frontend(queue_depth=1, latency=100)
        fe.issue(OpType.READ, 1, 7, None)
        woken: List[int] = []
        fe.notify_on_space(lambda: woken.append(eng.now))
        eng.run(until=5_000)
        assert woken

    def test_requests_served_fifo(self):
        eng, backend, fe = make_frontend(latency=100, t_cycles=10)
        for addr in (10, 11, 12):
            fe.issue(OpType.READ, addr, 7, None)
        eng.run(until=5_000)
        reals = [b for b in backend.submissions if b is not None]
        assert reals == [10, 11, 12]
