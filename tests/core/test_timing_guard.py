"""Fixed-rate request pacing (t = 50 cycles)."""

import pytest

from repro.core.timing_guard import RequestPacer
from repro.sim.engine import cpu_cycles


class TestRequestPacer:
    def test_default_is_50_cycles(self):
        assert RequestPacer().t_ticks == cpu_cycles(50)

    def test_next_allowed_after_response(self):
        pacer = RequestPacer(t_cycles=50)
        assert pacer.response_received(1000) == 1000 + cpu_cycles(50)
        assert pacer.next_allowed == 1000 + cpu_cycles(50)

    def test_gap_independent_of_content(self):
        # The emission schedule depends only on response times -- the
        # timing-channel property.
        a, b = RequestPacer(), RequestPacer()
        a.emitted(real=True)
        b.emitted(real=False)
        assert a.response_received(500) == b.response_received(500)

    def test_real_fraction(self):
        pacer = RequestPacer()
        for real in (True, True, False, True):
            pacer.emitted(real)
        assert pacer.real_fraction() == 0.75

    def test_real_fraction_empty(self):
        assert RequestPacer().real_fraction() == 0.0

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            RequestPacer(t_cycles=-1)

    def test_zero_t_allowed(self):
        # t = 0 is a valid ablation point (no inter-request gap).
        assert RequestPacer(t_cycles=0).response_received(100) == 100
