"""Scheme name parsing and configuration shapes."""

import pytest

from repro.core.schemes import SCHEMES, make_config


class TestSchemeParsing:
    def test_canonical_names_parse(self):
        for name in SCHEMES:
            make_config(name)

    def test_1ns(self):
        cfg = make_config("1ns")
        assert cfg.num_ns_apps == 1
        assert not cfg.has_s_app
        assert cfg.arch == "direct"

    def test_7ns_3ch_excludes_channel0(self):
        cfg = make_config("7ns-3ch")
        assert cfg.ns_channels == (1, 2, 3)
        assert not cfg.has_s_app

    def test_baseline_is_onchip_path_oram(self):
        cfg = make_config("baseline")
        assert cfg.protection == "path"
        assert cfg.oram_placement == "onchip"
        assert cfg.arch == "direct"
        assert cfg.has_s_app

    def test_securemem(self):
        assert make_config("securemem").protection == "securemem"

    def test_doram(self):
        cfg = make_config("doram")
        assert cfg.arch == "bob"
        assert cfg.oram_placement == "delegated"
        assert cfg.split_k == 0
        assert cfg.c_limit is None

    def test_doram_plus_k(self):
        assert make_config("doram+2").split_k == 2

    def test_doram_slash_c(self):
        assert make_config("doram/3").c_limit == 3

    def test_doram_combined(self):
        cfg = make_config("doram+1/4")
        assert cfg.split_k == 1
        assert cfg.c_limit == 4

    def test_case_insensitive(self):
        assert make_config("DORAM+1/4").split_k == 1

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_config("moram")

    def test_overrides_pass_through(self):
        cfg = make_config("doram", benchmark="mu", trace_length=123,
                          t_cycles=99)
        assert cfg.benchmark == "mu"
        assert cfg.trace_length == 123
        assert cfg.t_cycles == 99
