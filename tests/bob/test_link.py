"""Serial link: serialization, FIFO ordering, latency."""

import pytest

from repro.bob.link import LinkParams, SerialLink
from repro.sim.engine import Engine, ns


class TestLinkParams:
    def test_serialization_of_72b_packet(self):
        # 72 B at 12.8 B/ns = 5.625 ns = 90 ticks.
        assert LinkParams().serialization(72) == 90

    def test_serialization_of_short_packet(self):
        assert LinkParams().serialization(16) == ns(1.25)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            LinkParams().serialization(0)

    def test_default_one_way_latency(self):
        # Half the paper's 15 ns round-trip figure.
        assert LinkParams().latency == ns(7.5)


class TestSerialLink:
    def test_delivery_time(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        arrivals = []
        t = link.send(72, arrivals.append)
        eng.run()
        assert arrivals == [t]
        assert t == LinkParams().serialization(72) + LinkParams().latency

    def test_fifo_serialization(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        arrivals = []
        link.send(72, lambda t: arrivals.append(("a", t)))
        link.send(72, lambda t: arrivals.append(("b", t)))
        eng.run()
        assert arrivals[0][0] == "a"
        # Second packet waits for the first to clock out.
        assert arrivals[1][1] - arrivals[0][1] == LinkParams().serialization(72)

    def test_idle_link_resets_backlog(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        link.send(72, lambda t: None)
        eng.run()
        assert link.queue_delay() == 0

    def test_backlog_visible(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        for _ in range(10):
            link.send(72, lambda t: None)
        assert link.queue_delay() == 10 * LinkParams().serialization(72)

    def test_stats(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        link.send(72, lambda t: None)
        link.send(16, lambda t: None)
        eng.run()
        assert link.stats.counter("packets").value == 2
        assert link.stats.counter("bytes").value == 88

    def test_utilization(self):
        eng = Engine()
        link = SerialLink(eng, "l")
        link.send(72, lambda t: None)
        eng.run()
        assert 0.0 < link.utilization() <= 1.0
