"""BOB channel: packetized requests, windows, sub-channel dispatch."""

import pytest

from repro.bob.channel import BobChannel
from repro.bob.link import LinkParams
from repro.dram.channel import Channel
from repro.dram.commands import OpType
from repro.dram.timing import ChannelParams, DDR3_1600 as T
from repro.sim.engine import Engine, ns


def make_bob(nsub=1, window=64, **chan_kw):
    eng = Engine()
    subs = [Channel(eng, f"sub{i}", **chan_kw) for i in range(nsub)]
    bob = BobChannel(eng, 0, subs, window=window)
    return eng, bob, subs


class TestNormalTraffic:
    def test_read_round_trip_latency(self):
        eng, bob, _ = make_bob()
        done = []
        bob.submit(OpType.READ, 0, bank=0, row=0, col=0, app_id=0,
                   on_complete=done.append)
        eng.run()
        # down link (16 B) + DRAM closed-row access + up link (72 B).
        link = LinkParams()
        expected = (
            link.serialization(16) + link.latency
            + T.tRCD + T.tCL + T.tBURST
            + link.serialization(72) + link.latency
        )
        assert done == [expected]

    def test_bob_adds_15ns_over_direct(self):
        # The paper models 15 ns of link + BoB control overhead; an idle
        # round trip pays exactly 2 x 7.5 ns latency + serialization.
        eng, bob, _ = make_bob()
        done = []
        bob.submit(OpType.READ, 0, 0, 0, 0, 0, on_complete=done.append)
        eng.run()
        direct = T.tRCD + T.tCL + T.tBURST
        overhead_ns = (done[0] - direct) / 16
        assert overhead_ns == pytest.approx(15.0 + (16 + 72) / 12.8, abs=0.1)

    def test_write_has_no_response_packet(self):
        eng, bob, _ = make_bob()
        done = []
        bob.submit(OpType.WRITE, 0, 0, 0, 0, 0, on_complete=done.append)
        eng.run()
        assert bob.stats.counter("packets_up").value == 0
        assert done  # completes at DRAM write

    def test_window_backpressure(self):
        eng, bob, _ = make_bob(window=2)
        bob.submit(OpType.READ, 0, 0, 0, 0, 0)
        bob.submit(OpType.READ, 0, 0, 0, 1, 0)
        assert not bob.can_accept(OpType.READ)
        with pytest.raises(RuntimeError):
            bob.submit(OpType.READ, 0, 0, 0, 2, 0)
        woken = []
        bob.notify_on_space(lambda: woken.append(eng.now))
        eng.run()
        assert woken
        assert bob.can_accept(OpType.READ)

    def test_multi_subchannel_dispatch(self):
        eng, bob, subs = make_bob(nsub=4)
        for i in range(4):
            bob.submit(OpType.READ, i, 0, 0, 0, 0)
        eng.run()
        for sub in subs:
            assert sub.stats.counter("reads_serviced").value == 1

    def test_full_subchannel_holds_and_drains(self):
        params = ChannelParams(read_queue_depth=2, write_queue_depth=2,
                               write_drain_hi=2, write_drain_lo=1)
        eng, bob, subs = make_bob(params=params, window=64)
        done = []
        for i in range(8):
            bob.submit(OpType.READ, 0, 0, i, 0, 0,
                       on_complete=lambda t: done.append(t))
        eng.run()
        assert len(done) == 8  # held packets eventually serviced

    def test_requires_subchannel(self):
        with pytest.raises(ValueError):
            BobChannel(Engine(), 0, [])


class TestRawPipes:
    def test_send_down_and_up(self):
        eng, bob, _ = make_bob()
        seen = []
        bob.send_down(72, lambda t: seen.append(("down", t)))
        bob.send_up(16, lambda t: seen.append(("up", t)))
        eng.run()
        # The directions are independent links: the shorter up packet
        # lands first even though it was queued second.
        assert sorted(s[0] for s in seen) == ["down", "up"]
        assert bob.stats.counter("raw_down").value == 1
        assert bob.stats.counter("raw_up").value == 1

    def test_raw_and_normal_share_link_bandwidth(self):
        eng, bob, _ = make_bob()
        order = []
        bob.send_down(72, lambda t: order.append(("raw", t)))
        bob.submit(OpType.READ, 0, 0, 0, 0, 0)
        eng.run()
        # The read's 16 B packet serialized after the raw 72 B one.
        raw_time = order[0][1]
        assert raw_time == LinkParams().serialization(72) + LinkParams().latency
