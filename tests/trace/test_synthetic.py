"""Synthetic trace generator: calibration and reproducibility."""

import pytest

from repro.trace.synthetic import SyntheticTrace, TraceParams, with_copy_seed


class TestValidation:
    def test_bad_mpki(self):
        with pytest.raises(ValueError):
            TraceParams(mpki=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            TraceParams(mpki=10, write_fraction=1.5)

    def test_tiny_working_set(self):
        with pytest.raises(ValueError):
            TraceParams(mpki=10, working_set_lines=1)

    def test_bad_length(self):
        with pytest.raises(ValueError):
            SyntheticTrace(TraceParams(mpki=10), 0)


class TestCalibration:
    @pytest.mark.parametrize("mpki", [4.2, 12.0, 26.8])
    def test_mpki_within_ten_percent(self, mpki):
        trace = SyntheticTrace(TraceParams(mpki=mpki, seed=3), 20_000)
        measured = trace.measured_mpki()
        assert measured == pytest.approx(mpki, rel=0.10)

    def test_write_fraction(self):
        params = TraceParams(mpki=10, write_fraction=0.3, seed=5)
        records = list(SyntheticTrace(params, 10_000))
        frac = sum(r.is_write for r in records) / len(records)
        assert frac == pytest.approx(0.3, abs=0.02)

    def test_stream_probability_governs_sequentiality(self):
        seq = TraceParams(mpki=10, stream_prob=0.95, seed=7)
        rnd = TraceParams(mpki=10, stream_prob=0.05, seed=7)
        def sequential_fraction(params):
            recs = list(SyntheticTrace(params, 5_000))
            seq_count = sum(
                1 for a, b in zip(recs, recs[1:])
                if b.line_addr == a.line_addr + 1
            )
            return seq_count / len(recs)
        assert sequential_fraction(seq) > 0.8
        assert sequential_fraction(rnd) < 0.2

    def test_addresses_within_working_set(self):
        params = TraceParams(mpki=10, working_set_lines=1000, seed=2)
        assert all(
            r.line_addr < 1000 for r in SyntheticTrace(params, 2_000)
        )


class TestReproducibility:
    def test_same_seed_same_stream(self):
        params = TraceParams(mpki=8, seed=11)
        a = list(SyntheticTrace(params, 500))
        b = list(SyntheticTrace(params, 500))
        assert a == b

    def test_restartable_iterator(self):
        trace = SyntheticTrace(TraceParams(mpki=8, seed=11), 100)
        assert list(trace) == list(trace)

    def test_different_seeds_differ(self):
        a = list(SyntheticTrace(TraceParams(mpki=8, seed=1), 200))
        b = list(SyntheticTrace(TraceParams(mpki=8, seed=2), 200))
        assert a != b

    def test_copy_seed_changes_only_seed(self):
        base = TraceParams(mpki=8, seed=1)
        copy = with_copy_seed(base, 3)
        assert copy.seed != base.seed
        assert copy.mpki == base.mpki
        assert copy.stream_prob == base.stream_prob

    def test_copies_distinct(self):
        base = TraceParams(mpki=8, seed=1)
        streams = [
            list(SyntheticTrace(with_copy_seed(base, i), 100))
            for i in range(3)
        ]
        assert streams[0] != streams[1] != streams[2]
