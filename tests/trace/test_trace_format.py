"""Trace record format and (de)serialization."""

import io

import pytest

from repro.trace.trace_format import TraceRecord, read_trace, write_trace


class TestTraceRecord:
    def test_instruction_count(self):
        assert TraceRecord(9, False, 0).instructions == 10

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, False, 0)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            TraceRecord(0, False, -1)

    def test_frozen(self):
        rec = TraceRecord(1, True, 2)
        with pytest.raises(AttributeError):
            rec.gap = 5


class TestRoundTrip:
    def test_write_then_read(self):
        records = [
            TraceRecord(10, False, 0xABC),
            TraceRecord(0, True, 0),
            TraceRecord(250, False, 0xDEADBEEF),
        ]
        buf = io.StringIO()
        assert write_trace(records, buf) == 3
        buf.seek(0)
        assert list(read_trace(buf)) == records

    def test_blank_lines_and_comments_skipped(self):
        buf = io.StringIO("# header\n\n5 R a\n\n")
        assert list(read_trace(buf)) == [TraceRecord(5, False, 10)]

    def test_malformed_line_raises_with_line_number(self):
        buf = io.StringIO("5 X a\n")
        with pytest.raises(ValueError, match="line 1"):
            list(read_trace(buf))

    def test_wrong_field_count_raises(self):
        buf = io.StringIO("5 R\n")
        with pytest.raises(ValueError):
            list(read_trace(buf))
