"""Table III benchmark catalog."""

import pytest

from repro.trace.benchmarks import (
    BENCHMARKS,
    benchmark_by_code,
    benchmark_trace,
)

#: The paper's Table III MPKI values, verbatim.
PAPER_MPKI = {
    "black": 4.2, "face": 26.8, "ferret": 8.0, "fluid": 17.5,
    "stream": 12.9, "swapt": 10.9,
    "comm1": 7.3, "comm2": 12.6, "comm3": 4.2, "comm4": 3.7, "comm5": 4.5,
    "leslie": 23.1, "libq": 12.0,
    "mummer": 24.0, "tigr": 6.7,
}


class TestCatalog:
    def test_fifteen_benchmarks(self):
        assert len(BENCHMARKS) == 15

    def test_mpki_matches_table3(self):
        for spec in BENCHMARKS:
            assert spec.mpki == PAPER_MPKI[spec.name], spec.name

    def test_suites_match_table3(self):
        suites = {}
        for spec in BENCHMARKS:
            suites.setdefault(spec.suite, []).append(spec.name)
        assert len(suites["PARSEC"]) == 6
        assert len(suites["COMM"]) == 5
        assert len(suites["SPEC"]) == 2
        assert len(suites["BIOBENCH"]) == 2

    def test_codes_unique(self):
        codes = [b.code for b in BENCHMARKS]
        assert len(set(codes)) == len(codes)

    def test_lookup_by_code_and_name(self):
        assert benchmark_by_code("li").name == "libq"
        assert benchmark_by_code("libq").code == "li"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            benchmark_by_code("nope")


class TestTraceGeneration:
    def test_mpki_approximately_honored(self):
        spec = benchmark_by_code("mu")
        records = list(benchmark_trace("mu", 10_000))
        instructions = sum(r.instructions for r in records)
        measured = 1000.0 * len(records) / instructions
        assert measured == pytest.approx(spec.mpki, rel=0.12)

    def test_copies_differ(self):
        a = list(benchmark_trace("li", 200, copy_index=0))
        b = list(benchmark_trace("li", 200, copy_index=1))
        assert a != b

    def test_segments_differ(self):
        a = list(benchmark_trace("li", 200, segment=0))
        b = list(benchmark_trace("li", 200, segment=1))
        assert a != b

    def test_deterministic(self):
        assert list(benchmark_trace("bl", 200)) == list(benchmark_trace("bl", 200))

    def test_streaming_benchmark_is_streaming(self):
        recs = list(benchmark_trace("li", 2_000))
        seq = sum(1 for a, b in zip(recs, recs[1:])
                  if b.line_addr == a.line_addr + 1)
        assert seq / len(recs) > 0.8

    def test_pointer_chaser_is_not(self):
        recs = list(benchmark_trace("mu", 2_000))
        seq = sum(1 for a, b in zip(recs, recs[1:])
                  if b.line_addr == a.line_addr + 1)
        assert seq / len(recs) < 0.3
