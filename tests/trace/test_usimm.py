"""USIMM trace-format reader."""

import io

import pytest

from repro.trace.trace_format import TraceRecord
from repro.trace.usimm import read_usimm_trace, sniff_usimm

SAMPLE = """\
# comment
250 R 7f3a40 4005d0
3 W 7f3a80
0 R 10000 4005d8
"""


class TestReader:
    def test_parses_records(self):
        records = list(read_usimm_trace(io.StringIO(SAMPLE)))
        assert records == [
            TraceRecord(250, False, 0x7F3A40 >> 6),
            TraceRecord(3, True, 0x7F3A80 >> 6),
            TraceRecord(0, False, 0x10000 >> 6),
        ]

    def test_line_size_folding(self):
        records = list(
            read_usimm_trace(io.StringIO("0 R 100 0\n"), line_bytes=128)
        )
        assert records[0].line_addr == 0x100 >> 7

    def test_limit(self):
        records = list(read_usimm_trace(io.StringIO(SAMPLE), limit=2))
        assert len(records) == 2

    def test_bad_line_size(self):
        with pytest.raises(ValueError):
            list(read_usimm_trace(io.StringIO(""), line_bytes=100))

    def test_malformed_op(self):
        with pytest.raises(ValueError, match="line 1"):
            list(read_usimm_trace(io.StringIO("5 X 100\n")))

    def test_write_with_pc_rejected(self):
        with pytest.raises(ValueError):
            list(read_usimm_trace(io.StringIO("5 W 100 200\n")))

    def test_unparseable_fields(self):
        with pytest.raises(ValueError):
            list(read_usimm_trace(io.StringIO("x R 100\n")))


class TestSniffer:
    def test_detects_usimm_by_pc_column(self):
        assert sniff_usimm("100 R 7f3a40 4005d0\n")

    def test_detects_usimm_by_byte_addresses(self):
        assert sniff_usimm("100 W 7f3a40\n")

    def test_rejects_native_format(self):
        # Native traces use small line indices.
        assert not sniff_usimm("100 R 2a\n")

    def test_rejects_garbage(self):
        assert not sniff_usimm("hello world\n")
        assert not sniff_usimm("")
