"""Census invariance: lazy periodic streams change *what is dispatched*,
never *what happens*.

The engine's lazy mode (the default) elides dispatches for periodic
occurrences it can reconstruct in closed form -- DRAM refresh catch-up
windows and idle core wakes -- and books them as *synthesized* so the
logical event census (``Engine.events_dispatched``) matches the eager
dispatch-per-occurrence engine exactly.  This suite pins that equivalence
at every observable layer:

* whole-system :class:`SimResult` payloads (fig9 schemes, both periodic
  modes, both scheduler backends) are byte-identical;
* golden trace digests match across eager/lazy and heap/wheel;
* the *implied DRAM command stream* -- the PRE/ACT/RD/WR/REF sequence the
  protocol referee replays -- is identical even when idle gaps force
  multi-window refresh catch-up, and still passes the referee;
* channel StatSet snapshots (refresh counters included) are identical;
* :class:`PeriodicStream`'s closed forms agree with one-at-a-time
  eager consumption;
* the multi-tenant golden *scenario* (open-loop service layer, PR 6)
  produces the committed report and trace digests under every
  ``sched x periodic`` combination.
"""

import json
import os

import pytest

from repro.core.schemes import run_scheme
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.dram.compliance import ProtocolChecker
from repro.dram.timing import DDR3_1600 as T
from repro.obs.export import trace_digest
from repro.obs.golden import run_traced
from repro.sim.engine import Engine
from repro.sim.periodic import PeriodicStream

FIG9_SCHEMES = ("baseline", "doram", "doram+1")
TRACE_LENGTH = 300


# ---------------------------------------------------------------------------
# PeriodicStream closed forms vs eager consumption
# ---------------------------------------------------------------------------

class TestPeriodicStream:
    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError):
            PeriodicStream(0)

    def test_first_due_defaults_to_period(self):
        assert PeriodicStream(10).next_due == 10
        assert PeriodicStream(10, first_due=3).next_due == 3

    @pytest.mark.parametrize("period,first,now", [
        (10, 10, 10), (10, 10, 19), (10, 10, 55), (7, 3, 100), (1, 0, 42),
    ])
    def test_take_due_matches_one_at_a_time(self, period, first, now):
        lazy = PeriodicStream(period, first_due=first)
        eager = PeriodicStream(period, first_due=first, eager=True)
        start, count = lazy.take_due(now)
        assert start == first
        # Eager mode hands over exactly one occurrence per call; the
        # closed form must equal draining it in a loop.
        eager_times = []
        while eager.due(now):
            t, n = eager.take_due(now)
            assert n == 1
            eager_times.append(t)
        assert count == len(eager_times)
        assert eager_times == [first + i * period for i in range(count)]
        assert lazy.next_due == eager.next_due
        assert lazy.occurrences == eager.occurrences

    def test_not_due_before_deadline(self):
        stream = PeriodicStream(10)
        assert not stream.due(9)
        assert stream.due(10)

    def test_rebase(self):
        stream = PeriodicStream(10)
        stream.rebase(77)
        assert stream.next_due == 77


# ---------------------------------------------------------------------------
# Whole-system equivalence (fig9 segment)
# ---------------------------------------------------------------------------

def _fig9(scheme, monkeypatch, periodic=None, sched=None):
    if periodic:
        monkeypatch.setenv("DORAM_PERIODIC", periodic)
    else:
        monkeypatch.delenv("DORAM_PERIODIC", raising=False)
    if sched:
        monkeypatch.setenv("DORAM_SCHED", sched)
    else:
        monkeypatch.delenv("DORAM_SCHED", raising=False)
    return run_scheme(scheme, "libq", TRACE_LENGTH)


@pytest.mark.parametrize("scheme", FIG9_SCHEMES)
class TestFig9CensusInvariance:
    def test_simresult_identical_and_census_preserved(self, scheme,
                                                      monkeypatch):
        eager = _fig9(scheme, monkeypatch, periodic="eager")
        lazy = _fig9(scheme, monkeypatch)
        # The serialized payload -- every metric, stat, and the logical
        # event census -- must be byte-identical.
        assert lazy.to_json_dict() == eager.to_json_dict()
        assert lazy.events == eager.events
        # Eager mode synthesizes nothing; lazy must actually dispatch
        # fewer raw events (otherwise the census machinery is dead code).
        assert eager.raw_events == eager.events
        assert lazy.raw_events < eager.raw_events

    def test_wheel_backend_identical(self, scheme, monkeypatch):
        heap = _fig9(scheme, monkeypatch)
        wheel = _fig9(scheme, monkeypatch, sched="wheel")
        assert wheel.to_json_dict() == heap.to_json_dict()


class TestGoldenDigestInvariance:
    """One scheme end-to-end with tracing on: the canonical event trace
    itself (not just aggregates) is mode-independent."""

    def _digest(self, monkeypatch, periodic=None, sched=None):
        if periodic:
            monkeypatch.setenv("DORAM_PERIODIC", periodic)
        else:
            monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        if sched:
            monkeypatch.setenv("DORAM_SCHED", sched)
        else:
            monkeypatch.delenv("DORAM_SCHED", raising=False)
        _result, trace = run_traced("doram")
        return trace_digest(trace.events)

    def test_eager_lazy_wheel_digests_agree(self, monkeypatch):
        lazy = self._digest(monkeypatch)
        assert self._digest(monkeypatch, periodic="eager") == lazy
        assert self._digest(monkeypatch, sched="wheel") == lazy


# ---------------------------------------------------------------------------
# Refresh catch-up vs the protocol referee
# ---------------------------------------------------------------------------

def _bursty_channel(periodic, channel_cls=Channel):
    """A channel fed short bursts separated by multi-tREFI idle gaps, so
    the first service after each gap owes several refresh windows."""
    eng = Engine(periodic=periodic)
    channel = channel_cls(eng, "ch0")
    log = channel.start_command_log()
    num_banks = channel.params.num_banks

    def burst(base):
        def feed():
            for i in range(12):
                op = OpType.WRITE if i % 3 == 0 else OpType.READ
                channel.enqueue(MemRequest(
                    op, 0, 0, bank=(base + i) % num_banks, row=(base + i) % 5,
                ))
        return feed

    # Gaps of ~2.5x, ~4.2x, and ~1.1x tREFI: catch-up batches of
    # different depths, plus one ordinary single-window refresh.
    for burst_idx, gap_mult in enumerate((0.0, 2.5, 6.7, 7.8)):
        eng.at(int(T.tREFI * gap_mult), burst(burst_idx * 3))
    eng.run()
    return eng, channel, log


class TestRefreshCatchUpInvariance:
    def test_command_streams_identical_and_compliant(self):
        eng_eager, ch_eager, log_eager = _bursty_channel("eager")
        eng_lazy, ch_lazy, log_lazy = _bursty_channel(None)

        refs = [c for c in log_eager if c.kind == "REF"]
        assert len(refs) >= 7, "gaps failed to force refresh catch-up"
        # The implied command streams -- including every back-dated REF
        # window inside the catch-up batches -- must be identical.
        assert log_lazy == log_eager
        # And both must satisfy the independent JEDEC referee.
        checker = ProtocolChecker(T, ch_eager.params.num_banks)
        assert checker.check(log_eager) == []
        assert checker.check(log_lazy) == []

    def test_stats_and_census_identical(self):
        eng_eager, ch_eager, _ = _bursty_channel("eager")
        eng_lazy, ch_lazy, _ = _bursty_channel(None)
        assert ch_lazy.stats.as_dict() == ch_eager.stats.as_dict()
        assert ch_lazy.rank.refreshes == ch_eager.rank.refreshes
        assert eng_lazy.events_dispatched == eng_eager.events_dispatched
        assert eng_lazy.now == eng_eager.now
        # The batched windows really were elided from the dispatch count.
        assert eng_lazy.raw_events_dispatched < eng_eager.raw_events_dispatched
        assert (
            eng_lazy.raw_events_dispatched + eng_lazy.events_synthesized
            == eng_lazy.events_dispatched
        )


# ---------------------------------------------------------------------------
# Struct-of-arrays batch kernel (PR 7): same census contract, third axis
# ---------------------------------------------------------------------------

def _fig9_dram(scheme, monkeypatch, dram=None, periodic=None, sched=None):
    if dram:
        monkeypatch.setenv("DORAM_DRAM", dram)
    else:
        monkeypatch.delenv("DORAM_DRAM", raising=False)
    return _fig9(scheme, monkeypatch, periodic=periodic, sched=sched)


@pytest.mark.parametrize("scheme", FIG9_SCHEMES)
class TestKernelBackendCensusInvariance:
    """``DORAM_DRAM=kernel`` joins heap/wheel x eager/lazy as a third
    equivalence axis: the batch kernel may fold chained service slots
    into single dispatches (booked as synthesized), but every payload
    byte and the logical census must match the legacy oracle."""

    def test_kernel_payload_identical_to_legacy(self, scheme, monkeypatch):
        legacy = _fig9_dram(scheme, monkeypatch)
        kernel = _fig9_dram(scheme, monkeypatch, dram="kernel")
        assert kernel.to_json_dict() == legacy.to_json_dict()
        assert kernel.events == legacy.events
        # The chain loop must actually fire: fewer raw dispatches than
        # the legacy lazy engine, with the difference booked as
        # synthesized events (otherwise the kernel is dead code).
        assert kernel.raw_events < legacy.raw_events

    def test_kernel_invariant_across_engine_modes(self, scheme, monkeypatch):
        lazy = _fig9_dram(scheme, monkeypatch, dram="kernel")
        eager = _fig9_dram(scheme, monkeypatch, dram="kernel",
                           periodic="eager")
        wheel = _fig9_dram(scheme, monkeypatch, dram="kernel", sched="wheel")
        assert eager.to_json_dict() == lazy.to_json_dict()
        assert wheel.to_json_dict() == lazy.to_json_dict()
        # Eager periodic mode turns the chain gate off: the kernel then
        # dispatches one event per occurrence, the census oracle.
        assert eager.raw_events == eager.events


class TestKernelGoldenDigest:
    def test_traced_kernel_run_matches_legacy_digest(self, monkeypatch):
        """Tracing disables the chain gate (every event must hit the
        dispatch loop for the trace), yet the kernel's SoA service math
        must still produce the identical canonical event stream."""
        monkeypatch.delenv("DORAM_DRAM", raising=False)
        _res, trace = run_traced("doram")
        legacy_digest = trace_digest(trace.events)
        monkeypatch.setenv("DORAM_DRAM", "kernel")
        _res, trace = run_traced("doram")
        assert trace_digest(trace.events) == legacy_digest


class TestKernelRefreshCatchUp:
    def test_kernel_catchup_streams_match_all_oracles(self):
        from repro.dram.kernel import KernelChannel

        eng_eager, ch_eager, log_eager = _bursty_channel("eager")
        eng_k, ch_k, log_k = _bursty_channel(None, channel_cls=KernelChannel)
        eng_ke, ch_ke, log_ke = _bursty_channel("eager",
                                                channel_cls=KernelChannel)
        # Kernel lazy == kernel eager == legacy eager, REF windows and all.
        assert log_k == log_eager
        assert log_ke == log_eager
        checker = ProtocolChecker(T, ch_eager.params.num_banks)
        assert checker.check(log_k) == []
        assert ch_k.stats.as_dict() == ch_eager.stats.as_dict()
        assert ch_k.rank.refreshes == ch_eager.rank.refreshes
        assert eng_k.events_dispatched == eng_eager.events_dispatched
        assert eng_k.now == eng_eager.now
        # Chained service slots were folded into synthesized dispatches.
        assert eng_k.raw_events_dispatched < eng_k.events_dispatched
        assert (
            eng_k.raw_events_dispatched + eng_k.events_synthesized
            == eng_k.events_dispatched
        )


class TestKernelFaultInvariance:
    """Fault-plan bit-flips land on the same reads at the same times
    under the kernel backend: the flip site sits on the completion
    boundary, which the kernel preserves exactly."""

    def _armed(self, monkeypatch, dram=None):
        from repro.faults import DramFault, FaultController, FaultPlan

        if dram:
            monkeypatch.setenv("DORAM_DRAM", dram)
        else:
            monkeypatch.delenv("DORAM_DRAM", raising=False)
        monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        monkeypatch.delenv("DORAM_SCHED", raising=False)
        plan = FaultPlan(seed=7, dram=(DramFault(channel="ch*", rate=0.01),))
        return run_scheme("doram", "libq", TRACE_LENGTH,
                          faults=FaultController(plan))

    def test_flips_identical_under_kernel(self, monkeypatch):
        legacy = self._armed(monkeypatch)
        kernel = self._armed(monkeypatch, dram="kernel")
        assert kernel.fault_summary == legacy.fault_summary
        assert kernel.fault_summary["faults"]["dram_flips"] > 0
        assert kernel.to_json_dict() == legacy.to_json_dict()
        assert kernel.events == legacy.events


# ---------------------------------------------------------------------------
# Link-pipeline macro-stepping kernel (PR 8): fourth axis
# ---------------------------------------------------------------------------

def _fig9_link(scheme, monkeypatch, link=None, dram=None, periodic=None,
               sched=None):
    if link:
        monkeypatch.setenv("DORAM_LINK", link)
    else:
        monkeypatch.delenv("DORAM_LINK", raising=False)
    return _fig9_dram(scheme, monkeypatch, dram=dram, periodic=periodic,
                      sched=sched)


@pytest.mark.parametrize("scheme", FIG9_SCHEMES)
class TestLinkKernelCensusInvariance:
    """``DORAM_LINK=kernel`` joins link x dram x sched x periodic: the
    pipeline kernel fuses pacer-period hops into synthesized occurrences
    but every payload byte and the logical census must match the
    per-packet legacy oracle."""

    def test_link_kernel_payload_identical_to_legacy(self, scheme,
                                                     monkeypatch):
        legacy = _fig9_link(scheme, monkeypatch)
        kernel = _fig9_link(scheme, monkeypatch, link="kernel")
        assert kernel.to_json_dict() == legacy.to_json_dict()
        assert kernel.events == legacy.events
        # Fusion must actually fire (emit gaps, link deliveries, SD and
        # CPU hops), or the kernel is dead code.
        assert kernel.raw_events < legacy.raw_events

    def test_link_kernel_invariant_across_engine_modes(self, scheme,
                                                       monkeypatch):
        lazy = _fig9_link(scheme, monkeypatch, link="kernel")
        eager = _fig9_link(scheme, monkeypatch, link="kernel",
                           periodic="eager")
        wheel = _fig9_link(scheme, monkeypatch, link="kernel", sched="wheel")
        assert eager.to_json_dict() == lazy.to_json_dict()
        assert wheel.to_json_dict() == lazy.to_json_dict()
        # Eager periodic mode turns batch_inline_ok off: the kernel
        # classes then run the literal legacy code paths, one dispatch
        # per occurrence (the census oracle).
        assert eager.raw_events == eager.events

    def test_link_and_dram_kernels_compose(self, scheme, monkeypatch):
        """Both kernels together: the pipeline chain hands off into the
        DRAM chain loop and back without moving a payload byte, and
        elides at least as much as either kernel alone."""
        legacy = _fig9_link(scheme, monkeypatch)
        link_only = _fig9_link(scheme, monkeypatch, link="kernel")
        dram_only = _fig9_link(scheme, monkeypatch, dram="kernel")
        both = _fig9_link(scheme, monkeypatch, link="kernel", dram="kernel")
        assert both.to_json_dict() == legacy.to_json_dict()
        assert both.events == legacy.events
        assert both.raw_events < link_only.raw_events
        # Composition must never lose elisions.  It rarely *gains* on
        # fig9: the paper's write-phase/response overlap (Section III-B)
        # and the dense NS-core wakes keep the queue occupied, so the
        # pipeline sites lose the strictly-next race here -- the win
        # regime is the NS-free service layer (see
        # TestScenarioCensusInvariance and the link-kernel oracle suite,
        # where the sites demonstrably fire).
        assert both.raw_events <= dram_only.raw_events
        # Combined with the wheel scheduler as well (the CI matrix).
        both_wheel = _fig9_link(scheme, monkeypatch, link="kernel",
                                dram="kernel", sched="wheel")
        assert both_wheel.to_json_dict() == legacy.to_json_dict()


class TestLinkKernelGoldenDigest:
    def test_traced_link_kernel_run_matches_legacy_digest(self, monkeypatch):
        """Tracing the default categories leaves the engine category off,
        so fusion stays active -- every fused site must emit its
        component-level event at the identical time, keeping the
        canonical stream byte-identical."""
        monkeypatch.delenv("DORAM_LINK", raising=False)
        _res, trace = run_traced("doram")
        legacy_digest = trace_digest(trace.events)
        monkeypatch.setenv("DORAM_LINK", "kernel")
        _res, trace = run_traced("doram")
        assert trace_digest(trace.events) == legacy_digest
        monkeypatch.setenv("DORAM_DRAM", "kernel")
        _res, trace = run_traced("doram")
        assert trace_digest(trace.events) == legacy_digest
        monkeypatch.delenv("DORAM_DRAM", raising=False)


class TestLinkKernelFaultFallback:
    """Armed runs must force per-packet stepping with zero digest drift:
    the system builder refuses the kernel classes whenever a fault
    controller exists, even for an empty plan."""

    def _armed(self, monkeypatch, link=None):
        from repro.faults import FaultController, FaultPlan, LinkFault

        if link:
            monkeypatch.setenv("DORAM_LINK", link)
        else:
            monkeypatch.delenv("DORAM_LINK", raising=False)
        monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        monkeypatch.delenv("DORAM_SCHED", raising=False)
        plan = FaultPlan(
            seed=7,
            link=(LinkFault(kind="drop", link="bob0.up", tag="raw",
                            packets=(3, 17)),),
        )
        return run_scheme("doram", "libq", TRACE_LENGTH,
                          faults=FaultController(plan))

    def test_recovery_nak_path_identical_under_link_kernel(self,
                                                           monkeypatch):
        """Dropped frames exercise the NAK/retransmission protocol; with
        DORAM_LINK=kernel every logical observable -- payload, fault
        summary, event census -- must match the legacy armed run.  (Raw
        dispatch counts legitimately differ: the engine-level wake/send
        fusion stays on under the kernel axis even when the pipeline
        classes fall back to per-packet stepping.)"""
        legacy = self._armed(monkeypatch)
        kernel = self._armed(monkeypatch, link="kernel")
        assert kernel.fault_summary == legacy.fault_summary
        assert kernel.fault_summary["faults"]["link_drops"] > 0
        assert kernel.fault_summary["sdlink0"]["retransmissions"] > 0
        assert kernel.to_json_dict() == legacy.to_json_dict()
        assert kernel.events == legacy.events

    def test_armed_empty_plan_forces_per_packet_stepping(self, monkeypatch):
        from repro.faults import FaultController, FaultPlan

        monkeypatch.setenv("DORAM_LINK", "kernel")
        monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        monkeypatch.delenv("DORAM_SCHED", raising=False)
        bare = run_scheme("doram", "libq", TRACE_LENGTH)
        armed = run_scheme("doram", "libq", TRACE_LENGTH,
                           faults=FaultController(FaultPlan()))
        monkeypatch.delenv("DORAM_LINK", raising=False)
        legacy = run_scheme("doram", "libq", TRACE_LENGTH)
        # Logical observables never move...
        assert armed.to_json_dict() == bare.to_json_dict()
        assert armed.events == bare.events
        assert legacy.to_json_dict() == bare.to_json_dict()
        # ...and the armed run can never elide more than the bare kernel
        # run: arming only *removes* fusion sites (pipeline classes fall
        # back to per-packet stepping; engine-level fusion remains).
        # The class-level fallback itself is pinned structurally by
        # test_armed_runs_never_construct_kernel_classes, because on
        # fig9 the write-phase overlap already masks the pipeline sites,
        # making the two counts equal here.
        assert bare.raw_events <= armed.raw_events

    def test_armed_runs_never_construct_kernel_classes(self, monkeypatch):
        """Structural pin for the fallback rule: with a fault controller
        attached (even an empty plan) the system builder must not
        instantiate any link-kernel class -- recovery frames and NAKs
        are pinned against the per-packet schedule."""
        import repro.core.link_kernel as link_kernel
        from repro.faults import FaultController, FaultPlan

        def _boom(*_args, **_kwargs):
            raise AssertionError("kernel class constructed in armed run")

        monkeypatch.setattr(
            link_kernel.KernelSecureDelegator, "__init__", _boom
        )
        monkeypatch.setattr(
            link_kernel.KernelDelegatorBackend, "__init__", _boom
        )
        monkeypatch.setattr(
            link_kernel.KernelOramFrontend, "_on_response", _boom
        )
        monkeypatch.setenv("DORAM_LINK", "kernel")
        monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        monkeypatch.delenv("DORAM_SCHED", raising=False)
        # Must complete without touching the poisoned classes.
        run_scheme("doram", "libq", TRACE_LENGTH,
                   faults=FaultController(FaultPlan()))
        # Control: the bare run does use them.
        with pytest.raises(AssertionError, match="kernel class"):
            run_scheme("doram", "libq", TRACE_LENGTH)


# ---------------------------------------------------------------------------
# Multi-tenant scenario invariance (the PR-6 service layer)
# ---------------------------------------------------------------------------

_GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "obs", "golden_digests.json",
)
with open(os.path.normpath(_GOLDEN_PATH)) as _fp:
    _SCENARIO_GOLDEN = json.load(_fp)["scenario"]


class TestScenarioCensusInvariance:
    """The golden 4-tenant scenario pinned across heap/wheel x eager/lazy.

    The service layer keeps every component on the poll-free side of the
    census contract (no NS cores, drain via ``engine.stop()``), so the
    full SLO report, the logical event census, *and* the canonical event
    trace must be identical in all four engine configurations -- and
    must match the committed goldens (regen via tools/regen_goldens.py
    after intentional changes).
    """

    def _run(self, monkeypatch, periodic=None, sched=None):
        from repro.obs.tracer import Tracer
        from repro.scenarios import golden_scenario_config, run_scenario

        if periodic:
            monkeypatch.setenv("DORAM_PERIODIC", periodic)
        else:
            monkeypatch.delenv("DORAM_PERIODIC", raising=False)
        if sched:
            monkeypatch.setenv("DORAM_SCHED", sched)
        else:
            monkeypatch.delenv("DORAM_SCHED", raising=False)
        tracer = Tracer()
        result = run_scenario(golden_scenario_config(), tracer=tracer)
        return result, trace_digest(tracer.events)

    @pytest.mark.parametrize("periodic,sched", [
        (None, None),
        ("eager", None),
        (None, "wheel"),
        ("eager", "wheel"),
    ])
    def test_matches_committed_goldens(self, periodic, sched, monkeypatch):
        result, digest = self._run(monkeypatch, periodic, sched)
        assert result.report_digest() == _SCENARIO_GOLDEN["report"]
        assert digest == _SCENARIO_GOLDEN["trace"]

    def test_census_and_report_identical_across_modes(self, monkeypatch):
        lazy, _ = self._run(monkeypatch)
        eager, _ = self._run(monkeypatch, periodic="eager")
        assert lazy.to_json_dict() == eager.to_json_dict()
        assert lazy.events == eager.events
        assert lazy.end_time == eager.end_time

    def test_link_kernel_matches_committed_goldens(self, monkeypatch):
        """The service layer shares one SD across tenants, so the link
        kernel's hop FIFO sees real contention here; the committed
        report and trace digests still must not move."""
        monkeypatch.delenv("DORAM_LINK", raising=False)
        legacy_result, _ = self._run(monkeypatch)
        monkeypatch.setenv("DORAM_LINK", "kernel")
        result, digest = self._run(monkeypatch)
        assert result.report_digest() == _SCENARIO_GOLDEN["report"]
        assert digest == _SCENARIO_GOLDEN["trace"]
        # The NS-free scenario is the pipeline kernel's win regime: the
        # fused sites must actually elide dispatches here (fig9's
        # write-phase overlap masks them; this layer does not).
        assert result.raw_events < legacy_result.raw_events
        monkeypatch.setenv("DORAM_DRAM", "kernel")
        result, digest = self._run(monkeypatch, sched="wheel")
        assert result.report_digest() == _SCENARIO_GOLDEN["report"]
        assert digest == _SCENARIO_GOLDEN["trace"]
        monkeypatch.delenv("DORAM_DRAM", raising=False)
        monkeypatch.delenv("DORAM_LINK", raising=False)
