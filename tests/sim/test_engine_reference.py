"""Differential testing: optimized Engine vs a kept-simple reference.

The production :class:`Engine` earns its speed with a same-tick batch
loop, a specialized no-trace fast path, tombstoned cancellation, and the
``(callback, arg)`` form.  This suite replays identical random programs
-- including callbacks that schedule and cancel further events -- on the
real engine and on a deliberately naive scheduler (sorted list, one event
at a time, no batching), and requires bit-identical dispatch sequences
and counts.  Any future hot-path change that bends dispatch semantics
fails here with a minimal counterexample rather than as a golden-digest
mismatch three layers up.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine


class ReferenceEngine:
    """The obviously-correct scheduler the Engine must agree with.

    Deliberately naive: events live in a plain list, every dispatch
    re-sorts and pops the global ``(time, seq)`` minimum, cancellation
    removes the entry outright.  No batching, no fast paths.
    """

    def __init__(self):
        self.now = 0
        self._events = []
        self._seq = 0
        self.events_dispatched = 0

    def at(self, time, callback):
        if time < self.now:
            raise ValueError("past")
        entry = [time, self._seq, callback, None, False]
        self._seq += 1
        self._events.append(entry)
        return entry

    def call_at(self, time, callback, arg):
        if time < self.now:
            raise ValueError("past")
        entry = [time, self._seq, callback, arg, True]
        self._seq += 1
        self._events.append(entry)
        return entry

    def cancel(self, entry):
        if entry in self._events:
            self._events.remove(entry)
            return True
        return False

    def run(self):
        events = self._events
        while events:
            events.sort(key=lambda e: (e[0], e[1]))
            time, _seq, callback, arg, has_arg = events.pop(0)
            self.now = time
            self.events_dispatched += 1
            if has_arg:
                callback(arg)
            else:
                callback()


# One program step: (delay, tag, spawn?, spawn_delay, use_arg_form?,
# cancel_index or None).  Everything downstream is a pure function of
# these values, so both engines see the identical program.
steps = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),          # initial delay
        st.integers(min_value=0, max_value=9999),        # tag
        st.booleans(),                                   # spawn a child?
        st.integers(min_value=0, max_value=20),          # child delay
        st.booleans(),                                   # call_at form?
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
    ),
    min_size=1,
    max_size=40,
)


def run_program(engine_cls, plan):
    eng = engine_cls()
    fired = []
    handles = []

    def make_cb(tag, spawn, child_delay, use_arg, cancel_idx, depth):
        def body(arg=None):
            fired.append((eng.now, tag, depth, arg))
            if cancel_idx is not None and handles:
                eng.cancel(handles[cancel_idx % len(handles)])
            if spawn and depth < 3:
                child = make_cb(tag + 1, spawn, child_delay, use_arg,
                                cancel_idx, depth + 1)
                when = eng.now + child_delay
                if use_arg:
                    handles.append(eng.call_at(when, child, tag * depth))
                else:
                    handles.append(eng.at(when, child))
        if use_arg:
            return body
        return lambda: body()

    for delay, tag, spawn, child_delay, use_arg, cancel_idx in plan:
        cb = make_cb(tag, spawn, child_delay, use_arg, cancel_idx, 0)
        if use_arg:
            handles.append(eng.call_at(delay, cb, tag))
        else:
            handles.append(eng.at(delay, cb))
    eng.run()
    return fired, eng.events_dispatched


def wheel_engine():
    return Engine(scheduler="wheel")


def small_bucket_wheel_engine():
    """A wheel whose buckets are one tick wide: every push crosses
    bucket boundaries, stressing the advance/spill machinery."""
    import os

    os.environ["DORAM_WHEEL_BUCKET"] = "1"
    try:
        return Engine(scheduler="wheel")
    finally:
        del os.environ["DORAM_WHEEL_BUCKET"]


@settings(max_examples=200, deadline=None)
@given(plan=steps)
def test_engine_matches_reference_scheduler(plan):
    got = run_program(Engine, plan)
    want = run_program(ReferenceEngine, plan)
    assert got == want


@settings(max_examples=200, deadline=None)
@given(plan=steps)
def test_wheel_backend_matches_reference_scheduler(plan):
    # The timing-wheel backend must be observationally identical to the
    # heap: same dispatch order, same counts, same cancellation
    # semantics.
    got = run_program(wheel_engine, plan)
    want = run_program(ReferenceEngine, plan)
    assert got == want


@settings(max_examples=100, deadline=None)
@given(plan=steps)
def test_degenerate_wheel_matches_reference_scheduler(plan):
    got = run_program(small_bucket_wheel_engine, plan)
    want = run_program(ReferenceEngine, plan)
    assert got == want


@settings(max_examples=50, deadline=None)
@given(plan=steps)
def test_engine_self_consistent_across_runs(plan):
    # The optimized engine against itself: scheduling from callbacks and
    # cancellation must not introduce any run-to-run nondeterminism.
    assert run_program(Engine, plan) == run_program(Engine, plan)
