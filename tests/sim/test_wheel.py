"""TimingWheel unit tests: exact (time, seq) order under bucket churn.

The differential suite (test_engine_reference) already pins the wheel
*backend* against the reference scheduler; these tests hit the wheel
data structure directly, including the bucket-boundary cases a random
program may not reliably produce.
"""

import heapq
import random

import pytest

from repro.sim.wheel import DEFAULT_BUCKET_TICKS, TimingWheel


def _drain(wheel):
    out = []
    while len(wheel):
        out.append(wheel.pop())
    return out


class TestTimingWheel:
    def test_orders_like_a_heap(self):
        rng = random.Random(5)
        entries = [
            (rng.randrange(0, 50_000), seq, None, None)
            for seq in range(2_000)
        ]
        wheel = TimingWheel()
        for entry in entries:
            wheel.push(entry)
        assert _drain(wheel) == sorted(entries)

    def test_interleaved_push_pop(self):
        # Pushes landing in the current bucket after partial drains must
        # slot into the already-heapified head, not a future bucket.
        wheel = TimingWheel()
        heap = []
        rng = random.Random(9)
        seq = 0
        now = 0
        got, want = [], []
        for _ in range(3_000):
            if heap and rng.random() < 0.45:
                want.append(heapq.heappop(heap))
                got.append(wheel.pop())
                now = want[-1][0]
            else:
                entry = (now + rng.randrange(0, 4 * DEFAULT_BUCKET_TICKS),
                         seq, None, None)
                seq += 1
                heapq.heappush(heap, entry)
                wheel.push(entry)
        while heap:
            want.append(heapq.heappop(heap))
            got.append(wheel.pop())
        assert got == want

    def test_same_time_fifo_by_seq(self):
        wheel = TimingWheel()
        entries = [(100, seq, None, None) for seq in range(20)]
        for entry in reversed(entries):
            wheel.push(entry)
        assert _drain(wheel) == entries

    def test_peek_does_not_consume(self):
        wheel = TimingWheel()
        entry = (7, 0, None, None)
        wheel.push(entry)
        assert wheel.peek() == entry
        assert wheel.peek() == entry
        assert wheel.pop() == entry
        assert wheel.peek() is None

    def test_contains_across_buckets(self):
        wheel = TimingWheel()
        near = (1, 0, None, None)
        far = (10 * DEFAULT_BUCKET_TICKS, 1, None, None)
        wheel.push(near)
        wheel.push(far)
        assert near in wheel and far in wheel
        assert (2, 2, None, None) not in wheel
        wheel.pop()
        assert near not in wheel and far in wheel

    def test_empty_pop_raises(self):
        with pytest.raises(IndexError):
            TimingWheel().pop()

    def test_len_tracks_contents(self):
        wheel = TimingWheel()
        assert len(wheel) == 0
        for seq in range(5):
            wheel.push((seq * DEFAULT_BUCKET_TICKS, seq, None, None))
        assert len(wheel) == 5
        wheel.pop()
        assert len(wheel) == 4

    @pytest.mark.parametrize("bucket", [1, 2, 64])
    def test_custom_bucket_widths(self, bucket):
        rng = random.Random(bucket)
        entries = [
            (rng.randrange(0, 500), seq, None, None) for seq in range(300)
        ]
        wheel = TimingWheel(bucket_ticks=bucket)
        for entry in entries:
            wheel.push(entry)
        assert _drain(wheel) == sorted(entries)

    @pytest.mark.parametrize("bad", [0, -8, 3, 500])
    def test_bucket_width_must_be_power_of_two(self, bad):
        with pytest.raises(ValueError):
            TimingWheel(bucket_ticks=bad)
