"""Engine: ordering, determinism, control flow."""

import pytest

from repro.sim.engine import (
    CPU_CYCLE_TICKS,
    MEM_CYCLE_TICKS,
    TICKS_PER_NS,
    Engine,
    cpu_cycles,
    mem_cycles,
    ns,
)


class TestUnits:
    def test_ticks_per_ns(self):
        assert TICKS_PER_NS == 16

    def test_cpu_cycle_is_integral(self):
        # 3.2 GHz -> 0.3125 ns -> exactly 5 ticks.
        assert CPU_CYCLE_TICKS == 5
        assert cpu_cycles(1) == 5
        assert cpu_cycles(50) == 250

    def test_mem_cycle_is_integral(self):
        # 800 MHz DDR3-1600 clock -> 1.25 ns -> exactly 20 ticks.
        assert MEM_CYCLE_TICKS == 20
        assert mem_cycles(11) == 220

    def test_ns_conversion(self):
        assert ns(15) == 240
        assert ns(7.5) == 120

    def test_round_trip_consistency(self):
        # 4 CPU cycles per memory cycle at these clocks.
        assert mem_cycles(1) == cpu_cycles(4)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        order = []
        eng.at(30, lambda: order.append("c"))
        eng.at(10, lambda: order.append("a"))
        eng.at(20, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_same_tick_events_fire_fifo(self):
        eng = Engine()
        order = []
        for tag in range(5):
            eng.at(10, lambda t=tag: order.append(t))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_tracks_dispatch(self):
        eng = Engine()
        seen = []
        eng.at(7, lambda: seen.append(eng.now))
        eng.run()
        assert seen == [7]
        assert eng.now == 7

    def test_after_is_relative(self):
        eng = Engine()
        seen = []
        eng.at(100, lambda: eng.after(5, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [105]

    def test_scheduling_in_past_rejected(self):
        eng = Engine()
        eng.at(10, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.at(5, lambda: None)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            eng.after(-1, lambda: None)

    def test_callback_may_schedule_at_current_time(self):
        eng = Engine()
        order = []
        def first():
            order.append("first")
            eng.at(eng.now, lambda: order.append("second"))
        eng.at(3, first)
        eng.run()
        assert order == ["first", "second"]


class TestRunControl:
    def test_run_until_leaves_future_events_queued(self):
        eng = Engine()
        fired = []
        eng.at(10, lambda: fired.append(10))
        eng.at(100, lambda: fired.append(100))
        eng.run(until=50)
        assert fired == [10]
        assert eng.now == 50
        assert eng.pending == 1
        eng.run()
        assert fired == [10, 100]

    def test_stop_halts_dispatch(self):
        eng = Engine()
        fired = []
        def stopper():
            fired.append("stop")
            eng.stop()
        eng.at(1, stopper)
        eng.at(2, lambda: fired.append("late"))
        eng.run()
        assert fired == ["stop"]
        assert eng.pending == 1

    def test_max_events_guard(self):
        eng = Engine()
        def rearm():
            eng.after(1, rearm)
        eng.at(0, rearm)
        with pytest.raises(RuntimeError, match="max_events"):
            eng.run(max_events=100)

    def test_step_returns_false_on_empty(self):
        assert Engine().step() is False

    def test_events_dispatched_counter(self):
        eng = Engine()
        for i in range(4):
            eng.at(i, lambda: None)
        eng.run()
        assert eng.events_dispatched == 4

    def test_peek_time(self):
        eng = Engine()
        assert eng.peek_time() is None
        eng.at(42, lambda: None)
        assert eng.peek_time() == 42
