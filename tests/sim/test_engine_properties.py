"""Property-based tests on the event engine (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine

schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=1000),  # delay
        st.integers(min_value=0, max_value=99),    # payload tag
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=100, deadline=None)
@given(plan=schedules)
def test_dispatch_order_is_time_then_fifo(plan):
    eng = Engine()
    fired = []
    for i, (delay, tag) in enumerate(plan):
        eng.at(delay, lambda d=delay, i=i, t=tag: fired.append((d, i, t)))
    eng.run()
    # Sorted by (time, insertion order) -- exactly the dispatch contract.
    assert fired == sorted(fired, key=lambda e: (e[0], e[1]))


@settings(max_examples=60, deadline=None)
@given(plan=schedules)
def test_runs_are_deterministic(plan):
    def run_once():
        eng = Engine()
        fired = []
        for delay, tag in plan:
            eng.at(delay, lambda d=delay, t=tag: fired.append((eng.now, t)))
        eng.run()
        return fired, eng.events_dispatched

    assert run_once() == run_once()


@settings(max_examples=60, deadline=None)
@given(plan=schedules, cut=st.integers(min_value=0, max_value=1000))
def test_run_until_is_a_prefix_of_full_run(plan, cut):
    def schedule(eng, fired):
        for delay, tag in plan:
            eng.at(delay, lambda d=delay, t=tag: fired.append((d, t)))

    full_eng, full = Engine(), []
    schedule(full_eng, full)
    full_eng.run()

    part_eng, part = Engine(), []
    schedule(part_eng, part)
    part_eng.run(until=cut)
    prefix = [e for e in full if e[0] <= cut]
    assert part == prefix
    # Resuming completes the identical sequence.
    part_eng.run()
    assert part == full


@settings(max_examples=60, deadline=None)
@given(
    delays=st.lists(st.integers(min_value=1, max_value=50),
                    min_size=1, max_size=20),
)
def test_cascading_events_preserve_causality(delays):
    """Events scheduled from inside events always fire at or after the
    scheduling event's time."""
    eng = Engine()
    times = []

    def chain(remaining):
        times.append(eng.now)
        if remaining:
            eng.after(remaining[0], lambda: chain(remaining[1:]))

    eng.at(0, lambda: chain(delays))
    eng.run()
    assert times == sorted(times)
    assert times[-1] == sum(delays)
