"""Property-based invariants for the statistics primitives.

These cover the algebra the example-based tests cannot enumerate:
quantiles are monotone and consistent with ``max_value`` for *any*
recorded multiset and bucket width, and merging latency aggregates is
exactly equivalent to having recorded one concatenated stream.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Histogram, LatencyStat

_values = st.lists(
    st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200
)
_maybe_empty_values = st.lists(
    st.integers(min_value=0, max_value=10_000), max_size=200
)
_widths = st.integers(min_value=1, max_value=64)
_quantiles = st.floats(min_value=0.0, max_value=1.0)


def _filled(values, width):
    hist = Histogram("h", bucket_width=width)
    for value in values:
        hist.record(value)
    return hist


class TestHistogramProperties:
    @given(_values, _widths, _quantiles, _quantiles)
    def test_quantile_is_monotone(self, values, width, q1, q2):
        hist = _filled(values, width)
        lo, hi = sorted((q1, q2))
        assert hist.quantile(lo) <= hist.quantile(hi)

    @given(_values, _widths, _quantiles)
    def test_quantile_within_bounds(self, values, width, q):
        hist = _filled(values, width)
        assert 0 <= hist.quantile(q) <= hist.max_value

    @given(_values, _widths)
    def test_quantile_one_is_max_value(self, values, width):
        hist = _filled(values, width)
        assert hist.quantile(1.0) == hist.max_value

    @given(_values, _widths)
    def test_quantile_is_a_bucket_edge(self, values, width):
        hist = _filled(values, width)
        value = hist.quantile(0.5)
        assert value % width == 0
        assert value // width in hist.buckets

    @given(_values, _widths)
    def test_count_matches_bucket_total(self, values, width):
        hist = _filled(values, width)
        assert hist.count == len(values) == sum(hist.buckets.values())


class TestLatencyStatProperties:
    @given(_maybe_empty_values, _maybe_empty_values)
    def test_merge_equals_concatenated_stream(self, xs, ys):
        merged = LatencyStat("a")
        other = LatencyStat("b")
        for value in xs:
            merged.record(value)
        for value in ys:
            other.record(value)
        merged.merge(other)

        concat = LatencyStat("c")
        for value in xs + ys:
            concat.record(value)

        assert merged.count == concat.count
        assert merged.total == concat.total
        assert merged.min == concat.min
        assert merged.max == concat.max
        assert merged.mean == concat.mean

    @given(_values)
    def test_bounds_and_mean_envelope(self, values):
        stat = LatencyStat("lat")
        for value in values:
            stat.record(value)
        assert stat.min == min(values)
        assert stat.max == max(values)
        assert stat.min <= stat.mean <= stat.max
