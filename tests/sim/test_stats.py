"""Statistics primitives."""

import math

import pytest

from repro.sim.stats import Counter, Histogram, LatencyStat, StatSet, geomean


class TestCounter:
    def test_add_default(self):
        c = Counter("x")
        c.add()
        c.add()
        assert c.value == 2

    def test_add_amount(self):
        c = Counter("x")
        c.add(10)
        assert c.value == 10


class TestLatencyStat:
    def test_mean_min_max(self):
        stat = LatencyStat("lat")
        for v in (10, 20, 30):
            stat.record(v)
        assert stat.count == 3
        assert stat.mean == 20
        assert stat.min == 10
        assert stat.max == 30

    def test_empty_mean_is_zero(self):
        assert LatencyStat("lat").mean == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStat("lat").record(-1)

    def test_merge(self):
        a, b = LatencyStat("a"), LatencyStat("b")
        a.record(10)
        b.record(30)
        b.record(50)
        a.merge(b)
        assert a.count == 3
        assert a.total == 90
        assert a.min == 10
        assert a.max == 50

    def test_merge_empty_keeps_bounds(self):
        a, b = LatencyStat("a"), LatencyStat("b")
        a.record(5)
        a.merge(b)
        assert (a.min, a.max, a.count) == (5, 5, 1)


class TestHistogram:
    def test_bucket_width(self):
        h = Histogram("h", bucket_width=10)
        for v in (1, 5, 11, 25):
            h.record(v)
        assert h.buckets == {0: 2, 1: 1, 2: 1}

    def test_quantile(self):
        h = Histogram("h")
        for v in range(100):
            h.record(v)
        assert h.quantile(0.5) == 49
        assert h.quantile(1.0) == 99

    def test_quantile_empty(self):
        assert Histogram("h").quantile(0.5) == 0

    def test_quantile_range_check(self):
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)

    def test_max_value(self):
        h = Histogram("h", bucket_width=4)
        h.record(13)
        assert h.max_value == 12  # lower edge of the bucket

    def test_bad_width(self):
        with pytest.raises(ValueError):
            Histogram("h", bucket_width=0)


class TestStatSet:
    def test_lazy_creation_and_reuse(self):
        stats = StatSet("owner")
        assert stats.counter("a") is stats.counter("a")
        assert stats.latency("l") is stats.latency("l")

    def test_as_dict(self):
        stats = StatSet("owner")
        stats.counter("hits").add(3)
        stats.latency("lat").record(10)
        stats.latency("lat").record(30)
        for v in (5, 5, 5, 9):
            stats.histogram("depth").record(v)
        d = stats.as_dict()
        assert d["hits"] == 3
        assert d["lat.count"] == 2
        assert d["lat.mean"] == 20
        assert d["lat.min"] == 10
        assert d["lat.max"] == 30
        assert d["depth.count"] == 4
        assert d["depth.max"] == 9
        assert d["depth.p50"] == 5
        assert d["depth.p99"] == 9

    def test_as_dict_empty_latency(self):
        stats = StatSet("owner")
        stats.latency("lat")  # created but never recorded
        d = stats.as_dict()
        assert d["lat.count"] == 0
        assert d["lat.min"] == 0
        assert d["lat.max"] == 0

    def test_names_carry_owner(self):
        stats = StatSet("ch0")
        assert stats.counter("reads").name == "ch0.reads"


class TestGeomean:
    def test_basic(self):
        assert geomean([2, 8]) == pytest.approx(4.0)

    def test_singleton(self):
        assert geomean([3.5]) == pytest.approx(3.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_matches_log_definition(self):
        vals = [1.1, 2.3, 0.7, 5.0]
        expected = math.exp(sum(math.log(v) for v in vals) / 4)
        assert geomean(vals) == pytest.approx(expected)
