"""Perf-smoke gate for the batch kernels (DESIGN.md sections 9b/9c).

Absolute events/s floors are meaningless across heterogeneous runners,
so the gate is ratio-based and host-speed-robust: within one
``bench_simcore`` run the fig9 rows are same-machine siblings, and a
kernel's wall time relative to its legacy sibling is a pure software
property.  Per backend axis (``dram`` -- the PR 7 struct-of-arrays DRAM
kernel; ``link`` -- the PR 8 pipeline macro-stepping kernel) the check
fails when

    (kernel wall / legacy wall) of the newest run
        >  (kernel wall / legacy wall) of the committed baseline row
           *  (1 + slack)

with 20 % slack for shared-runner noise.  The committed baseline is the
most recent fig9 sibling pair whose label differs from the run under
test (normally the locally measured rows committed with the PR).  Each
axis is judged with the *other* axis at ``legacy``, so the two gates
stay independent; rows predating an axis simply lack its key and count
as ``legacy``.

Usage: python tools/check_kernel_perf.py [BENCH_sim.json] [--label ci]
"""

import argparse
import json
import os
import sys

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sim.json"
)
SLACK = 0.20
AXES = ("dram", "link")


def _sibling_ratio(rows, axis, label=None, exclude_label=None):
    """Newest fig9 kernel/legacy lazy wall ratio on one backend axis,
    with the rows it came from.  Rows are append-ordered; scan from the
    end so 'newest' is last-written."""
    other = {"dram": "link", "link": "dram"}[axis]

    def match(row, backend):
        return (
            row.get("workload") == "fig9_segment"
            and row.get("config") == "lazy"
            and row.get(axis, "legacy") == backend
            and row.get(other, "legacy") == "legacy"
            and (label is None or row.get("label") == label)
            and (exclude_label is None or row.get("label") != exclude_label)
        )

    kernel = next((r for r in reversed(rows) if match(r, "kernel")), None)
    legacy = next((r for r in reversed(rows) if match(r, "legacy")), None)
    if kernel is None or legacy is None or not legacy.get("wall_s"):
        return None, kernel, legacy
    return kernel["wall_s"] / legacy["wall_s"], kernel, legacy


def _check_axis(rows, axis, label):
    current, cur_k, cur_l = _sibling_ratio(rows, axis, label=label)
    if current is None:
        print(f"check_kernel_perf[{axis}]: no fig9 sibling pair labelled "
              f"{label!r}", file=sys.stderr)
        return 2
    baseline, base_k, base_l = _sibling_ratio(
        rows, axis, exclude_label=label
    )
    if baseline is None:
        print(f"check_kernel_perf[{axis}]: no committed baseline sibling "
              f"pair; nothing to gate against", file=sys.stderr)
        return 2

    # The conformance layer owns correctness, but a backend that stops
    # eliding dispatches is a silent perf regression this file would
    # otherwise miss.
    if cur_k.get("events_dispatched", 0) >= cur_l.get("events_dispatched", 1):
        print(f"FAIL[{axis}]: kernel dispatched "
              f"{cur_k.get('events_dispatched'):,} raw events >= legacy "
              f"sibling {cur_l.get('events_dispatched'):,}; "
              f"chaining is dead")
        return 1

    limit = baseline * (1.0 + SLACK)
    verdict = "OK" if current <= limit else "FAIL"
    print(f"{verdict}[{axis}]: kernel/legacy fig9 wall ratio {current:.3f} "
          f"(run {label!r}: {cur_k['wall_s']:.3f}s / "
          f"{cur_l['wall_s']:.3f}s) vs committed {baseline:.3f} "
          f"(label {base_k.get('label')!r}) + {SLACK:.0%} slack "
          f"= limit {limit:.3f}")
    return 0 if current <= limit else 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", nargs="?", default=DEFAULT_PATH)
    parser.add_argument("--label", default="ci",
                        help="label of the run under test (default: ci)")
    parser.add_argument("--axis", choices=AXES, action="append",
                        help="backend axis to gate (default: all)")
    args = parser.parse_args(argv)

    with open(args.path) as fp:
        rows = json.load(fp)

    status = 0
    for axis in (args.axis or AXES):
        status = max(status, _check_axis(rows, axis, args.label))
    return status


if __name__ == "__main__":
    sys.exit(main())
