#!/usr/bin/env python
"""Append sweep-performance records to ``BENCH_sweep.json``.

The benchmark harness (``benchmarks/bench_sweep.py``) and CI call this
after timing a sweep, building a wall-time / points-per-second
trajectory across commits:

    PYTHONPATH=src python tools/bench_trajectory.py \
        --label ci --figures fig9 --workers 2 \
        --points 13 --simulated 13 --wall-s 1.93 --trace-length 400

``BENCH_sweep.json`` is a JSON array of records; :func:`append` is the
importable form.  Writes are atomic (tmp + ``os.replace``) and a
corrupt or missing file restarts the trajectory instead of crashing.

``benchmarks/bench_simcore.py`` reuses :func:`append` for
``BENCH_sim.json``, whose rows the ratio gates in
``tools/check_kernel_perf.py`` machine-compare.  To keep that file
comparable, :func:`validate` rejects malformed appends before they land:
every record needs the base keys, workload rows need their per-workload
schema (:data:`WORKLOAD_KEYS`), timestamps must be monotonic within the
trajectory, and a workload row whose identity (label + workload +
config/backend axes) already exists is refused -- re-measuring means
choosing a fresh label, never silently shadowing a committed sibling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sweep.json"
)


def load(path: Optional[str] = None) -> List[Dict[str, object]]:
    """The current trajectory; tolerant of a missing/corrupt file."""
    path = os.path.normpath(path or DEFAULT_PATH)
    try:
        with open(path) as fp:
            records = json.load(fp)
        return records if isinstance(records, list) else []
    except (OSError, ValueError):
        return []


#: Keys every record must carry, whatever produced it.
BASE_KEYS = ("label", "wall_s")

#: Extra required keys per ``workload`` (the BENCH_sim.json rows).  A
#: workload not listed here only needs :data:`BASE_KEYS` -- the schema
#: constrains the rows the perf gates consume, it does not enumerate
#: every experiment anyone may ever record.
WORKLOAD_KEYS = {
    "engine_only": ("events", "events_per_s", "events_dispatched"),
    "channel_only": ("events", "events_per_s", "events_dispatched",
                     "dram"),
    "long_idle": ("events", "events_per_s", "events_dispatched",
                  "config"),
    "fig9_segment": ("events", "events_per_s", "events_dispatched",
                     "config", "dram", "link", "schemes",
                     "per_scheme_events", "trace_length"),
    "link_pacer": ("events", "events_per_s", "events_dispatched",
                   "link"),
    "explore": ("config", "trace_length", "grid_points", "simulated",
                "sim_fraction", "des_points_skipped_frac", "budget_frac",
                "rounds", "frontier_size", "latency_err_mean",
                "latency_err_p95", "goodput_err_mean",
                "goodput_err_p95"),
    # BENCH_chaos.json: one row per campaign cell; recovery_p99_ns is
    # -1.0 (never null) when no fault onset had a recovery witness.
    "chaos_point": ("config", "campaign", "availability", "goodput_rps",
                    "slo_goodput_rps", "recovery_p99_ns",
                    "invariants_ok"),
}

#: What makes two workload rows "the same measurement": the sibling
#: matchers in ``check_kernel_perf`` key on exactly these columns.
IDENTITY_KEYS = ("label", "workload", "config", "dram", "link")


def identity(record: Dict[str, object]) -> tuple:
    return tuple(record.get(key) for key in IDENTITY_KEYS)


def required_keys(record: Dict[str, object]) -> List[str]:
    """The full current schema for one record."""
    required = list(BASE_KEYS)
    workload = record.get("workload")
    if workload is not None:
        required += list(WORKLOAD_KEYS.get(workload, ()))
    return required


def _missing(record: Dict[str, object], required: List[str]) -> List[str]:
    return [key for key in required
            if key not in record or record[key] is None]


def validate(record: Dict[str, object],
             existing: List[Dict[str, object]]) -> None:
    """Reject a malformed or duplicate append (raises ``ValueError``).

    Only the *new* record is judged; historical rows predating a schema
    key (e.g. ``link`` before the link-kernel axis existed) stay valid.
    """
    workload = record.get("workload")
    missing = _missing(record, required_keys(record))
    if missing:
        raise ValueError(
            f"record {identity(record)!r} is missing required keys "
            f"{missing} (workload schema {workload!r})"
        )
    if existing:
        last = existing[-1].get("timestamp")
        now = record.get("timestamp")
        if last and now and str(now) < str(last):
            raise ValueError(
                f"timestamp {now!r} precedes the trajectory's last "
                f"record ({last!r}); appends must be monotonic"
            )
    if workload is not None:
        key = identity(record)
        if any(identity(row) == key for row in existing):
            raise ValueError(
                f"duplicate row for identity {key!r}: this "
                f"label+workload+config was already measured -- pick a "
                f"fresh label instead of shadowing the committed row"
            )


def append(record: Dict[str, object],
           path: Optional[str] = None) -> Dict[str, object]:
    """Append one record (timestamp and derived rate filled in)."""
    path = os.path.normpath(path or DEFAULT_PATH)
    record = dict(record)
    record.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                                 time.gmtime()))
    wall = record.get("wall_s")
    points = record.get("points")
    if wall and points and "points_per_s" not in record:
        record["points_per_s"] = round(points / wall, 3)
    records = load(path)
    validate(record, records)
    records.append(record)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as fp:
        json.dump(records, fp, indent=2, sort_keys=True)
        fp.write("\n")
    os.replace(tmp, path)
    return record


def check(path: str) -> List[str]:
    """Validate a whole trajectory file against the append rules.

    Replays the ordering and duplicate-identity rules over every
    record; returns the problems found (empty list = clean).  CI gates
    committed BENCH files with this so a hand-edited or merge-mangled
    trajectory fails loudly.

    Schema keys are *grandfathered* the same way appends were: rows
    appended before a workload key existed (e.g. ``link`` before the
    link-kernel axis) were valid then and stay valid now.  A replay
    cannot date individual rows, so the rule is monotone instead: once
    any row of a workload satisfies the full current schema, every
    later row of that workload must too -- and the *newest* row of
    each workload always must, so the row CI just appended is judged
    against the full schema even in a fresh file.
    """
    problems: List[str] = []
    try:
        with open(path) as fp:
            records = json.load(fp)
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    except ValueError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    if not isinstance(records, list):
        return [f"{path}: top level must be a JSON array"]
    newest: Dict[object, int] = {
        record.get("workload"): index
        for index, record in enumerate(records)
        if isinstance(record, dict)
    }
    ratified: Dict[object, bool] = {}
    for index, record in enumerate(records):
        if not isinstance(record, dict):
            problems.append(f"{path}[{index}]: record is not an object")
            continue
        workload = record.get("workload")
        required = required_keys(record)
        missing = _missing(record, required)
        strict = ratified.get(workload) or index == newest[workload]
        if missing and strict:
            problems.append(
                f"{path}[{index}]: record {identity(record)!r} is "
                f"missing required keys {missing} "
                f"(workload schema {workload!r})"
            )
        if not missing:
            ratified[workload] = True
        prior = [row for row in records[:index] if isinstance(row, dict)]
        if prior:
            last = prior[-1].get("timestamp")
            now = record.get("timestamp")
            if last and now and str(now) < str(last):
                problems.append(
                    f"{path}[{index}]: timestamp {now!r} precedes the "
                    f"previous record ({last!r}); appends must be "
                    f"monotonic"
                )
        if workload is not None:
            key = identity(record)
            if any(identity(row) == key for row in prior):
                problems.append(
                    f"{path}[{index}]: duplicate row for identity "
                    f"{key!r}"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append one sweep timing record to BENCH_sweep.json"
    )
    parser.add_argument("--check", default=None, metavar="PATH",
                        help="validate an existing trajectory file "
                             "instead of appending (exit 1 on problems)")
    parser.add_argument("--label",
                        help="who measured (e.g. ci, bench, local)")
    parser.add_argument("--figures", default="",
                        help="comma-separated figure names swept")
    parser.add_argument("--workers", type=int)
    parser.add_argument("--points", type=int)
    parser.add_argument("--simulated", type=int)
    parser.add_argument("--wall-s", type=float)
    parser.add_argument("--trace-length", type=int)
    parser.add_argument("--out", default=None,
                        help=f"trajectory file (default {DEFAULT_PATH})")
    args = parser.parse_args(argv)
    if args.check is not None:
        problems = check(args.check)
        for problem in problems:
            print(problem, file=sys.stderr)
        if not problems:
            print(f"{args.check}: OK")
        return 1 if problems else 0
    missing = [name for name in ("label", "workers", "points",
                                 "simulated", "wall_s", "trace_length")
               if getattr(args, name) is None]
    if missing:
        parser.error(
            "the following arguments are required: "
            + ", ".join(f"--{name.replace('_', '-')}" for name in missing)
        )
    record = append(
        {
            "label": args.label,
            "figures": [f for f in args.figures.split(",") if f],
            "workers": args.workers,
            "points": args.points,
            "simulated": args.simulated,
            "wall_s": args.wall_s,
            "trace_length": args.trace_length,
        },
        path=args.out,
    )
    print(json.dumps(record, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
