#!/usr/bin/env python
"""Append sweep-performance records to ``BENCH_sweep.json``.

The benchmark harness (``benchmarks/bench_sweep.py``) and CI call this
after timing a sweep, building a wall-time / points-per-second
trajectory across commits:

    PYTHONPATH=src python tools/bench_trajectory.py \
        --label ci --figures fig9 --workers 2 \
        --points 13 --simulated 13 --wall-s 1.93 --trace-length 400

``BENCH_sweep.json`` is a JSON array of records; :func:`append` is the
importable form.  Writes are atomic (tmp + ``os.replace``) and a
corrupt or missing file restarts the trajectory instead of crashing.

``benchmarks/bench_simcore.py`` reuses :func:`append` for
``BENCH_sim.json``, whose rows the ratio gates in
``tools/check_kernel_perf.py`` machine-compare.  To keep that file
comparable, :func:`validate` rejects malformed appends before they land:
every record needs the base keys, workload rows need their per-workload
schema (:data:`WORKLOAD_KEYS`), timestamps must be monotonic within the
trajectory, and a workload row whose identity (label + workload +
config/backend axes) already exists is refused -- re-measuring means
choosing a fresh label, never silently shadowing a committed sibling.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sweep.json"
)


def load(path: Optional[str] = None) -> List[Dict[str, object]]:
    """The current trajectory; tolerant of a missing/corrupt file."""
    path = os.path.normpath(path or DEFAULT_PATH)
    try:
        with open(path) as fp:
            records = json.load(fp)
        return records if isinstance(records, list) else []
    except (OSError, ValueError):
        return []


#: Keys every record must carry, whatever produced it.
BASE_KEYS = ("label", "wall_s")

#: Extra required keys per ``workload`` (the BENCH_sim.json rows).  A
#: workload not listed here only needs :data:`BASE_KEYS` -- the schema
#: constrains the rows the perf gates consume, it does not enumerate
#: every experiment anyone may ever record.
WORKLOAD_KEYS = {
    "engine_only": ("events", "events_per_s", "events_dispatched"),
    "channel_only": ("events", "events_per_s", "events_dispatched",
                     "dram"),
    "long_idle": ("events", "events_per_s", "events_dispatched",
                  "config"),
    "fig9_segment": ("events", "events_per_s", "events_dispatched",
                     "config", "dram", "link", "schemes",
                     "per_scheme_events", "trace_length"),
    "link_pacer": ("events", "events_per_s", "events_dispatched",
                   "link"),
}

#: What makes two workload rows "the same measurement": the sibling
#: matchers in ``check_kernel_perf`` key on exactly these columns.
IDENTITY_KEYS = ("label", "workload", "config", "dram", "link")


def identity(record: Dict[str, object]) -> tuple:
    return tuple(record.get(key) for key in IDENTITY_KEYS)


def validate(record: Dict[str, object],
             existing: List[Dict[str, object]]) -> None:
    """Reject a malformed or duplicate append (raises ``ValueError``).

    Only the *new* record is judged; historical rows predating a schema
    key (e.g. ``link`` before the link-kernel axis existed) stay valid.
    """
    required = list(BASE_KEYS)
    workload = record.get("workload")
    if workload is not None:
        required += list(WORKLOAD_KEYS.get(workload, ()))
    missing = [key for key in required
               if key not in record or record[key] is None]
    if missing:
        raise ValueError(
            f"record {identity(record)!r} is missing required keys "
            f"{missing} (workload schema {workload!r})"
        )
    if existing:
        last = existing[-1].get("timestamp")
        now = record.get("timestamp")
        if last and now and str(now) < str(last):
            raise ValueError(
                f"timestamp {now!r} precedes the trajectory's last "
                f"record ({last!r}); appends must be monotonic"
            )
    if workload is not None:
        key = identity(record)
        if any(identity(row) == key for row in existing):
            raise ValueError(
                f"duplicate row for identity {key!r}: this "
                f"label+workload+config was already measured -- pick a "
                f"fresh label instead of shadowing the committed row"
            )


def append(record: Dict[str, object],
           path: Optional[str] = None) -> Dict[str, object]:
    """Append one record (timestamp and derived rate filled in)."""
    path = os.path.normpath(path or DEFAULT_PATH)
    record = dict(record)
    record.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                                 time.gmtime()))
    wall = record.get("wall_s")
    points = record.get("points")
    if wall and points and "points_per_s" not in record:
        record["points_per_s"] = round(points / wall, 3)
    records = load(path)
    validate(record, records)
    records.append(record)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as fp:
        json.dump(records, fp, indent=2, sort_keys=True)
        fp.write("\n")
    os.replace(tmp, path)
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append one sweep timing record to BENCH_sweep.json"
    )
    parser.add_argument("--label", required=True,
                        help="who measured (e.g. ci, bench, local)")
    parser.add_argument("--figures", default="",
                        help="comma-separated figure names swept")
    parser.add_argument("--workers", type=int, required=True)
    parser.add_argument("--points", type=int, required=True)
    parser.add_argument("--simulated", type=int, required=True)
    parser.add_argument("--wall-s", type=float, required=True)
    parser.add_argument("--trace-length", type=int, required=True)
    parser.add_argument("--out", default=None,
                        help=f"trajectory file (default {DEFAULT_PATH})")
    args = parser.parse_args(argv)
    record = append(
        {
            "label": args.label,
            "figures": [f for f in args.figures.split(",") if f],
            "workers": args.workers,
            "points": args.points,
            "simulated": args.simulated,
            "wall_s": args.wall_s,
            "trace_length": args.trace_length,
        },
        path=args.out,
    )
    print(json.dumps(record, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
