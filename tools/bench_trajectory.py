#!/usr/bin/env python
"""Append sweep-performance records to ``BENCH_sweep.json``.

The benchmark harness (``benchmarks/bench_sweep.py``) and CI call this
after timing a sweep, building a wall-time / points-per-second
trajectory across commits:

    PYTHONPATH=src python tools/bench_trajectory.py \
        --label ci --figures fig9 --workers 2 \
        --points 13 --simulated 13 --wall-s 1.93 --trace-length 400

``BENCH_sweep.json`` is a JSON array of records; :func:`append` is the
importable form.  Writes are atomic (tmp + ``os.replace``) and a
corrupt or missing file restarts the trajectory instead of crashing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional

DEFAULT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sweep.json"
)


def load(path: Optional[str] = None) -> List[Dict[str, object]]:
    """The current trajectory; tolerant of a missing/corrupt file."""
    path = os.path.normpath(path or DEFAULT_PATH)
    try:
        with open(path) as fp:
            records = json.load(fp)
        return records if isinstance(records, list) else []
    except (OSError, ValueError):
        return []


def append(record: Dict[str, object],
           path: Optional[str] = None) -> Dict[str, object]:
    """Append one record (timestamp and derived rate filled in)."""
    path = os.path.normpath(path or DEFAULT_PATH)
    record = dict(record)
    record.setdefault("timestamp", time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                                 time.gmtime()))
    wall = record.get("wall_s")
    points = record.get("points")
    if wall and points and "points_per_s" not in record:
        record["points_per_s"] = round(points / wall, 3)
    records = load(path)
    records.append(record)
    tmp = f"{path}.tmp-{os.getpid()}"
    with open(tmp, "w") as fp:
        json.dump(records, fp, indent=2, sort_keys=True)
        fp.write("\n")
    os.replace(tmp, path)
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="append one sweep timing record to BENCH_sweep.json"
    )
    parser.add_argument("--label", required=True,
                        help="who measured (e.g. ci, bench, local)")
    parser.add_argument("--figures", default="",
                        help="comma-separated figure names swept")
    parser.add_argument("--workers", type=int, required=True)
    parser.add_argument("--points", type=int, required=True)
    parser.add_argument("--simulated", type=int, required=True)
    parser.add_argument("--wall-s", type=float, required=True)
    parser.add_argument("--trace-length", type=int, required=True)
    parser.add_argument("--out", default=None,
                        help=f"trajectory file (default {DEFAULT_PATH})")
    args = parser.parse_args(argv)
    record = append(
        {
            "label": args.label,
            "figures": [f for f in args.figures.split(",") if f],
            "workers": args.workers,
            "points": args.points,
            "simulated": args.simulated,
            "wall_s": args.wall_s,
            "trace_length": args.trace_length,
        },
        path=args.out,
    )
    print(json.dumps(record, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
