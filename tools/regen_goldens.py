#!/usr/bin/env python
"""Regenerate the committed golden trace digests.

Run after an *intentional* timing-behaviour change:

    PYTHONPATH=src python tools/regen_goldens.py

and commit the updated ``tests/obs/golden_digests.json`` together with
the change that moved the digests, explaining why in the commit message.
Each scheme is run twice and must self-agree before anything is written;
a mismatch means nondeterminism crept into the model and there is
nothing sane to pin.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.obs.golden import (  # noqa: E402  (path shim above)
    GOLDEN_BENCHMARK,
    GOLDEN_SCHEMES,
    GOLDEN_TRACE_LENGTH,
    golden_digest,
)
from repro.scenarios import golden_scenario_digests  # noqa: E402

OUT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..", "tests", "obs", "golden_digests.json",
)


def main() -> int:
    digests = {}
    for scheme in GOLDEN_SCHEMES:
        first = golden_digest(scheme)
        second = golden_digest(scheme)
        if first != second:
            print(f"FATAL: {scheme} is nondeterministic "
                  f"({first[:16]}... vs {second[:16]}...)", file=sys.stderr)
            return 1
        digests[scheme] = first
        print(f"{scheme:<12} {first}")
    scenario = golden_scenario_digests()
    if scenario != golden_scenario_digests():
        print("FATAL: golden scenario is nondeterministic", file=sys.stderr)
        return 1
    for kind, digest in sorted(scenario.items()):
        print(f"scenario.{kind:<8} {digest}")
    doc = {
        "benchmark": GOLDEN_BENCHMARK,
        "trace_length": GOLDEN_TRACE_LENGTH,
        "digests": digests,
        "scenario": scenario,
    }
    with open(os.path.normpath(OUT_PATH), "w") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {os.path.normpath(OUT_PATH)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
