"""Ablation: BOB link latency (the paper charges 15 ns, citing [10]).

D-ORAM taxes every NS access on the BOB links; this sweep quantifies how
sensitive the headline result is to that constant.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.bob.link import LinkParams
from repro.core.schemes import run_scheme
from repro.sim.engine import ns

BENCH = "li"


def test_link_latency(benchmark):
    def sweep():
        base = run_scheme(
            "baseline", BENCH, experiments.DEFAULT_TRACE_LENGTH
        ).ns_mean_time()
        out = {}
        for one_way_ns in (2.5, 7.5, 25.0):
            params = LinkParams(latency=ns(one_way_ns))
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH,
                link_params=params,
            )
            out[f"{2 * one_way_ns:.0f}ns_rt"] = {
                "vs_baseline": result.ns_mean_time() / base,
                "read_lat_ns": result.read_latency_ns(),
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: link round-trip latency (D-ORAM vs Baseline)",
               data)

    # Slower links erode the win monotonically.
    assert (data["5ns_rt"]["read_lat_ns"]
            < data["50ns_rt"]["read_lat_ns"])
    # At the paper's 15 ns, D-ORAM still wins.
    assert data["15ns_rt"]["vs_baseline"] < 1.0
