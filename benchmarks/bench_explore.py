"""Explore-loop performance: analytical triage vs. brute-force DES.

Times ``doram explore`` on the smoke grid against the counterfactual
full sweep of the same grid and records the trajectory in
``BENCH_explore.json`` (``tools/bench_trajectory.py``'s ``explore``
workload schema):

* **explore** -- anchors + calibrated triage + selective simulation;
  asserted to stay inside the DES budget (``budget_frac`` of the
  grid);
* **brute force** -- every grid point simulated, the cost explore
  avoids; the ratio is *reported*, not asserted, because it scales
  with how much of the grid the frontier band covers.

Frontier correctness (explore's surface == the brute-force Pareto
front under affine truth) is enforced by
``tests/analysis/test_explore.py``; this file only measures.
"""

import os
import sys
import time

from repro.analysis.explore import (
    DEFAULT_BENCH_PATH,
    bench_record,
    build_grid,
    explore,
    metrics_from_payload,
    pareto_indices,
)
from repro.analysis.sweep import ResultStore, run_sweep

_TOOLS = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "tools")
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import bench_trajectory  # noqa: E402  (path shim above)

TRACE_LENGTH = int(os.environ.get("DORAM_TRACE_LENGTH", "2500")) // 10

#: Re-measuring an identity (label+workload+config) is refused by the
#: trajectory schema, so CI must append under its own label.
LABEL = os.environ.get("DORAM_BENCH_LABEL", "bench")


def test_explore_vs_brute_force(benchmark, tmp_path):
    grid = build_grid("smoke", TRACE_LENGTH)
    store = ResultStore(str(tmp_path / "store"))

    started = time.monotonic()
    result = benchmark.pedantic(
        lambda: explore(grid, store=store, workers=1, budget_frac=0.5,
                        seed=1),
        rounds=1, iterations=1,
    )
    explore_wall = time.monotonic() - started
    assert result.simulated <= result.budget
    print(f"explore    {result.grid_points:3d} points, "
          f"{result.simulated} simulated "
          f"({result.sim_fraction:.0%}; skipped "
          f"{result.des_points_skipped_frac:.0%}) in {result.rounds} "
          f"round(s), wall={explore_wall:.2f}s")

    started = time.monotonic()
    brute = run_sweep(grid, workers=1, store=None)
    brute_wall = time.monotonic() - started
    assert not brute.failed
    front = pareto_indices([
        metrics_from_payload(brute.payloads[p]) for p in grid
    ])
    print(f"brute      {brute.total:3d} points simulated, "
          f"frontier={len(front)}, wall={brute_wall:.2f}s")
    if explore_wall > 0:
        print(f"saving     {brute_wall / explore_wall:.2f}x "
              f"(informal; tracks the skipped fraction)")

    record = bench_record(result, LABEL, "smoke", TRACE_LENGTH,
                          explore_wall)
    record["brute_wall_s"] = round(brute_wall, 3)
    bench_trajectory.append(record, path=DEFAULT_BENCH_PATH)
