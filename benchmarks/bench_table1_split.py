"""Table I: tree-split space distribution and extra messages.

Paper values (space): k=1 -> 50.0 % / 16.7 %, k=2 -> 25.0 % / 25.0 %,
k=3 -> 12.5 % / 29.2 %.  Messages: 4k short reads + 4k responses + 4k
writes on the secure channel, m in [k, 2k] per normal channel.
"""

import pytest

from conftest import print_rows

from repro.analysis import experiments


def test_table1(benchmark):
    rows = benchmark.pedantic(experiments.table1, rounds=1, iterations=1)
    data = {
        f"k={row['k']}": {
            "model_sec": row["secure_share"],
            "paper_sec": row["paper_secure"],
            "model_nrm": row["normal_share"],
            "paper_nrm": row["paper_normal"],
            "layout_sec": row["layout_secure"],
            "layout_nrm": row["layout_normal"],
            "sec_msgs": row["extra_secure_msgs"],
        }
        for row in rows
    }
    print_rows("Table I: space distribution & messages", data)
    for row in rows:
        assert row["secure_share"] == pytest.approx(row["paper_secure"],
                                                    abs=0.001)
        assert row["layout_normal"] == pytest.approx(row["paper_normal"],
                                                     abs=0.01)
