"""Ablation: bandwidth-preallocation threshold ([39]; Section IV uses 50 %).

The threshold splits secure-channel scheduling slots between the ORAM
engine and co-located NS traffic.  Favoring NS-Apps speeds them up at
the S-App's expense, and vice versa -- the 50 % point balances the two
slowdowns, which is exactly why the paper picked it.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme

BENCH = "li"


def test_share_threshold(benchmark):
    def sweep():
        out = {}
        for share in (0.2, 0.5, 0.8):
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH,
                secure_share=share,
            )
            out[f"sec={share}"] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app["oram_response_ns"],
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: secure bandwidth share (D-ORAM, libq)", data)

    # Giving the ORAM more slots cannot make it slower.
    assert (data["sec=0.8"]["oram_resp_ns"]
            <= data["sec=0.2"]["oram_resp_ns"] * 1.10)
