"""Fig. 13: NS-App memory access latency reduction.

Paper claims: with D-ORAM+1 / D-ORAM/4, NS read latency falls to ~70 %
of Baseline and write latency to ~48 %.
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments

PAPER = {"read": 0.70, "write": 0.48}


def test_fig13(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig13(codes), rounds=1, iterations=1
    )
    print_rows(
        "Fig. 13: NS access latency vs Baseline", data,
        paper_note=f"read ~{PAPER['read']}, write ~{PAPER['write']}",
    )
    gmean = data["gmean"]
    # Shape: both optimized schemes reduce read and write latency on
    # average.  (The paper's per-op split -- writes dropping to ~48 % --
    # shows on the streaming benchmarks; pointer-chasers keep their
    # writes closer to baseline because their random-row writes share
    # drain windows with the ORAM's bursts.)
    assert gmean["doram/4_read"] < 1.0
    assert gmean["doram/4_write"] < 1.0
    assert gmean["doram+1_read"] < 1.0
