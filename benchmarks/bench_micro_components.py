"""Microbenchmarks of the substrate components.

Unlike the figure benches (single simulations), these use
pytest-benchmark as intended -- repeated timed rounds -- to track the
throughput of the hot building blocks: AES, the functional ORAM access,
the DRAM channel service loop, and the event engine.
"""

import random

from repro.crypto.aes import AES128
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.sim.engine import Engine


def test_aes_block_encrypt(benchmark):
    aes = AES128(b"K" * 16)
    block = bytes(range(16))
    benchmark(aes.encrypt_block, block)


def test_aes_otp_72_bytes(benchmark):
    aes = AES128(b"K" * 16)
    counter = [0]

    def otp():
        counter[0] += 64
        return aes.keystream(1, counter[0], 72)

    benchmark(otp)


def test_functional_oram_access(benchmark):
    oram = PathOram(
        OramConfig(leaf_level=8, treetop_levels=2, subtree_levels=3), seed=1
    )
    rng = random.Random(1)
    n = oram.config.num_user_blocks

    benchmark(lambda: oram.read(rng.randrange(n)))


def test_dram_channel_throughput(benchmark):
    def service_burst():
        eng = Engine()
        channel = Channel(eng, "ch")
        for i in range(64):
            channel.enqueue(
                MemRequest(OpType.READ, 0, 0, bank=i % 8, row=i // 8, col=0)
            )
        eng.run()
        return eng.now

    benchmark(service_burst)


def test_event_engine_dispatch(benchmark):
    def chain():
        eng = Engine()
        state = {"n": 0}

        def step():
            state["n"] += 1
            if state["n"] < 1000:
                eng.after(1, step)

        eng.at(0, step)
        eng.run()
        return state["n"]

    benchmark(chain)
