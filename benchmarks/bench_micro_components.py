"""Microbenchmarks of the substrate components.

Unlike the figure benches (single simulations), these use
pytest-benchmark as intended -- repeated timed rounds -- to track the
throughput of the hot building blocks: AES, the functional ORAM access,
the DRAM channel service loop, and the event engine.
"""

import os
import random

from repro.bob.channel import BobChannel
from repro.core.delegator import OramSequencer
from repro.core.link_kernel import link_classes
from repro.crypto.aes import AES128
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.oram.config import OramConfig
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.oram.path_oram import PathOram
from repro.sim.engine import Engine


def test_aes_block_encrypt(benchmark):
    aes = AES128(b"K" * 16)
    block = bytes(range(16))
    benchmark(aes.encrypt_block, block)


def test_aes_otp_72_bytes(benchmark):
    aes = AES128(b"K" * 16)
    counter = [0]

    def otp():
        counter[0] += 64
        return aes.keystream(1, counter[0], 72)

    benchmark(otp)


def test_functional_oram_access(benchmark):
    oram = PathOram(
        OramConfig(leaf_level=8, treetop_levels=2, subtree_levels=3), seed=1
    )
    rng = random.Random(1)
    n = oram.config.num_user_blocks

    benchmark(lambda: oram.read(rng.randrange(n)))


def test_dram_channel_throughput(benchmark):
    def service_burst():
        eng = Engine()
        channel = Channel(eng, "ch")
        for i in range(64):
            channel.enqueue(
                MemRequest(OpType.READ, 0, 0, bank=i % 8, row=i // 8, col=0)
            )
        eng.run()
        return eng.now

    benchmark(service_burst)


def _link_pacer_run(kernel, n_periods=400):
    """``n_periods`` pacer round trips through the secure-link pipeline.

    The ORAM tree is the smallest legal one (one fetched level), so the
    run isolates what the link kernel macro-steps: pacer slot issue,
    72 B down-transfer, SD service, up-transfer, CPU decrypt hop.  The
    legacy/kernel rows are same-run siblings -- the wall-time gap is the
    link+pacer win, attributable separately from the DRAM kernel's.
    """
    prior = os.environ.get("DORAM_LINK")
    os.environ["DORAM_LINK"] = "kernel" if kernel else "legacy"
    try:
        eng = Engine()
    finally:
        if prior is None:
            del os.environ["DORAM_LINK"]
        else:
            os.environ["DORAM_LINK"] = prior
    frontend_cls, backend_cls, delegator_cls = link_classes(eng)
    subs = [Channel(eng, "micro0.0")]
    bob = BobChannel(eng, 0, subs)
    delegator = delegator_cls(eng, bob, {})
    cfg = OramConfig(leaf_level=2, treetop_levels=2, subtree_levels=3)
    layout = OramLayout(cfg, home_targets=[(0, 0)])
    controller = OramController(eng, cfg, layout, delegator.sink, seed=1)
    delegator.sequencer = OramSequencer(controller)
    backend = backend_cls(eng, bob, delegator)
    frontend = frontend_cls(eng, backend, t_cycles=50)
    done = [0]

    def count(_time):
        done[0] += 1
        if done[0] >= n_periods:
            eng.stop()

    for _ in range(n_periods):
        frontend.issue(OpType.READ, done[0], 0, count)
        if not frontend.can_accept(OpType.READ):
            break
    # Refill as responses drain the queue.
    def refill():
        while frontend.can_accept(OpType.READ):
            frontend.issue(OpType.READ, 0, 0, count)
        frontend.notify_on_space(refill)

    frontend.notify_on_space(refill)
    frontend.start()
    eng.run()
    return eng.raw_events_dispatched


def test_link_pacer_roundtrip_legacy(benchmark):
    benchmark(_link_pacer_run, False)


def test_link_pacer_roundtrip_kernel(benchmark):
    benchmark(_link_pacer_run, True)


def test_event_engine_dispatch(benchmark):
    def chain():
        eng = Engine()
        state = {"n": 0}

        def step():
            state["n"] += 1
            if state["n"] < 1000:
                eng.after(1, step)

        eng.at(0, step)
        eng.run()
        return state["n"]

    benchmark(chain)
