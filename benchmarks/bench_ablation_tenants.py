"""Ablation: multiple protected tenants behind one SD (extension).

Section III-C motivates the tree split with a two-S-App deployment; this
sweep measures what tenant count costs.  The SD's single engine
serializes trees, so per-tenant ORAM latency grows ~linearly while the
fixed-rate guard keeps the co-runners' cost nearly flat.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme

BENCH = "li"


def test_tenant_count(benchmark):
    def sweep():
        out = {}
        for tenants in (1, 2, 3):
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH,
                num_ns_apps=4, num_s_apps=tenants,
            )
            out[f"{tenants}S"] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app["oram_response_ns"],
                "accesses": int(result.s_app["oram_accesses"]),
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: protected tenants per SD (4 NS-Apps, libq)",
               data)

    # SD serialization: per-access latency grows with tenant count.
    assert data["2S"]["oram_resp_ns"] > data["1S"]["oram_resp_ns"] * 1.3
    assert data["3S"]["oram_resp_ns"] > data["2S"]["oram_resp_ns"]
    # Co-runners stay within a modest envelope.
    assert data["3S"]["ns_time_us"] < data["1S"]["ns_time_us"] * 1.5
