"""Ablation: subtree layout height ([32]; Section IV uses 7-level subtrees).

The subtree packing is what turns a path access into row-buffer hits:
with height 1 the layout degenerates to level-order (every level a new
row region); with height 7 a path's blocks per sub-channel fall into ~1
row per subtree segment.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme
from repro.oram.config import OramConfig

BENCH = "li"


def test_subtree_height(benchmark):
    def sweep():
        out = {}
        for height in (1, 7):
            oram = OramConfig(subtree_levels=height)
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH, oram=oram,
            )
            secure_rows = [
                row for name, row in result.channels.items()
                if name.startswith("ch0")
            ]
            hit_rate = sum(r["row_hit_rate"] for r in secure_rows) / 4
            out[f"h={height}"] = {
                "rowhit": hit_rate,
                "oram_resp_ns": result.s_app["oram_response_ns"],
                "ns_time_us": result.ns_mean_ns() / 1000,
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: subtree height (secure sub-channels, libq)", data)

    # The 7-level packing must deliver more row hits than level-order.
    assert data["h=7"]["rowhit"] > data["h=1"]["rowhit"]
