"""Ablation: ORAM protocol alternatives from the related work (Section VI).

Two comparisons the paper mentions but does not evaluate:

* **Ring ORAM** -- protocol-level bandwidth reduction: amortized physical
  blocks per access vs Path ORAM, measured on the functional layer.
* **Fork Path** [44] -- read merging across consecutive path accesses,
  measured in the timing engine.  With uniformly random paths and the
  3-level tree-top cache, the exploitable overlap below the cache is
  tiny -- this bench quantifies exactly how much the tree-top cache
  subsumes Fork Path's opportunity.
"""

import random

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme
from repro.oram.config import OramConfig
from repro.oram.path_oram import PathOram
from repro.oram.ring_oram import RingOram


def test_ring_vs_path_bandwidth(benchmark):
    def measure():
        cfg = OramConfig(leaf_level=8, treetop_levels=0, subtree_levels=2)
        ring = RingOram(cfg, seed=1)
        rng = random.Random(1)
        ops = [rng.randrange(cfg.num_user_blocks) for _ in range(400)]
        for b in ops:
            ring.read(b)
        path_blocks = 2 * cfg.bucket_size * cfg.num_levels
        return {
            "path_oram": {"blocks/access": float(path_blocks)},
            "ring_oram": {"blocks/access": ring.amortized_blocks_per_access()},
        }

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_rows("Ablation: protocol bandwidth (functional, L=8, Z=4)", data)
    assert (data["ring_oram"]["blocks/access"]
            < data["path_oram"]["blocks/access"])


def test_short_read_merging(benchmark):
    """Footnote 1 of the paper: merge split-tree read packets.

    With k=2, plain D-ORAM+2 ships 8 short read packets per access over
    the secure link; merging coalesces them to <= 3 (one per normal
    channel), trimming link occupancy at zero protocol cost.
    """

    def measure():
        out = {}
        for label, merge in (("separate", False), ("merged", True)):
            result = run_scheme(
                "doram+2", "li", experiments.DEFAULT_TRACE_LENGTH,
                merge_short_reads=merge,
            )
            out[label] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app["oram_response_ns"],
                "short_pkts": float(result.s_app["remote_short_reads"]),
            }
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_rows("Ablation: split-tree read-packet merging (D-ORAM+2)", data)

    # >= 8/3 reduction in packet count; never slower for the S-App.
    assert data["merged"]["short_pkts"] < 0.5 * data["separate"]["short_pkts"]
    assert (data["merged"]["oram_resp_ns"]
            <= data["separate"]["oram_resp_ns"] * 1.05)


def test_fork_path_in_doram(benchmark):
    def measure():
        out = {}
        for label, fork in (("off", False), ("on", True)):
            result = run_scheme(
                "doram", "li", experiments.DEFAULT_TRACE_LENGTH,
                fork_path=fork,
            )
        # Report the last (fork=on) run's skip counter relative to the
        # traffic it saved from.
            secure_reads = sum(
                row["secure_reads"] for name, row in result.channels.items()
                if name.startswith("ch0")
            )
            out[f"fork_{label}"] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app["oram_response_ns"],
                "rds_per_access": secure_reads / result.s_app["oram_accesses"],
            }
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    print_rows("Ablation: Fork Path read merging (D-ORAM, libq)", data)
    # Fork Path removes the overlapping prefix's reads from each access
    # (totals across runs differ because faster accesses mean *more*
    # accesses in the same window -- hence the per-access metric).
    assert (data["fork_on"]["rds_per_access"]
            < data["fork_off"]["rds_per_access"])
