"""Fig. 10: Path ORAM tree expansion overhead.

Paper claims: relative to D-ORAM, k = 1/2/3 add +1.02 % / +2.01 % /
+3.29 % NS execution time (capacity grows 4 GB -> 8/16/32 GB).
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments

PAPER = {"k1": 1.0102, "k2": 1.0201, "k3": 1.0329}


def test_fig10(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig10(codes), rounds=1, iterations=1
    )
    print_rows(
        "Fig. 10: D-ORAM+k time relative to D-ORAM", data,
        paper_note=", ".join(f"{k}={v}" for k, v in PAPER.items()),
    )
    gmean = data["gmean"]
    # Shape: expansion overhead is small (single-digit % in the paper)
    # and the shallowest split is not worse than the deepest one.  The
    # paper's per-k deltas (1-3 %) are below this model's run-to-run
    # noise at reduced trace lengths, so strict monotonicity in k is not
    # asserted.
    assert gmean["k1"] <= gmean["k3"] * 1.05
    for k in ("k1", "k2", "k3"):
        assert 0.95 < gmean[k] < 1.25
