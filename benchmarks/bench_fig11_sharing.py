"""Fig. 11: secure-channel sharing sweep (c = 0..7).

Paper claims: the best c is workload-dependent -- some programs (bl, c2,
mu) prefer small c (keep NS traffic off the secure channel), others (le,
li, st, ti) prefer large c (use all the bandwidth); 7NS-3ch / 7NS-4ch
are shown for reference.
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments


def test_fig11(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig11(codes), rounds=1, iterations=1
    )
    print_rows("Fig. 11: time vs Baseline for c = 0..7", data)

    best_cs = {code: int(row["best_c"]) for code, row in data.items()}
    print(f"\nbest c per benchmark: {best_cs}")

    for code, row in data.items():
        sweep = [row[f"c{c}"] for c in range(8)]
        # Every sweep point must still beat or match Baseline closely --
        # D-ORAM never loses badly regardless of c.
        assert min(sweep) < 1.05
        # best_c really is the argmin.
        assert row[f"c{int(row['best_c'])}"] == min(sweep)
