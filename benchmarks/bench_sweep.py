"""Sweep-runner performance: serial vs. parallel vs. warm store.

Times the same Fig. 9 point set three ways and records the trajectory
in ``BENCH_sweep.json`` (see ``tools/bench_trajectory.py``):

* **serial** -- ``workers=1``, no store: the reference execution;
* **parallel** -- ``workers=DORAM_SWEEP_WORKERS`` (default: CPU count):
  on a multi-core runner this is expected ~2x faster at 4 workers; the
  speedup is *reported*, not asserted, because CI cores vary (this is
  the "informal" half of the acceptance bar);
* **warm store** -- everything already on disk: asserted to simulate
  exactly zero points (the strict half).

Determinism (parallel == serial bit-for-bit) is enforced by
``tests/analysis/test_sweep.py``; this file only measures.
"""

import os
import sys
import time

from conftest import bench_benchmarks

from repro.analysis.experiments import default_trace_length, figure_points
from repro.analysis.sweep import ResultStore, default_workers, run_sweep

_TOOLS = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "tools")
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import bench_trajectory  # noqa: E402  (path shim above)


def _points():
    codes = list(bench_benchmarks())[:1]
    return figure_points("fig9", codes, default_trace_length())


def _timed(label, **kwargs):
    points = _points()
    started = time.monotonic()
    result = run_sweep(points, **kwargs)
    wall = time.monotonic() - started
    print(f"{label:<10} {result.total:3d} points "
          f"({result.simulated} simulated, {result.store_hits} from store) "
          f"workers={result.workers} wall={wall:.2f}s "
          f"({result.total / wall:.1f} points/s)")
    return result, wall


def test_sweep_throughput(benchmark, tmp_path):
    store = ResultStore(str(tmp_path / "store"))
    serial, serial_wall = _timed("serial", workers=1, store=None)

    workers = default_workers()
    parallel, parallel_wall = benchmark.pedantic(
        lambda: _timed("parallel", workers=workers, store=store),
        rounds=1, iterations=1,
    )
    if workers > 1 and parallel_wall > 0:
        print(f"speedup    {serial_wall / parallel_wall:.2f}x "
              f"at {workers} workers (informal; cores vary)")

    warm, warm_wall = _timed("warm", workers=workers, store=store)
    assert warm.simulated == 0, "warm store must not re-simulate"
    assert warm.store_hits == warm.total == serial.total

    bench_trajectory.append({
        "label": "bench",
        "figures": ["fig9"],
        "workers": workers,
        "points": parallel.total,
        "simulated": parallel.simulated,
        "wall_s": round(parallel_wall, 3),
        "trace_length": default_trace_length(),
        "serial_wall_s": round(serial_wall, 3),
        "warm_wall_s": round(warm_wall, 3),
    })
