"""Ablation: the fixed-rate gap ``t`` (Section III-B chooses t = 50).

Smaller t = more aggressive dummy stream = stronger timing-channel cover
but more ORAM traffic; larger t starves the S-App.  This sweep exposes
the trade-off the paper's t = 50 sits on.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme

BENCH = "li"


def test_timing_guard_t(benchmark):
    def sweep():
        out = {}
        for t in (0, 50, 400, 2000):
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH, t_cycles=t,
            )
            out[f"t={t}"] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_accesses": result.s_app["oram_accesses"],
                "real_frac": result.s_app["oram_real_fraction"],
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: request gap t (D-ORAM, libq)", data)

    # Larger t -> fewer ORAM accesses in the same wall-clock window.
    assert data["t=2000"]["oram_accesses"] < data["t=0"]["oram_accesses"]
    # And a higher fraction of them are real (less dummy padding).
    assert data["t=2000"]["real_frac"] >= data["t=0"]["real_frac"]
