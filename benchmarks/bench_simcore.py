"""Simulation-core microbenchmarks: events/sec on the hot path.

Four workloads, from synthetic to whole-system, each timed once and
appended to ``BENCH_sim.json`` (see ``tools/bench_trajectory.py``):

* **engine_only** -- a handful of self-rearming callbacks churning the
  event queue: pure ``Engine.run()`` dispatch cost, no model code.
* **channel_only** -- one DRAM :class:`~repro.dram.channel.Channel`
  kept saturated with a deterministic read/write mix (row locality so
  FR-FCFS sees hits, misses, and conflicts): the DRAM service loop.
* **long_idle** -- sparse cores (MPKI ~1) over a long horizon: most
  simulated time is pipeline-only crunching between LLC misses, the
  event-census stress case (DESIGN.md section 9).  Recorded twice, once
  under the pre-census ``eager`` periodic mode and once lazy, so the
  trajectory shows the idle fast-forward win directly.
* **fig9_segment** -- ``run_scheme`` over a segment of the Fig. 9
  scheme set (baseline, doram, doram+1) on ``libq``: the workload the
  sweep runner is actually bottlenecked by.

The fig9_segment record is the acceptance metric for the hot-path
overhaul: its ``events_per_s`` must stay >= 2x the first (pre-overhaul)
``baseline``-labelled entry of the trajectory; the lazy long_idle record
must stay >= 2x its eager sibling.  Determinism of the *results* is
enforced elsewhere (tests/obs golden digests and the census-invariance
suite); this file only measures wall time.

Every record carries an ``events_dispatched`` column: the *raw* number
of callbacks the engine dispatched, as opposed to ``events``, the
logical census (dispatched + synthesized) that the golden results are
keyed to.  The gap between the two is the census win.

Scale knobs: ``DORAM_TRACE_LENGTH`` (fig9 segment accesses per core,
default 2000), ``DORAM_BENCH_LABEL`` (trajectory label, default
``bench``), and ``DORAM_BENCH_REPS`` (repetitions per workload, default
3; the *fastest* wall time is recorded, timeit-style, since shared
hosts add noise only in one direction).
"""

import os
import sys
import time

from repro.core.schemes import run_scheme
from repro.core.system import DirectRouter
from repro.cpu.core import Core
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType
from repro.sim.engine import Engine
from repro.trace.synthetic import SyntheticTrace, TraceParams, with_copy_seed

_TOOLS = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "tools")
)
if _TOOLS not in sys.path:
    sys.path.insert(0, _TOOLS)

import bench_trajectory  # noqa: E402  (path shim above)

BENCH_SIM_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_sim.json"
)

_LABEL = os.environ.get("DORAM_BENCH_LABEL", "bench")

FIG9_SCHEMES = ("baseline", "doram", "doram+1")
FIG9_BENCHMARK = "libq"


def _fig9_trace_length():
    return int(os.environ.get("DORAM_TRACE_LENGTH", "2000"))


def _reps():
    return max(1, int(os.environ.get("DORAM_BENCH_REPS", "3")))


def _best_of(fn, *args):
    """Run ``fn`` DORAM_BENCH_REPS times; return the rep with the least
    wall time (second element of the result tuple).  Determinism makes
    every rep's non-timing outputs identical, so only noise differs."""
    best = None
    for _ in range(_reps()):
        result = fn(*args)
        if best is None or result[1] < best[1]:
            best = result
    return best


def _append(workload, events, wall, **extra):
    record = {
        "label": _LABEL,
        "workload": workload,
        "events": events,
        "wall_s": round(wall, 4),
        "events_per_s": round(events / wall) if wall else 0,
    }
    record.update(extra)
    bench_trajectory.append(record, path=BENCH_SIM_PATH)
    print(f"{workload:<13} {events:>9,} events  wall={wall:6.3f}s  "
          f"({record['events_per_s']:,} events/s)")
    return record


# ---------------------------------------------------------------------------
# Workloads
# ---------------------------------------------------------------------------

def run_engine_only(total_events=300_000, actors=16):
    """Self-rearming callbacks: pure dispatch/scheduling churn."""
    eng = Engine()
    budget = [total_events]

    def make_actor(index):
        delay = 1 + (index % 7)

        def rearm():
            if budget[0] > 0:
                budget[0] -= 1
                eng.after(delay, rearm)

        return rearm

    for index in range(actors):
        eng.at(index % 3, make_actor(index))
    started = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - started
    return eng.events_dispatched, wall, eng.raw_events_dispatched


def run_channel_only(n_requests=60_000, channel_cls=Channel):
    """One saturated DRAM channel under a deterministic access mix."""
    eng = Engine()
    channel = channel_cls(eng, "bench0")
    num_banks = len(channel.banks)
    state = {"issued": 0}

    def feed(_time=None):
        issued = state["issued"]
        while issued < n_requests:
            op = OpType.WRITE if issued % 4 == 0 else OpType.READ
            if not channel.can_accept(op):
                break
            # Row locality: runs of same-row accesses per bank, with
            # periodic row changes so hits, closed banks, and conflicts
            # all occur.
            bank = issued % num_banks
            row = (issued // (num_banks * 16)) % 97
            channel.enqueue(MemRequest(
                op, 0, 0, bank=bank, row=row, on_complete=feed,
            ))
            issued += 1
        state["issued"] = issued

    feed()
    started = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - started
    assert state["issued"] == n_requests, "channel workload under-issued"
    return eng.events_dispatched, wall, eng.raw_events_dispatched


def run_long_idle(periodic=None, n_cores=1, accesses_per_core=6000, mpki=0.5):
    """A sparse trace-driven core: the idle fast-forward stress case.

    At MPKI 0.5 the core spends ~500 pipeline cycles between LLC
    misses, so nearly the whole event census is periodic core wakes with
    nothing else due -- exactly what the gap crunch and refresh batching
    elide.  One core on purpose: with the engine otherwise quiet the
    crunch can fast-forward whole gaps, whereas co-running cores pin
    ``Engine.peek_time()`` a cycle ahead and legitimately bound the skip
    (see DESIGN.md section 9).  ``periodic="eager"`` reproduces the
    pre-census engine for the comparison row.
    """
    eng = Engine(periodic=periodic)
    channels = {
        (0, 0): Channel(eng, "idle0"),
        (1, 0): Channel(eng, "idle1"),
    }
    params = TraceParams(mpki=mpki, seed=11)
    for app in range(n_cores):
        trace = SyntheticTrace(
            with_copy_seed(params, app), accesses_per_core
        ).generate()
        router = DirectRouter(
            eng, channels, targets=[(0, 0), (1, 0)],
            app_id=app, app_slot=app,
        )
        Core(eng, app, trace, router).start()
    started = time.perf_counter()
    eng.run()
    wall = time.perf_counter() - started
    return eng.events_dispatched, wall, eng.raw_events_dispatched


def run_fig9_segment(periodic=None, dram=None, link=None):
    """Whole-system runs over a Fig. 9 scheme segment."""
    if periodic:
        os.environ["DORAM_PERIODIC"] = periodic
    else:
        os.environ.pop("DORAM_PERIODIC", None)
    if dram:
        os.environ["DORAM_DRAM"] = dram
    else:
        os.environ.pop("DORAM_DRAM", None)
    if link:
        os.environ["DORAM_LINK"] = link
    else:
        os.environ.pop("DORAM_LINK", None)
    trace_length = _fig9_trace_length()
    events = 0
    raw_events = 0
    per_scheme = {}
    started = time.perf_counter()
    for scheme in FIG9_SCHEMES:
        result = run_scheme(scheme, FIG9_BENCHMARK, trace_length)
        events += result.events
        raw_events += result.raw_events
        per_scheme[scheme] = result.events
    wall = time.perf_counter() - started
    return events, wall, raw_events, per_scheme, trace_length


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------

def test_simcore_throughput(benchmark):
    events, wall, raw = _best_of(run_engine_only)
    _append("engine_only", events, wall, events_dispatched=raw)

    # Per-backend siblings, same machine (the PR-4 eager/lazy pairing
    # convention): the legacy channel is the oracle row, the SoA batch
    # kernel the candidate.  CI's perf smoke judges the kernel against
    # its same-run legacy sibling, never across hosts.
    from repro.dram.kernel import KernelChannel

    events, wall, raw = _best_of(run_channel_only)
    _append("channel_only", events, wall, events_dispatched=raw,
            dram="legacy")
    events, wall, raw = _best_of(run_channel_only, 60_000, KernelChannel)
    _append("channel_only", events, wall, events_dispatched=raw,
            dram="kernel")

    events, wall, raw = _best_of(run_long_idle, "eager")
    _append("long_idle", events, wall, events_dispatched=raw,
            config="eager")
    events, wall, raw = _best_of(run_long_idle)
    _append("long_idle", events, wall, events_dispatched=raw,
            config="lazy")

    # Same-machine eager sibling first: fig9 is noisy on shared hosts,
    # so the lazy row is judged against this pair, not across sessions.
    events, wall, raw, per_scheme, trace_length = _best_of(
        run_fig9_segment, "eager"
    )
    _append("fig9_segment", events, wall, events_dispatched=raw,
            config="eager", dram="legacy", link="legacy",
            schemes=list(FIG9_SCHEMES),
            per_scheme_events=per_scheme, trace_length=trace_length)

    (events, wall, raw, per_scheme, trace_length) = benchmark.pedantic(
        lambda: _best_of(run_fig9_segment), rounds=1, iterations=1,
    )
    _append("fig9_segment", events, wall, events_dispatched=raw,
            config="lazy", dram="legacy", link="legacy",
            schemes=list(FIG9_SCHEMES),
            per_scheme_events=per_scheme, trace_length=trace_length)

    # The backend-kernel siblings (lazy periodic mode, where chaining
    # and pipeline fusion are live).  Results are byte-identical to the
    # legacy rows -- the conformance suites pin that -- so ``events``
    # matches and only wall time and the raw dispatch census may
    # differ.  One axis at a time (the ratio gates in
    # tools/check_kernel_perf.py judge each against the pure-legacy
    # sibling above), plus the combined row for the trajectory.
    events, wall, raw, per_scheme, trace_length = _best_of(
        run_fig9_segment, None, "kernel"
    )
    _append("fig9_segment", events, wall, events_dispatched=raw,
            config="lazy", dram="kernel", link="legacy",
            schemes=list(FIG9_SCHEMES),
            per_scheme_events=per_scheme, trace_length=trace_length)

    events, wall, raw, per_scheme, trace_length = _best_of(
        run_fig9_segment, None, None, "kernel"
    )
    _append("fig9_segment", events, wall, events_dispatched=raw,
            config="lazy", dram="legacy", link="kernel",
            schemes=list(FIG9_SCHEMES),
            per_scheme_events=per_scheme, trace_length=trace_length)

    events, wall, raw, per_scheme, trace_length = _best_of(
        run_fig9_segment, None, "kernel", "kernel"
    )
    _append("fig9_segment", events, wall, events_dispatched=raw,
            config="lazy", dram="kernel", link="kernel",
            schemes=list(FIG9_SCHEMES),
            per_scheme_events=per_scheme, trace_length=trace_length)


if __name__ == "__main__":
    test = type("B", (), {})()

    class _Pedantic:
        @staticmethod
        def pedantic(fn, rounds=1, iterations=1):
            return fn()

    test_simcore_throughput(_Pedantic())
