"""Ablation: delegation substrate -- BOB unit vs on-DIMM bridge (III-F).

The paper sketches an alternative that keeps the direct-attached
parallel interface: put the secure delegator in an on-DIMM bridge chip
(UDIC [11]).  It predicts the offload still works "but tends to
introduce higher overhead": the bridge commands only one channel's
devices, so the ORAM loses the secure channel's 4x internal sub-channel
bandwidth.  This bench quantifies both halves of that prediction.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme

BENCH = "li"


def test_udic_vs_bob(benchmark):
    def sweep():
        out = {}
        for label, scheme, kw in (
            ("baseline", "baseline", {}),
            ("doram", "doram", {}),
            ("udic", "udic", {}),
            ("udic/0", "udic", {"c_limit": 0}),
        ):
            result = run_scheme(
                scheme, BENCH, experiments.DEFAULT_TRACE_LENGTH, **kw
            )
            out[label] = {
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app.get("oram_response_ns", 0.0),
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: delegation substrate (libq)", data)

    # The bridge pays for losing the 4x sub-channel fan-out: its single
    # DRAM channel saturates under the ORAM, so (1) the S-App's accesses
    # stretch and (2) NS data resident on that channel is crushed --
    # naive UDIC is *worse* than the on-chip baseline.
    assert (data["udic"]["oram_resp_ns"]
            > 1.5 * data["doram"]["oram_resp_ns"])
    assert data["udic"]["ns_time_us"] > data["doram"]["ns_time_us"]
    # Keeping NS-Apps off the bridge channel (c=0) recovers the offload
    # benefit for the co-runners, confirming III-F's "possible" -- while
    # the S-App keeps paying the single-channel ORAM penalty, which is
    # the "higher overhead".
    assert (data["udic/0"]["ns_time_us"]
            < data["baseline"]["ns_time_us"])
    assert (data["udic/0"]["oram_resp_ns"]
            > 1.5 * data["doram"]["oram_resp_ns"])
