"""Fig. 4: NS-App performance degradation under co-run scenarios.

Paper claims: with 1S7NS (Path ORAM) the NS-Apps average 90.6 % execution
time overhead over solo (worst case 5.26x); 7NS-3ch shows 57 % slowdown,
7NS-4ch 43 %; the secure-memory model lands in between.
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments

PAPER = {
    "baseline": "gmean ~1.906 (avg +90.6 %), worst 5.26x",
    "7ns-3ch": "gmean ~1.57",
    "7ns-4ch": "gmean ~1.43",
    "securemem": "between 7NS-4ch and Path ORAM",
}


def test_fig4(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig4(codes), rounds=1, iterations=1
    )
    summary = {
        scheme: {
            "best": rows["best"],
            "worst": rows["worst"],
            "gmean": rows["gmean"],
        }
        for scheme, rows in data.items()
    }
    print_rows(
        "Fig. 4: NS slowdown vs solo (1NS = 1.0)", summary,
        paper_note="; ".join(f"{k}: {v}" for k, v in PAPER.items()),
    )
    per_bench = {
        code: {scheme: data[scheme][code] for scheme in data}
        for code in codes
    }
    print_rows("Fig. 4 per-benchmark detail", per_bench)

    # Shape guards (who wins, roughly what factor).
    assert data["baseline"]["gmean"] > data["7ns-3ch"]["gmean"]
    assert data["7ns-3ch"]["gmean"] >= data["7ns-4ch"]["gmean"] * 0.98
    assert data["baseline"]["gmean"] > 1.4
