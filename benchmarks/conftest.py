"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` regenerates one table/figure of the paper: it
runs the corresponding driver from :mod:`repro.analysis.experiments`
exactly once under pytest-benchmark (``pedantic(rounds=1)`` -- these are
simulations, not microbenchmarks) and prints the same rows the paper
plots, next to the paper's reference numbers where the paper states
them.

Scale knobs (environment):

* ``DORAM_TRACE_LENGTH`` -- memory accesses per core per run
  (default 2500; the paper used 500 M instructions);
* ``DORAM_BENCHMARKS``   -- comma-separated benchmark codes to restrict
  the workload set (default: all 15 of Table III).

Results are cached in-process, so the whole suite shares runs (Fig. 9
reuses Fig. 11's sweep, etc.).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))


def bench_benchmarks():
    """Benchmark codes the harness should sweep."""
    env = os.environ.get("DORAM_BENCHMARKS", "").strip()
    if env:
        return tuple(code.strip() for code in env.split(","))
    from repro.analysis.experiments import ALL_BENCHMARKS
    return ALL_BENCHMARKS


def print_rows(title, data, paper_note=""):
    """Uniform table printer for keyed {row: {col: value}} data."""
    print(f"\n=== {title} ===")
    if paper_note:
        print(f"    paper: {paper_note}")
    first = next(iter(data.values()))
    cols = list(first.keys())
    header = "row".ljust(8) + "".join(str(c).rjust(11) for c in cols)
    print(header)
    for key, row in data.items():
        line = str(key).ljust(8)
        for col in cols:
            value = row[col]
            if isinstance(value, bool):
                line += str(value).rjust(11)
            elif isinstance(value, float):
                line += f"{value:11.3f}"
            else:
                line += str(value).rjust(11)
        print(line)
