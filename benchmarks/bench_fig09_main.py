"""Fig. 9: the headline result.

Paper claims (normalized NS execution time, Baseline = 1.0):
D-ORAM 0.875, D-ORAM/X 0.775 (the 22.5 % improvement), D-ORAM+1 0.886,
D-ORAM+1/4 0.814.
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments

PAPER_GMEAN = {
    "doram": 0.875,
    "doram_x": 0.775,
    "doram+1": 0.886,
    "doram+1/4": 0.814,
}


def test_fig9(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig9(codes), rounds=1, iterations=1
    )
    print_rows(
        "Fig. 9: normalized NS execution time (Baseline = 1.0)", data,
        paper_note=", ".join(f"{k}={v}" for k, v in PAPER_GMEAN.items()),
    )
    gmean = data["gmean"]

    # Shape guards: D-ORAM wins over Baseline; tuning (X) at least
    # matches D-ORAM; +1 costs little over D-ORAM.
    assert gmean["doram"] < 1.0
    assert gmean["doram_x"] <= gmean["doram"] + 1e-9
    assert gmean["doram+1"] < 1.0
    assert gmean["doram+1"] >= gmean["doram"] * 0.97
