"""Ablation: tree-top cache depth (design choice from [32], Section IV).

The paper caches the top 3 levels (21 of 24 levels fetched per access).
This sweep shows why: each cached level removes Z blocks from every
path access, cutting ORAM bandwidth demand and thus NS interference.
"""

from conftest import print_rows

from repro.analysis import experiments
from repro.core.schemes import run_scheme
from repro.oram.config import OramConfig

BENCH = "li"


def test_treetop_depth(benchmark):
    def sweep():
        out = {}
        for levels in (0, 3, 6):
            oram = OramConfig(treetop_levels=levels)
            result = run_scheme(
                "doram", BENCH, experiments.DEFAULT_TRACE_LENGTH, oram=oram,
            )
            out[f"top{levels}"] = {
                "blocks/access": oram.blocks_per_phase,
                "ns_time_us": result.ns_mean_ns() / 1000,
                "oram_resp_ns": result.s_app["oram_response_ns"],
            }
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_rows("Ablation: tree-top cache depth (D-ORAM, libq)", data)

    # More cached levels -> shorter ORAM responses.
    assert data["top6"]["oram_resp_ns"] < data["top0"]["oram_resp_ns"]
    # And never hurts the co-runners.
    assert data["top6"]["ns_time_us"] <= data["top0"]["ns_time_us"] * 1.05
