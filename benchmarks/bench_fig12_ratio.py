"""Fig. 12: the T25mix/T33 profiling rule vs the measured best c.

Paper claims: the profiled ratio (computed on a *different* trace
segment) predicts the best sharing category for 14 of 15 benchmarks (the
one exception, c2, sits at ratio ~1).
"""

from conftest import bench_benchmarks, print_rows

from repro.analysis import experiments


def test_fig12(benchmark):
    codes = bench_benchmarks()
    data = benchmark.pedantic(
        lambda: experiments.fig12(codes), rounds=1, iterations=1
    )
    print_rows("Fig. 12: profiled ratio vs best c", data)

    agreements = sum(1 for row in data.values() if row["agrees"])
    total = len(data)
    print(f"\nrule agreement: {agreements}/{total} "
          f"(paper: 14/15, one near-1.0 exception)")

    # The rule must do clearly better than chance; benchmarks whose
    # ratio is within 5 % of 1.0 are legitimately ambiguous (the paper's
    # own exception c2 is exactly this case).
    confident = {
        code: row for code, row in data.items()
        if abs(row["ratio"] - 1.0) > 0.05
    }
    if confident:
        confident_hits = sum(1 for r in confident.values() if r["agrees"])
        assert confident_hits >= len(confident) * 0.6
