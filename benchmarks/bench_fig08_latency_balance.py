"""Fig. 8: channel access-latency balance.

Paper claims: (a)/(b) fewer channels -> longer NS access latency;
(c) under D-ORAM the secure channel stays slower than the normal
channels (which motivates D-ORAM/c).
"""

from conftest import print_rows

from repro.analysis import experiments


def test_fig8(benchmark):
    data = benchmark.pedantic(
        lambda: experiments.fig8("libq"), rounds=1, iterations=1
    )
    print_rows("Fig. 8: NS access latency (ns)", {"libq": data})

    # (a)/(b): channel partitioning costs latency.
    assert data["solo_read_ns"] < data["ns4ch_read_ns"]
    assert data["ns4ch_read_ns"] <= data["ns3ch_read_ns"] * 1.02
    # (c): the ORAM-loaded secure channel is the slow one.
    assert data["doram_secure_ch_read_ns"] > data["doram_normal_ch_read_ns"]
