"""Pytest path shim: make ``src/`` importable without installation.

The offline evaluation environment has no ``wheel`` package, so
``pip install -e .`` cannot build editable metadata; this keeps
``pytest`` working from a plain checkout either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
