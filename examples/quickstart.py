"""Quickstart: the two layers of the D-ORAM reproduction in two minutes.

1. The *functional* layer: a real Path ORAM you can store data in, with
   AES-encrypted buckets living in (simulated) untrusted memory.
2. The *timing* layer: simulate one co-run scenario from the paper and
   read off the headline metric.

Run:  python examples/quickstart.py
"""

from repro.crypto import EncryptedBucketCodec
from repro.oram import OramConfig, PathOram


def functional_demo() -> None:
    print("=" * 64)
    print("1. Functional Path ORAM (Fig. 3 of the paper)")
    print("=" * 64)

    # A small tree: 2^10 leaves, Z=4, top two levels cached.  Every
    # bucket is AES-CTR encrypted + MACed before it touches "memory".
    config = OramConfig(leaf_level=10, treetop_levels=2, subtree_levels=4)
    oram = PathOram(config, seed=42, codec=EncryptedBucketCodec(b"K" * 16))
    print(f"tree: {config.num_levels} levels, "
          f"{config.num_buckets:,} buckets, "
          f"{config.num_user_blocks:,} user blocks of 64 B")

    # Store and retrieve records obliviously.
    oram.write(17, b"patient-522: diagnosis=flu".ljust(64, b" "))
    oram.write(99, b"patient-523: diagnosis=ok ".ljust(64, b" "))
    record = oram.read(17).rstrip()
    print(f"read block 17 -> {record.decode()!r}")

    # What the untrusted memory actually holds: ciphertext.
    leaf = oram.state.position_map.lookup(17)
    bucket = oram.geometry.path_buckets(leaf)[-1]
    image = oram._buckets[bucket]
    print(f"block 17 now maps to leaf {leaf}; "
          f"a bucket on its path stores: {bytes(image[:24]).hex()}...")

    # Accesses are indistinguishable: ten reads of the same block take
    # ten different random paths.
    paths = set()
    for _ in range(10):
        oram.read(17)
        paths.add(oram.state.position_map.lookup(17))
    print(f"10 repeat reads remapped block 17 across {len(paths)} "
          f"distinct leaves -- the access pattern is gone")
    oram.check_invariants()
    print("protocol invariants: OK")


def timing_demo() -> None:
    print()
    print("=" * 64)
    print("2. Timing simulation (the paper's co-run experiment)")
    print("=" * 64)
    from repro.core import run_scheme

    trace = 1200  # memory accesses per core; the paper used 500 M instrs
    base = run_scheme("baseline", "libq", trace)
    doram = run_scheme("doram", "libq", trace)

    print(f"workload: 1 S-App (Path ORAM) + 7 NS-Apps, libquantum-like")
    print(f"  Path ORAM baseline : NS-Apps finish in "
          f"{base.ns_mean_ns() / 1000:8.1f} us")
    print(f"  D-ORAM (delegated) : NS-Apps finish in "
          f"{doram.ns_mean_ns() / 1000:8.1f} us")
    ratio = doram.ns_mean_time() / base.ns_mean_time()
    print(f"  normalized time    : {ratio:.3f}  "
          f"(paper: 0.875 before tuning, 0.775 with D-ORAM/X)")
    print(f"  S-App ORAM access  : "
          f"{doram.s_app['oram_response_ns']:.0f} ns per access, "
          f"{doram.s_app['oram_real_fraction']:.0%} real "
          f"(rest are timing-channel dummies)")


if __name__ == "__main__":
    functional_demo()
    timing_demo()
