"""Scenario: two protected tenants behind one secure delegator.

Section III-C motivates the tree split with exactly this deployment:
"when running, e.g., two S-Apps and two NS-Apps in D-ORAM ... the two
S-Apps allocate all their data in the secure channel.  Therefore, the
secure channel tends to be under memory capacity pressure."

This example runs that system: two Path-ORAM-protected tenants, each
with its own tree, sharing the single SD (whose engine serializes their
accesses), next to co-running NS-Apps.  It shows

* the capacity pressure (two 4 GB trees = 8 GB on one channel's DIMMs,
  serving only 4 GB of user data) and how D-ORAM+k relieves it;
* the SD-serialization cost each tenant pays;
* that the co-runners barely notice the second tenant (the fixed-rate
  guard caps total ORAM intensity).

Run:  python examples/multi_tenant_secure.py
"""

from repro.core import run_scheme, split_space_shares
from repro.core.hardware import size_delegator
from repro.oram.config import OramConfig

TRACE = 1000


def capacity_story() -> None:
    print("=" * 68)
    print("Capacity pressure: two tenants on one secure channel")
    print("=" * 68)
    tree = OramConfig()
    per_tree_gb = tree.tree_bytes / 2**30
    user_gb = tree.num_user_blocks * 64 / 2**30
    print(f"each tenant: {per_tree_gb:.0f} GB tree for {user_gb:.0f} GB of "
          f"user data (Path ORAM's ~50 % utilization)")
    print(f"two tenants need {2 * per_tree_gb:.0f} GB on the secure "
          f"channel's DIMMs alone")
    shares = split_space_shares(2)
    print(f"with D-ORAM+2, each expanded tree keeps only "
          f"{shares['secure']:.0%} of its blocks on the secure channel "
          f"({shares['normal']:.0%} per normal channel) -- the pressure "
          f"spreads out.\n")

    budget = size_delegator(tree, recursive_position_map=True)
    print(f"SD hardware check (Section III-E): with a recursive position "
          f"map the SD needs {budget.sram_bytes / 1024:.0f} KB of SRAM, "
          f"~{budget.area_mm2:.2f} mm^2 -- inside the paper's 1 mm^2 "
          f"envelope. (A flat map for a 4 GB tree would need "
          f"{size_delegator(tree).position_map_bytes / 2**20:.0f} MB and "
          f"does not fit; see repro.oram.recursive.)\n")


def corun_story() -> None:
    print("=" * 68)
    print("Runtime: 1 vs 2 tenants (libq, 2 NS-Apps co-running)")
    print("=" * 68)
    one = run_scheme("doram", "li", TRACE, num_ns_apps=2)
    two = run_scheme("doram", "li", TRACE, num_ns_apps=2, num_s_apps=2)

    print(f"{'tenants':>8}{'NS time (us)':>14}{'ORAM resp (ns)':>16}"
          f"{'ORAM accesses':>15}")
    for label, run in (("1", one), ("2", two)):
        print(f"{label:>8}{run.ns_mean_ns() / 1000:>14.1f}"
              f"{run.s_app['oram_response_ns']:>16.0f}"
              f"{int(run.s_app['oram_accesses']):>15}")
    slow = two.s_app["oram_response_ns"] / one.s_app["oram_response_ns"]
    ns_cost = two.ns_mean_time() / one.ns_mean_time()
    print(f"\n-> each tenant's ORAM access takes {slow:.1f}x longer (the")
    print("   SD engine serializes the two trees), while the NS-Apps pay")
    print(f"   only {100 * (ns_cost - 1):.0f} % -- the fixed-rate guard")
    print("   caps the combined ORAM bandwidth regardless of tenant count.")


if __name__ == "__main__":
    capacity_story()
    corun_story()
