"""Scenario: the secure dataset outgrows the secure channel (D-ORAM+k).

Section III-C's problem: Path ORAM needs ~2x space slack, and the whole
tree lives on the one upgraded channel -- a 4 GB tree serves only 2 GB
of user data, and two S-Apps would fight for the secure channel's DIMMs.
D-ORAM+k relocates the last k tree levels to the normal channels,
multiplying capacity by 2^k without adding anything to the TCB.

This example shows the three facets of the trade:

* capacity and space distribution per k (Table I);
* the extra cross-channel messages each ORAM access now needs;
* the measured performance cost to the co-running NS-Apps (Fig. 10).

Run:  python examples/capacity_expansion.py
"""

from repro.core import run_scheme, split_extra_messages, split_space_shares
from repro.oram.config import OramConfig


def space_story() -> None:
    print("=" * 68)
    print("Capacity vs placement: what k buys (Table I)")
    print("=" * 68)
    base = OramConfig()
    print(f"{'k':>3}{'tree capacity':>16}{'user data':>12}"
          f"{'secure ch':>11}{'per normal ch':>15}{'extra msgs':>12}")
    for k in range(4):
        cfg = OramConfig(leaf_level=base.leaf_level + k)
        shares = split_space_shares(k)
        msgs = split_extra_messages(k)
        extra = (msgs.secure_short_reads + msgs.secure_responses
                 + msgs.secure_writes)
        print(f"{k:>3}"
              f"{cfg.tree_bytes / 2**30:>14.0f}GB"
              f"{cfg.num_user_blocks * 64 / 2**30:>10.0f}GB"
              f"{shares['secure']:>11.1%}"
              f"{shares['normal']:>15.1%}"
              f"{extra:>12}")
    print("-> k=2 already quadruples capacity and perfectly balances the")
    print("   four channels at 25 % each, for 24 extra link messages per")
    print("   ORAM access.\n")


def performance_story() -> None:
    print("=" * 68)
    print("What the co-runners pay (Fig. 10)")
    print("=" * 68)
    trace = 1200
    doram = run_scheme("doram", "libq", trace)
    print(f"{'scheme':<10}{'NS time (us)':>14}{'vs doram':>10}"
          f"{'remote msgs':>13}{'ORAM resp (ns)':>16}")
    print(f"{'doram':<10}{doram.ns_mean_ns() / 1000:>14.1f}{1.0:>10.2f}"
          f"{0:>13}{doram.s_app['oram_response_ns']:>16.0f}")
    for k in (1, 2, 3):
        run = run_scheme(f"doram+{k}", "libq", trace)
        remote = int(run.s_app["remote_short_reads"]
                     + run.s_app["remote_writes"])
        print(f"{f'doram+{k}':<10}{run.ns_mean_ns() / 1000:>14.1f}"
              f"{run.ns_mean_time() / doram.ns_mean_time():>10.2f}"
              f"{remote:>13}{run.s_app['oram_response_ns']:>16.0f}")
    print("\n-> the paper measures +1.02 %/+2.01 %/+3.29 % for k=1/2/3:")
    print("   capacity scales exponentially, the co-run cost stays flat.")


if __name__ == "__main__":
    space_story()
    performance_story()
