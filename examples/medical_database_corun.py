"""Scenario: a private medical-records service consolidated with analytics.

The paper's introduction motivates ORAM with exactly this case: "when a
medical application searches for the treatment information for a specific
disease from the database, it is likely that the current patient has
corresponding symptoms" -- the *addresses* leak the diagnosis even when
the data is encrypted.

This example builds the scenario end to end:

* a tiny encrypted patient database stored inside a functional Path ORAM
  (the S-App's data), queried by diagnosis;
* a demonstration that the physical access trace of two very different
  queries is statistically indistinguishable;
* the co-run question the paper actually evaluates: what happens to the
  seven analytics jobs (NS-Apps) sharing the server, under the on-chip
  Path ORAM baseline vs D-ORAM's delegated engine.

Run:  python examples/medical_database_corun.py
"""

from collections import Counter

from repro.core import run_scheme
from repro.crypto import EncryptedBucketCodec
from repro.oram import OramConfig, PathOram


# ---------------------------------------------------------------------------
# A toy record store on top of the block-level ORAM API
# ---------------------------------------------------------------------------

class PrivateRecordStore:
    """Fixed-slot record store: one 64 B record per ORAM block."""

    def __init__(self, seed: int = 7) -> None:
        config = OramConfig(leaf_level=9, treetop_levels=2, subtree_levels=3)
        self.oram = PathOram(config, seed=seed,
                             codec=EncryptedBucketCodec(b"hospital-key-16!"[:16]))
        self._index = {}  # patient_id -> block (kept client-side, in TCB)
        self._trace = []
        self.oram.trace_hook = lambda kind, b: self._trace.append(b)

    def admit(self, patient_id: int, diagnosis: str) -> None:
        block = len(self._index)
        self._index[patient_id] = block
        record = f"patient={patient_id};dx={diagnosis}".encode()
        self.oram.write(block, record.ljust(64, b"\0"))

    def lookup(self, patient_id: int) -> str:
        raw = self.oram.read(self._index[patient_id])
        return raw.rstrip(b"\0").decode()

    def drain_trace(self):
        trace, self._trace = self._trace, []
        return trace


def privacy_demo() -> None:
    print("=" * 68)
    print("Private medical records: the address trace hides the diagnosis")
    print("=" * 68)
    store = PrivateRecordStore()
    diagnoses = ["flu", "flu", "oncology", "cardiac", "flu", "oncology"]
    for pid, dx in enumerate(diagnoses, start=500):
        store.admit(pid, dx)
    store.drain_trace()

    # Query A: the patient with a sensitive diagnosis, 30 times.
    for _ in range(30):
        assert "oncology" in store.lookup(502)
    trace_sensitive = store.drain_trace()

    # Query B: a routine flu lookup, 30 times.
    for _ in range(30):
        assert "flu" in store.lookup(500)
    trace_routine = store.drain_trace()

    # The observer's view: bucket histograms of the two workloads.
    def level1_balance(trace):
        counts = Counter(b for b in trace if b in (2, 3))
        total = counts[2] + counts[3]
        return counts[2] / total if total else 0.0

    print(f"30x oncology lookups touched {len(trace_sensitive)} buckets; "
          f"level-1 left-subtree share: {level1_balance(trace_sensitive):.2f}")
    print(f"30x routine   lookups touched {len(trace_routine)} buckets; "
          f"level-1 left-subtree share: {level1_balance(trace_routine):.2f}")
    print("-> same volume, same distribution: the bus reveals nothing\n")


def corun_demo() -> None:
    print("=" * 68)
    print("Server consolidation: 7 analytics jobs next to the record store")
    print("=" * 68)
    trace = 1200
    # 'face' is the most memory-hungry workload in Table III (MPKI 26.8):
    # the analytics fleet that suffers most from ORAM interference.
    rows = {}
    for scheme in ("7ns-4ch", "baseline", "doram", "doram/4"):
        rows[scheme] = run_scheme(scheme, "fa", trace)

    clean = rows["7ns-4ch"].ns_mean_ns()
    print(f"{'scheme':<12}{'NS time (us)':>14}{'vs clean':>10}"
          f"{'NS read lat (ns)':>18}")
    for scheme, result in rows.items():
        print(f"{scheme:<12}{result.ns_mean_ns() / 1000:>14.1f}"
              f"{result.ns_mean_ns() / clean:>10.2f}"
              f"{result.read_latency_ns():>18.1f}")
    print("\n-> the on-chip Path ORAM baseline drags every analytics job;")
    print("   delegating the ORAM to the BOB secure engine (doram) and")
    print("   rationing the secure channel (doram/4) claws most of it back,")
    print("   while the record store keeps full Path ORAM protection.")


if __name__ == "__main__":
    privacy_demo()
    corun_demo()
