"""Scenario: tuning D-ORAM/c with the paper's profiling rule.

Section III-D/V-C: the secure channel is the system's slow channel, so
how many NS-Apps should be allowed to allocate memory on it?  Sweeping
c = 0..7 per deployment is expensive; the paper instead profiles two
latency numbers on a spare trace segment --

    T25mix : NS latency using all 4 channels while the S-App hammers ch0
    T33    : NS latency using only the 3 normal channels

-- and reads the answer off the ratio: r > 1 means ch0 hurts more than
it helps (pick a small c), r < 1 means bandwidth wins (large c).

This example runs the rule for a streaming and a pointer-chasing
workload, then verifies the prediction against the actual c sweep.

Run:  python examples/channel_tuning.py
"""

from repro.analysis.profiling import profile_ratio
from repro.core import run_scheme

TRACE = 1200


def tune(benchmark: str) -> None:
    print("=" * 68)
    print(f"Tuning c for benchmark {benchmark!r}")
    print("=" * 68)

    # Step 1: profile on a different trace segment (cheap: 3 short runs).
    profile = profile_ratio(benchmark, trace_length=TRACE, segment=1)
    print(f"profiled on segment 1: solo={profile.latency_solo_ns:.0f} ns, "
          f"T25mix={profile.t25mix:.2f}, T33={profile.t33:.2f}")
    print(f"ratio r = {profile.ratio:.3f} -> "
          f"category {profile.decision.category!r} "
          f"(suggest c = {profile.decision.suggested_c})")

    # Step 2: ground truth -- sweep c on the measurement segment.
    base = run_scheme("baseline", benchmark, TRACE).ns_mean_time()
    sweep = {}
    for c in range(8):
        scheme = "doram" if c == 7 else f"doram/{c}"
        sweep[c] = run_scheme(scheme, benchmark, TRACE).ns_mean_time() / base
    best_c = min(sweep, key=sweep.get)

    bars = "  ".join(f"c{c}:{v:.3f}" for c, v in sweep.items())
    print(f"measured sweep (vs baseline):\n  {bars}")
    # Categorize robustly (half-means), as in Fig. 12's reproduction:
    # with nearly flat sweeps the raw argmin is noise.
    small_mean = sum(sweep[c] for c in range(4)) / 4
    large_mean = sum(sweep[c] for c in range(4, 8)) / 4
    measured = "small" if small_mean < large_mean else "large"
    verdict = "MATCHES" if measured == profile.decision.category else "differs from"
    print(f"measured best c = {best_c}; preference = {measured} "
          f"(small-c mean {small_mean:.3f} vs large-c mean {large_mean:.3f})")
    print(f"-> the profiled rule {verdict} the measurement "
          f"(paper: 14/15 agreement, Fig. 12)\n")


if __name__ == "__main__":
    # tigr keeps latency-sensitive pointer walks (prefers small c);
    # mummer's heavier bandwidth appetite flips it to large c: the
    # paper's Fig. 12 shows workloads on both sides of the r = 1 line.
    tune("ti")
    tune("mu")
