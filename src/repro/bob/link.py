"""Serial link model.

A simplex FIFO pipe: packets serialize onto the link at the configured
bandwidth (the paper sets one serial link's peak comparable to one
DDR3-1600 parallel channel, 12.8 GB/s) and arrive after a fixed
propagation/buffering latency (half of the paper's 15 ns round-trip
figure per direction, the other half charged at the BOB control logic by
the channel model).  Two instances form a full-duplex BOB link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Engine, TICKS_PER_NS, ns
from repro.sim.stats import StatSet


@dataclass(frozen=True)
class LinkParams:
    """Bandwidth and latency of one link direction."""

    #: Sustained bandwidth in bytes per nanosecond (12.8 = one DDR3-1600
    #: channel equivalent).
    bytes_per_ns: float = 12.8
    #: One-way propagation + buffering latency in ticks.  The paper adds
    #: 15 ns for "link bus and BoB control" overall; we charge half per
    #: direction so a round trip pays the full figure.
    latency: int = ns(7.5)

    def serialization(self, nbytes: int) -> int:
        """Ticks to clock ``nbytes`` onto the link."""
        if nbytes <= 0:
            raise ValueError("packet must have positive size")
        return max(1, int(round(nbytes / self.bytes_per_ns * TICKS_PER_NS)))


#: Sentinel for :meth:`SerialLink.send`'s default "deliver the arrival
#: time" behavior.
_ARRIVAL_TIME = object()


class SerialLink:
    """One direction of a BOB link: FIFO serialization, fixed latency.

    The send path runs once per packet on every BOB access, so the
    per-size serialization ticks are memoized (packet sizes come from a
    handful of fixed formats) and delivery is scheduled with the engine's
    ``(callback, arg)`` form -- no closure per packet.
    """

    def __init__(self, engine: Engine, name: str,
                 params: LinkParams = LinkParams(), tracer=None) -> None:
        self.engine = engine
        self.name = name
        self.params = params
        self._busy_until = 0
        self.stats = StatSet(name)
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("link")
        self._latency = params.latency
        self._ser_cache: Dict[int, int] = {}
        self._packets = self.stats.counter("packets")
        self._bytes = self.stats.counter("bytes")
        #: Fault-injection site (``repro.faults``); ``None`` keeps the
        #: send path on its zero-overhead fast branch.
        self._faults = None

    def arm_faults(self, site) -> None:
        """Attach a :class:`~repro.faults.inject.LinkFaultSite`."""
        self._faults = site

    def send(self, nbytes: int, deliver: Callable[[object], None],
             tag: str = "pkt", arg: object = _ARRIVAL_TIME) -> int:
        """Queue a packet; ``deliver`` fires at the far end.

        By default ``deliver(arrival_time)`` is called; pass ``arg`` to
        call ``deliver(arg)`` instead (lets callers route a request object
        without wrapping it in a closure).  Returns the delivery time
        (useful for tests).  Packets occupy the link in FIFO order; a
        saturated link queues without bound, which callers bound via
        their in-flight windows.  ``tag`` labels the packet's protocol
        role in the trace (``req``/``wdata``/``rdata`` for normal BOB
        traffic, ``raw`` for sealed secure-engine packets, ``remote`` for
        split-tree messages).
        """
        ser = self._ser_cache.get(nbytes)
        if ser is None:
            ser = self._ser_cache[nbytes] = self.params.serialization(nbytes)
        now = self.engine.now
        if self._faults is not None:
            return self._send_faulty(nbytes, deliver, tag, arg, ser, now)
        start = self._busy_until
        if now > start:
            start = now
        busy = start + ser
        self._busy_until = busy
        arrive = busy + self._latency
        self._packets.value += 1
        self._bytes.value += nbytes
        tracer = self._tracer
        if tracer.enabled:
            # One event per packet, emitted at send time: serialization
            # window [start, start+ser], wire times in args.  The
            # timing-leakage check replays Section III-B from these.
            tracer.complete(
                "link", tag, self.name, start, ser,
                {"bytes": nbytes, "sent": now, "arrive": arrive},
            )
        # Inline of Engine.call_at: arrive > now always (serialization
        # takes at least one tick), so the past-schedule guard is moot.
        engine = self.engine
        seq = engine._seq
        engine._seq = seq + 1
        engine._push((arrive, seq, deliver, arrive if arg is _ARRIVAL_TIME else arg))
        return arrive

    def send_tail(self, nbytes: int, deliver: Callable[[object], None],
                  tag: str = "pkt", arg: object = _ARRIVAL_TIME) -> int:
        """:meth:`send` for callers in tail position.

        Identical contract, but when the delivery event would be the
        engine's strictly-next event -- batch-kernel mode, nothing queued
        or kernel-held at or before ``arrive``, no fault plan rerouting
        the packet, and ``arrive`` inside any bounded-run window -- the
        delivery runs here as one synthesized occurrence (advancing
        ``engine.now`` to ``arrive``) instead of a push/pop round-trip.
        Callers must do no further scheduling after this returns (tail
        position), or a later push could have ordered before the
        delivery in the unfused schedule.  Stats, the trace event, and
        wire occupancy are identical to :meth:`send`.
        """
        engine = self.engine
        if (
            not engine.batch_inline_ok
            or engine._stopped
            or self._faults is not None
        ):
            return self.send(nbytes, deliver, tag, arg)
        ser = self._ser_cache.get(nbytes)
        if ser is None:
            ser = self._ser_cache[nbytes] = self.params.serialization(nbytes)
        now = engine.now
        start = self._busy_until
        if now > start:
            start = now
        busy = start + ser
        self._busy_until = busy
        arrive = busy + self._latency
        self._packets.value += 1
        self._bytes.value += nbytes
        tracer = self._tracer
        if tracer.enabled:
            # The link's own tracer is independent of the engine-level
            # trace gated into batch_inline_ok; the packet event is
            # emitted at send time either way, so fusing the delivery
            # leaves the trace byte-identical to :meth:`send`.
            tracer.complete(
                "link", tag, self.name, start, ser,
                {"bytes": nbytes, "sent": now, "arrive": arrive},
            )
        until = engine._run_until
        nxt = engine.peek_time()
        if (nxt is None or nxt > arrive) and (until is None
                                              or arrive <= until):
            engine._synthesized += 1
            engine.now = arrive
            deliver(arrive if arg is _ARRIVAL_TIME else arg)
            return arrive
        seq = engine._seq
        engine._seq = seq + 1
        engine._push(
            (arrive, seq, deliver, arrive if arg is _ARRIVAL_TIME else arg)
        )
        return arrive

    def _send_faulty(self, nbytes: int, deliver, tag: str, arg,
                     ser: int, now: int) -> int:
        """:meth:`send` with the injection site consulted per packet.

        A ``delay`` hit stalls the wire (this packet and, via
        ``_busy_until``, everything behind it); ``corrupt`` marks the
        fault-aware payload; ``drop`` emits the packet on the wire (the
        trace event -- an observer still sees it) but never delivers it,
        leaving recovery to the sender's deadline.
        """
        start = self._busy_until
        if now > start:
            start = now
        extra, dropped = self._faults.on_packet(tag, deliver, arg)
        if extra:
            start += extra
        busy = start + ser
        self._busy_until = busy
        arrive = busy + self._latency
        self._packets.value += 1
        self._bytes.value += nbytes
        tracer = self._tracer
        if tracer.enabled:
            tracer.complete(
                "link", tag, self.name, start, ser,
                {"bytes": nbytes, "sent": now, "arrive": arrive},
            )
        if not dropped:
            engine = self.engine
            seq = engine._seq
            engine._seq = seq + 1
            engine._push(
                (arrive, seq, deliver,
                 arrive if arg is _ARRIVAL_TIME else arg)
            )
        return arrive

    def queue_delay(self) -> int:
        """Current backlog delay a new packet would see (ticks)."""
        return max(0, self._busy_until - self.engine.now)

    def utilization(self) -> float:
        """Approximate busy fraction: bytes clocked / elapsed capacity.

        Uses the cached byte counter (no per-call stats lookup) and
        clamps to ``[0, 1]``: before any time has elapsed there is no
        capacity to fill, and a packet accepted at tick 0 can make the
        byte count exceed the elapsed-capacity product.
        """
        now = self.engine.now
        if now <= 0:
            return 0.0
        capacity = self.params.bytes_per_ns * now / TICKS_PER_NS
        util = self._bytes.value / capacity
        return 1.0 if util > 1.0 else util
