"""Buffer-on-board (BOB) memory architecture.

In BOB (Fig. 1(b)/Fig. 5), each channel pairs a main controller on the
processor with a simple controller on the motherboard, connected by a
narrow, fast, full-duplex *serial link*; the simple controller drives one
to four DRAM *sub-channels* over conventional parallel buses.  Requests
and responses cross the link as packets.

This package models the link (serialization + the paper's 15 ns buffer
logic/link latency) and the BOB channel plumbing, including the in-flight
window that back-pressures the processor side.  The secure delegator of
D-ORAM plugs into the secure channel's simple-controller side
(:mod:`repro.core.delegator`).
"""

from repro.bob.link import SerialLink, LinkParams
from repro.bob.channel import BobChannel

__all__ = ["SerialLink", "LinkParams", "BobChannel"]
