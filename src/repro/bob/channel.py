"""A BOB memory channel: main controller, duplex link, simple controller.

Normal (non-secure) traffic uses :meth:`BobChannel.submit`: the request
crosses the down link as a packet (a short command packet for reads, a
72 B data packet for writes), is queued at the simple controller into one
of the DRAM sub-channels, and read data returns as a 72 B packet on the
up link.  An in-flight window back-pressures the processor side, standing
in for BOB's credit flow control.

The secure delegator and the D-ORAM packet protocol use the raw
:meth:`send_down` / :meth:`send_up` pipes and the sub-channels directly --
their framing lives in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.bob.link import LinkParams, SerialLink, _ARRIVAL_TIME
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.sim.engine import Engine
from repro.sim.stats import StatSet


@dataclass(frozen=True)
class BobPacketSizes:
    """Wire sizes of normal-traffic packets (bytes)."""

    read_request: int = 16
    write_request: int = 72
    read_response: int = 72


class _NormalOp:
    """Completion chain for one normal-traffic request.

    One instance replaces the two closures the submit path used to
    allocate per request (DRAM completion, then up-link delivery for
    reads): the object is handed to the sub-channel as ``on_complete``
    and, for reads, re-used as the up link's delivery callback.
    """

    __slots__ = ("bob", "on_complete", "awaiting_data")

    def __init__(self, bob: "BobChannel", on_complete, is_read: bool) -> None:
        self.bob = bob
        self.on_complete = on_complete
        #: True while a read still owes its data packet on the up link.
        self.awaiting_data = is_read

    def fault_mark_corrupt(self) -> bool:
        """Forward a DRAM read flip to whoever verifies the data.

        Normal traffic carries no MAC, so the mark only sticks when the
        final consumer is itself fault-aware (e.g. the failover engine's
        :class:`~repro.core.recovery.GuardedRead`); otherwise the flip
        is silently unprotected, which the injector counts.
        """
        mark = getattr(self.on_complete, "fault_mark_corrupt", None)
        return mark() if mark is not None else False

    def __call__(self, time: int) -> None:
        bob = self.bob
        if self.awaiting_data:
            # Read data returns over the up link first; this object is
            # also the delivery callback, re-invoked with the arrival.
            self.awaiting_data = False
            bob._packets_up()
            # Tail position: nothing is scheduled after this send, so
            # the batch-kernel backend may deliver it inline.
            bob.up.send_tail(
                bob.packet_sizes.read_response, self, tag="rdata"
            )
            return
        bob._finish(self.on_complete, time)


class BobChannel:
    """One serial-link channel with 1..4 DRAM sub-channels behind it."""

    def __init__(
        self,
        engine: Engine,
        channel_id: int,
        subchannels: List[Channel],
        link_params: LinkParams = LinkParams(),
        window: int = 64,
        packet_sizes: BobPacketSizes = BobPacketSizes(),
        tracer=None,
    ) -> None:
        if not subchannels:
            raise ValueError("a BOB channel needs at least one sub-channel")
        self.engine = engine
        self.channel_id = channel_id
        self.subchannels = subchannels
        self.down = SerialLink(engine, f"bob{channel_id}.down", link_params,
                               tracer=tracer)
        self.up = SerialLink(engine, f"bob{channel_id}.up", link_params,
                             tracer=tracer)
        self.window = window
        self.packet_sizes = packet_sizes
        self.stats = StatSet(f"bob{channel_id}")
        self._inflight = 0
        self._space_waiters: List[Callable[[], None]] = []
        #: Requests that arrived at the simple controller but found their
        #: sub-channel queue full, per sub-channel index.
        self._held: Dict[int, List[MemRequest]] = {
            i: [] for i in range(len(subchannels))
        }
        self._packets_down = self.stats.counter("packets_down").add
        self._packets_up = self.stats.counter("packets_up").add
        #: Lazily bound ``raw_down``/``raw_up`` counter adds for the
        #: kernel fast path (bound on first raw send, so a channel that
        #: never carries raw traffic keeps an identical StatSet to the
        #: legacy path).
        self._raw_down_add: Optional[Callable[[], None]] = None
        self._raw_up_add: Optional[Callable[[], None]] = None

    # ------------------------------------------------------------------
    # Normal traffic
    # ------------------------------------------------------------------
    def can_accept(self, op: OpType) -> bool:
        return self._inflight < self.window

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    def submit(
        self,
        op: OpType,
        subchannel: int,
        bank: int,
        row: int,
        col: int,
        app_id: int,
        traffic: TrafficClass = TrafficClass.NORMAL,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Send one request through the channel."""
        if self._inflight >= self.window:
            raise RuntimeError(f"bob{self.channel_id}: window full")
        self._inflight += 1
        if op is OpType.WRITE:
            # Writes finish at the simple controller; reads owe a data
            # packet on the up link first (see _NormalOp).
            size = self.packet_sizes.write_request
            tag = "wdata"
            done = _NormalOp(self, on_complete, False)
        else:
            size = self.packet_sizes.read_request
            tag = "req"
            done = _NormalOp(self, on_complete, True)
        req = MemRequest(
            op, self.channel_id, subchannel, bank, row, col,
            app_id, traffic, 0, done,
        )
        self._packets_down()
        self.down.send(size, self._arrive, tag=tag, arg=req)

    def _arrive(self, req: MemRequest) -> None:
        """Packet reached the simple controller: queue into DRAM."""
        sub = self.subchannels[req.subchannel]
        if sub.can_accept(req.op):
            sub.enqueue(req)
        else:
            self._held[req.subchannel].append(req)
            sub.notify_on_space(lambda s=req.subchannel: self._drain_held(s))

    def _drain_held(self, subchannel: int) -> None:
        held = self._held[subchannel]
        sub = self.subchannels[subchannel]
        while held and sub.can_accept(held[0].op):
            sub.enqueue(held.pop(0))
        if held:
            sub.notify_on_space(lambda s=subchannel: self._drain_held(s))

    def _finish(self, on_complete: Optional[Callable[[int], None]], time: int) -> None:
        self._inflight -= 1
        if self._space_waiters:
            waiters, self._space_waiters = self._space_waiters, []
            for callback in waiters:
                callback()
        if on_complete is not None:
            on_complete(time)

    # ------------------------------------------------------------------
    # Raw packet pipes (secure packets, cross-channel ORAM messages)
    # ------------------------------------------------------------------
    def send_down(self, nbytes: int, deliver: Callable[[int], None],
                  tag: str = "raw", arg: object = _ARRIVAL_TIME) -> int:
        """Ship an opaque packet CPU -> simple controller."""
        self.stats.counter("raw_down").add()
        return self.down.send(nbytes, deliver, tag=tag, arg=arg)

    def send_up(self, nbytes: int, deliver: Callable[[int], None],
                tag: str = "raw", arg: object = _ARRIVAL_TIME) -> int:
        """Ship an opaque packet simple controller -> CPU."""
        self.stats.counter("raw_up").add()
        return self.up.send(nbytes, deliver, tag=tag, arg=arg)

    def send_down_tail(self, nbytes: int, deliver: Callable[[int], None],
                       tag: str = "raw", arg: object = _ARRIVAL_TIME) -> int:
        """:meth:`send_down` for callers in tail position.

        Same contract and stats; delivery may run inline as one
        synthesized occurrence via :meth:`SerialLink.send_tail` when it
        would be the engine's strictly-next event.  Callers must do no
        further scheduling after this returns.
        """
        add = self._raw_down_add
        if add is None:
            add = self._raw_down_add = self.stats.counter("raw_down").add
        add()
        return self.down.send_tail(nbytes, deliver, tag=tag, arg=arg)

    def send_up_tail(self, nbytes: int, deliver: Callable[[int], None],
                     tag: str = "raw", arg: object = _ARRIVAL_TIME) -> int:
        """:meth:`send_up` for callers in tail position."""
        add = self._raw_up_add
        if add is None:
            add = self._raw_up_add = self.stats.counter("raw_up").add
        add()
        return self.up.send_tail(nbytes, deliver, tag=tag, arg=arg)
