"""The fault-plan DSL: seeded, declarative fault schedules.

A :class:`FaultPlan` is a *pure description* -- which links may flip,
drop, or delay packets, which DRAM channels may suffer transient read
bit-flips, and when the secure delegator stalls or crashes -- plus the
:class:`RecoveryParams` the recovery protocol runs with.  Plans are
frozen, JSON round-trippable (the ``doram faults --plan file`` format),
and deterministic: every injection site derives its own independent
``random.Random`` stream from ``(plan.seed, site kind, site name)`` via
sha256, so adding a rule for one link never perturbs the fault schedule
another site sees.

Arming a plan never changes simulation results by itself: an *empty*
plan wires the recovery machinery and the injection hooks but fires no
faults, and the golden-trace digests stay bit-identical (enforced by
``tests/faults/test_empty_plan_identity.py``).
"""

from __future__ import annotations

import hashlib
import json
import random
import re
from dataclasses import asdict, dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import ns

#: Rule kinds each injection layer understands.
LINK_KINDS = ("corrupt", "drop", "delay")
DRAM_KINDS = ("flip",)
DELEGATOR_KINDS = ("stall", "crash")

#: Site-name grammars.  Patterns may use fnmatch wildcards; a *literal*
#: pattern (no ``*?[``) that can never name a real site is a typo, and
#: typos should fail at plan load, not as a silently never-firing rule.
_LINK_NAME_RE = re.compile(r"^bob\d+\.(down|up)$")
_CHANNEL_NAME_RE = re.compile(r"^ch\d+(\.\d+)?$")


def _is_literal(pattern: str) -> bool:
    return not any(c in pattern for c in "*?[")


def _check_site_name(pattern: str, grammar: re.Pattern, what: str,
                     example: str) -> None:
    if _is_literal(pattern) and not grammar.match(pattern):
        raise FaultPlanError(
            f"unknown {what} site name {pattern!r}: literal names must "
            f"look like {example!r} (wildcards are allowed)"
        )


def _check_indices(indices, what: str) -> Tuple[int, ...]:
    out = []
    for value in indices:
        index = int(value)
        if index < 0:
            raise FaultPlanError(
                f"{what} indices must be >= 0 (got {value})"
            )
        out.append(index)
    return tuple(out)


class FaultPlanError(ValueError):
    """A malformed fault plan (bad kind, rate, window, or file)."""


def site_rng(seed: int, kind: str, name: str) -> random.Random:
    """Independent, stable RNG stream for one injection site.

    Python's ``hash(str)`` is randomized per process, so the stream key
    is a sha256 over the textual identity instead -- the same plan gives
    the same schedule in every process, worker, and Python version.
    """
    digest = hashlib.sha256(
        f"{seed}:{kind}:{name}".encode("utf-8")
    ).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _window_ticks(start_ns: float, stop_ns: Optional[float]) -> Tuple[int, int]:
    lo = ns(start_ns)
    hi = ns(stop_ns) if stop_ns is not None else (1 << 62)
    return lo, hi


@dataclass(frozen=True)
class LinkFault:
    """One rule over serial-link packets.

    ``link`` and ``tag`` are ``fnmatch`` patterns over the link name
    (``bob0.down``, ``bob2.up``, ...) and the packet's protocol tag
    (``raw`` for secure CPU<->SD frames, ``remote`` for split-tree
    messages, ``req``/``wdata``/``rdata`` for normal traffic).  A packet
    is hit when it matches and either the per-packet ``rate`` draw fires
    or its per-rule match index is listed in ``packets`` (exact,
    schedule-style injection for unit tests).  ``corrupt`` and ``drop``
    only take effect on recovery-aware frames (the MAC-checked secure
    stream); ``delay`` models a link stall and applies to any packet,
    pushing it and everything behind it back by ``delay_ns``.
    """

    kind: str = "corrupt"
    link: str = "*"
    tag: str = "*"
    rate: float = 0.0
    packets: Tuple[int, ...] = ()
    delay_ns: float = 0.0
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in LINK_KINDS:
            raise FaultPlanError(
                f"unknown link fault kind {self.kind!r} "
                f"(valid: {', '.join(LINK_KINDS)})"
            )
        if not 0.0 <= self.rate < 1.0:
            raise FaultPlanError(
                f"link fault rate {self.rate} must be in [0, 1)"
            )
        if self.kind == "delay" and self.delay_ns <= 0:
            raise FaultPlanError("delay faults need delay_ns > 0")
        if self.delay_ns < 0:
            raise FaultPlanError("delay_ns must be >= 0")
        if self.start_ns < 0:
            raise FaultPlanError("link fault start_ns must be >= 0")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise FaultPlanError("fault window stop_ns must be > start_ns")
        _check_site_name(self.link, _LINK_NAME_RE, "link", "bob0.down")
        object.__setattr__(
            self, "packets", _check_indices(self.packets, "packet")
        )

    def matches_link(self, name: str) -> bool:
        return fnmatchcase(name, self.link)

    def describe(self) -> str:
        sel = (f"packets {list(self.packets)}" if self.packets
               else f"rate {self.rate:g}")
        window = "" if self.stop_ns is None and self.start_ns == 0 else (
            f" in [{self.start_ns:g}, "
            f"{'inf' if self.stop_ns is None else f'{self.stop_ns:g}'}) ns"
        )
        extra = f" +{self.delay_ns:g} ns" if self.kind == "delay" else ""
        return (f"link {self.link} tag={self.tag}: {self.kind}{extra} "
                f"({sel}){window}")


@dataclass(frozen=True)
class DramFault:
    """Transient bit-flips on the DRAM read path of matching channels.

    The flip model is *transient*: the stored cell is intact, the data
    burst delivered for one read completion is garbled (bus / sense
    error).  The MAC on each ORAM block detects it and a re-read
    returns clean data -- the recoverable case of the Bonsai-Merkle
    style integrity argument.  Flips landing on unprotected (normal
    NS-App) reads are counted as ``unprotected`` but have no timing
    effect; nothing verifies them, exactly as the threat model says.
    """

    kind: str = "flip"
    channel: str = "*"
    rate: float = 0.0
    reads: Tuple[int, ...] = ()
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in DRAM_KINDS:
            raise FaultPlanError(
                f"unknown dram fault kind {self.kind!r} "
                f"(valid: {', '.join(DRAM_KINDS)})"
            )
        if not 0.0 <= self.rate < 1.0:
            raise FaultPlanError(
                f"dram fault rate {self.rate} must be in [0, 1)"
            )
        if self.start_ns < 0:
            raise FaultPlanError("dram fault start_ns must be >= 0")
        if self.stop_ns is not None and self.stop_ns <= self.start_ns:
            raise FaultPlanError("fault window stop_ns must be > start_ns")
        _check_site_name(self.channel, _CHANNEL_NAME_RE, "dram channel",
                         "ch0.1")
        object.__setattr__(
            self, "reads", _check_indices(self.reads, "read")
        )

    def matches_channel(self, name: str) -> bool:
        return fnmatchcase(name, self.channel)

    def describe(self) -> str:
        sel = (f"reads {list(self.reads)}" if self.reads
               else f"rate {self.rate:g}")
        window = "" if self.stop_ns is None and self.start_ns == 0 else (
            f" in [{self.start_ns:g}, "
            f"{'inf' if self.stop_ns is None else f'{self.stop_ns:g}'}) ns"
        )
        return f"dram {self.channel}: transient read flip ({sel}){window}"


@dataclass(frozen=True)
class DelegatorFault:
    """Secure-delegator stall window or permanent crash.

    ``stall``: request intake freezes for ``duration_ns`` starting at
    ``start_ns`` (frames arriving meanwhile are buffered and drained in
    order at the window's end).  ``crash``: intake stops forever at
    ``start_ns``; the CPU-side watchdog eventually declares the SD dead
    and fails over to the host-side baseline engine.
    """

    kind: str = "stall"
    start_ns: float = 0.0
    duration_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in DELEGATOR_KINDS:
            raise FaultPlanError(
                f"unknown delegator fault kind {self.kind!r} "
                f"(valid: {', '.join(DELEGATOR_KINDS)})"
            )
        if self.start_ns < 0:
            raise FaultPlanError("delegator fault start_ns must be >= 0")
        if self.kind == "stall" and self.duration_ns <= 0:
            raise FaultPlanError("stall faults need duration_ns > 0")

    def describe(self) -> str:
        if self.kind == "crash":
            return f"delegator: crash at {self.start_ns:g} ns"
        return (f"delegator: stall [{self.start_ns:g}, "
                f"{self.start_ns + self.duration_ns:g}) ns")


@dataclass(frozen=True)
class RecoveryParams:
    """Constants of the secure-link recovery protocol.

    ``deadline_ns`` is the per-attempt response deadline at the CPU
    endpoint; a request unanswered for that long is retransmitted at
    exactly ``sent + deadline`` (a deterministic function of the wire,
    so the retry adds no timing channel).  ``watchdog_misses``
    consecutive deadline expiries declare the SD dead and trigger
    failover to the host-side baseline Path ORAM engine.
    ``block_read_retries`` bounds per-block DRAM re-reads after a MAC
    failure; ``remote_retries`` bounds end-to-end re-runs of a
    corrupted split-tree message chain.
    """

    #: A D-ORAM response normally lands ~1-2 us after the request, so
    #: 5 us is several missed slots -- late enough to never fire on a
    #: healthy link, early enough to recover inside short runs.
    deadline_ns: float = 5000.0
    watchdog_misses: int = 4
    block_read_retries: int = 16
    remote_retries: int = 8
    #: Total transmission attempts per request (NAK- plus timeout-driven)
    #: before the link is declared unrecoverable and the session fails
    #: over -- the "bounded retransmission" guarantee.
    max_attempts: int = 64

    def __post_init__(self) -> None:
        if self.deadline_ns <= 0:
            raise FaultPlanError("recovery deadline_ns must be > 0")
        if self.watchdog_misses < 1:
            raise FaultPlanError("watchdog_misses must be >= 1")
        if self.block_read_retries < 1:
            raise FaultPlanError("block_read_retries must be >= 1")
        if self.remote_retries < 1:
            raise FaultPlanError("remote_retries must be >= 1")
        if self.max_attempts < 2:
            raise FaultPlanError("max_attempts must be >= 2")

    @property
    def deadline_ticks(self) -> int:
        return ns(self.deadline_ns)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule plus recovery constants."""

    seed: int = 0
    link: Tuple[LinkFault, ...] = ()
    dram: Tuple[DramFault, ...] = ()
    delegator: Tuple[DelegatorFault, ...] = ()
    recovery: RecoveryParams = field(default_factory=RecoveryParams)

    def __post_init__(self) -> None:
        object.__setattr__(self, "link", tuple(self.link))
        object.__setattr__(self, "dram", tuple(self.dram))
        object.__setattr__(self, "delegator", tuple(self.delegator))
        crashes = [f for f in self.delegator if f.kind == "crash"]
        if len(crashes) > 1:
            raise FaultPlanError("at most one delegator crash per plan")
        # Overlapping stall windows (or a stall reaching past the crash
        # point) describe an ambiguous schedule -- reject at load time
        # instead of silently resolving mid-run.
        windows = sorted(
            (ns(r.start_ns), ns(r.start_ns + r.duration_ns))
            for r in self.delegator if r.kind == "stall"
        )
        for (_, prev_hi), (lo, _) in zip(windows, windows[1:]):
            if lo < prev_hi:
                raise FaultPlanError(
                    "delegator stall windows overlap; merge them into "
                    "one rule"
                )
        crash = ns(crashes[0].start_ns) if crashes else None
        if crash is not None and any(hi > crash for _, hi in windows):
            raise FaultPlanError(
                "delegator stall window overlaps the crash point; the "
                "delegator cannot stall after it crashed"
            )

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """True when no rule can ever fire (recovery still arms)."""
        return not (self.link or self.dram or self.delegator)

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same schedule shape under a different seed."""
        return FaultPlan(seed=seed, link=self.link, dram=self.dram,
                         delegator=self.delegator, recovery=self.recovery)

    def crash_tick(self) -> Optional[int]:
        for rule in self.delegator:
            if rule.kind == "crash":
                return ns(rule.start_ns)
        return None

    def stall_windows(self) -> List[Tuple[int, int]]:
        """Sorted ``(start, end)`` stall windows in ticks.

        Windows are disjoint by construction: ``__post_init__`` rejects
        overlapping stall rules at load time.
        """
        return sorted(
            (ns(r.start_ns), ns(r.start_ns + r.duration_ns))
            for r in self.delegator if r.kind == "stall"
        )

    def describe(self) -> List[str]:
        """Human-readable resolved schedule (``doram faults --dry-run``)."""
        lines = [f"seed {self.seed}"]
        lines.extend(rule.describe() for rule in self.link)
        lines.extend(rule.describe() for rule in self.dram)
        lines.extend(rule.describe() for rule in self.delegator)
        if self.is_empty:
            lines.append("(no fault rules: plan arms recovery only)")
        r = self.recovery
        lines.append(
            f"recovery: deadline {r.deadline_ns:g} ns, "
            f"watchdog after {r.watchdog_misses} misses, "
            f"{r.block_read_retries} block re-reads, "
            f"{r.remote_retries} remote retries"
        )
        return lines

    # -- (de)serialization ------------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        for section in ("link", "dram", "delegator"):
            for rule in doc[section]:
                for key in ("packets", "reads"):
                    if key in rule:
                        rule[key] = list(rule[key])
        return doc

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "FaultPlan":
        if not isinstance(doc, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        unknown = set(doc) - {"seed", "link", "dram", "delegator", "recovery"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan keys: {', '.join(sorted(unknown))}"
            )
        try:
            return cls(
                seed=int(doc.get("seed", 0)),
                link=tuple(
                    LinkFault(**rule) for rule in doc.get("link", ())
                ),
                dram=tuple(
                    DramFault(**rule) for rule in doc.get("dram", ())
                ),
                delegator=tuple(
                    DelegatorFault(**rule)
                    for rule in doc.get("delegator", ())
                ),
                recovery=RecoveryParams(**doc.get("recovery", {})),
            )
        except TypeError as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as fp:
                doc = json.load(fp)
        except OSError as exc:
            raise FaultPlanError(
                f"cannot read fault plan {path!r}: {exc.strerror or exc}"
            ) from exc
        except ValueError as exc:
            raise FaultPlanError(
                f"fault plan {path!r} is not valid JSON: {exc}"
            ) from exc
        return cls.from_json_dict(doc)
