"""Fault injection: binding a :class:`FaultPlan` to one simulation.

A :class:`FaultController` is single-run: the system builder calls
:meth:`FaultController.bind` with the engine/tracer, asks for per-site
injectors (:meth:`link_site`, :meth:`dram_site`, :meth:`sd_site`), and
components arm themselves only when a site actually has rules for them.
A link or channel with no matching rule keeps its ``_faults`` hook at
``None`` and pays nothing; an armed site costs one rule scan (plus at
most one RNG draw per rule) per packet or read completion.

Determinism: each site owns an independent seeded stream (see
:func:`repro.faults.plan.site_rng`), and all decisions are made in model
event order, so a plan reproduces the same fault schedule on every
backend combination (heap/wheel x eager/lazy).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import (
    DelegatorFault,
    DramFault,
    FaultPlan,
    LinkFault,
    site_rng,
    _window_ticks,
)
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import ns
from repro.sim.stats import StatSet


class _LinkRuleState:
    """One compiled link rule: window in ticks, match counter, RNG."""

    __slots__ = ("rule", "lo", "hi", "delay_ticks", "count", "rng",
                 "packet_set")

    def __init__(self, rule: LinkFault, rng) -> None:
        self.rule = rule
        self.lo, self.hi = _window_ticks(rule.start_ns, rule.stop_ns)
        self.delay_ticks = ns(rule.delay_ns)
        self.count = 0
        self.rng = rng
        self.packet_set = frozenset(rule.packets)


class LinkFaultSite:
    """Per-link injector, consulted by :meth:`SerialLink.send`."""

    __slots__ = ("controller", "name", "rules")

    def __init__(self, controller: "FaultController", name: str,
                 rules: List[LinkFault]) -> None:
        self.controller = controller
        self.name = name
        self.rules = [
            _LinkRuleState(
                rule, site_rng(controller.plan.seed, f"link.{i}", name)
            )
            for i, rule in enumerate(rules)
        ]

    def on_packet(self, tag: str, deliver, arg) -> Tuple[int, bool]:
        """Decide this packet's fate: ``(extra_delay_ticks, dropped)``.

        ``corrupt`` and ``drop`` need a fault-aware target -- the
        delivered object's ``link_fault`` hook (recovery frames, remote
        ops).  A hit on a target without one is counted as
        ``uninjectable`` and the packet sails through, mirroring how a
        real flip on an unprotected wire goes unnoticed.
        """
        controller = self.controller
        now = controller.engine.now
        extra = 0
        dropped = False
        for state in self.rules:
            rule = state.rule
            if rule.tag != "*" and not fnmatchcase(tag, rule.tag):
                continue
            index = state.count
            state.count = index + 1
            if not state.lo <= now < state.hi:
                continue
            if state.packet_set:
                hit = index in state.packet_set
            elif rule.rate:
                hit = state.rng.random() < rule.rate
            else:
                hit = False
            if not hit:
                continue
            kind = rule.kind
            if kind == "delay":
                extra += state.delay_ticks
                controller.count("link_delays")
                controller.trace("link_delay", self.name,
                                 {"tag": tag, "ticks": state.delay_ticks})
                continue
            if dropped:
                continue
            target = arg if hasattr(arg, "link_fault") else deliver
            hook = getattr(target, "link_fault", None)
            if hook is None or not hook(kind):
                controller.count("uninjectable")
                controller.trace("link_uninjectable", self.name,
                                 {"tag": tag, "kind": kind})
                continue
            controller.count(f"link_{kind}s")
            controller.trace(f"link_{kind}", self.name, {"tag": tag})
            if kind == "drop":
                dropped = True
        return extra, dropped


class _DramRuleState:
    __slots__ = ("rule", "lo", "hi", "count", "rng", "read_set")

    def __init__(self, rule: DramFault, rng) -> None:
        self.rule = rule
        self.lo, self.hi = _window_ticks(rule.start_ns, rule.stop_ns)
        self.count = 0
        self.rng = rng
        self.read_set = frozenset(rule.reads)


class DramFaultSite:
    """Per-channel injector: transient flips on read completions."""

    __slots__ = ("controller", "name", "rules")

    def __init__(self, controller: "FaultController", name: str,
                 rules: List[DramFault]) -> None:
        self.controller = controller
        self.name = name
        self.rules = [
            _DramRuleState(
                rule, site_rng(controller.plan.seed, f"dram.{i}", name)
            )
            for i, rule in enumerate(rules)
        ]

    def maybe_flip(self, on_complete) -> None:
        """Consulted once per serviced read that has a completion."""
        controller = self.controller
        now = controller.engine.now
        for state in self.rules:
            index = state.count
            state.count = index + 1
            if not state.lo <= now < state.hi:
                continue
            if state.read_set:
                hit = index in state.read_set
            elif state.rule.rate:
                hit = state.rng.random() < state.rule.rate
            else:
                hit = False
            if not hit:
                continue
            mark = getattr(on_complete, "fault_mark_corrupt", None)
            if mark is not None and mark():
                controller.count("dram_flips")
                controller.trace("dram_flip", self.name, {})
            else:
                # A flip on a read nothing verifies (plain NS traffic):
                # silently wrong data, exactly what the threat model
                # predicts for unprotected tenants.
                controller.count("dram_flips_unprotected")
                controller.trace("dram_flip_unprotected", self.name, {})
            return


class SdFaultSite:
    """Stall windows / crash point for the secure delegator."""

    __slots__ = ("controller", "windows", "crash_tick")

    def __init__(self, controller: "FaultController") -> None:
        self.controller = controller
        self.windows = controller.plan.stall_windows()
        self.crash_tick = controller.plan.crash_tick()

    def blocked(self, now: int) -> Optional[Tuple[str, int]]:
        """``("crash", 0)``, ``("stall", end_tick)``, or ``None``."""
        crash = self.crash_tick
        if crash is not None and now >= crash:
            return ("crash", 0)
        for lo, hi in self.windows:
            if lo <= now < hi:
                return ("stall", hi)
            if lo > now:
                break
        return None

    def crashed(self, now: int) -> bool:
        return self.crash_tick is not None and now >= self.crash_tick


class FaultController:
    """One plan, bound to one simulation run."""

    def __init__(self, plan: FaultPlan, capture_commands: bool = False) -> None:
        self.plan = plan
        self.recovery = plan.recovery
        self.capture_commands = capture_commands
        self.engine = None
        self._tracer = NULL_TRACER
        #: Injection-side counters (created lazily on first fault).
        self.stats = StatSet("faults")
        #: Recovery-side StatSets registered by sessions/guards.
        self.registered: Dict[str, object] = {}
        #: ``channel name -> DramCommand list`` when capturing for the
        #: compliance referee.
        self.command_logs: Dict[str, list] = {}
        self._sd_site: Optional[SdFaultSite] = None

    # ------------------------------------------------------------------
    def bind(self, engine, tracer=None) -> None:
        if self.engine is not None and self.engine is not engine:
            raise RuntimeError(
                "FaultController is single-run; build a fresh one per run"
            )
        self.engine = engine
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("fault")

    # ------------------------------------------------------------------
    # Site factories (None = nothing armed for that component)
    # ------------------------------------------------------------------
    def link_site(self, name: str) -> Optional[LinkFaultSite]:
        rules = [r for r in self.plan.link if r.matches_link(name)]
        if not rules:
            return None
        return LinkFaultSite(self, name, rules)

    def dram_site(self, name: str) -> Optional[DramFaultSite]:
        rules = [r for r in self.plan.dram if r.matches_channel(name)]
        if not rules:
            return None
        return DramFaultSite(self, name, rules)

    def sd_site(self) -> Optional[SdFaultSite]:
        if not self.plan.delegator:
            return None
        if self._sd_site is None:
            self._sd_site = SdFaultSite(self)
        return self._sd_site

    # ------------------------------------------------------------------
    # Bookkeeping shared by sites and recovery components
    # ------------------------------------------------------------------
    def count(self, name: str) -> None:
        self.stats.counter(name).add()

    def trace(self, name: str, track: str, args: Dict) -> None:
        if self._tracer.enabled:
            self._tracer.instant("fault", name, track, self.engine.now, args)

    def register_stats(self, name: str, stats) -> None:
        self.registered[name] = stats

    def summary(self) -> Dict[str, Dict[str, float]]:
        """All fault/recovery counters, for reports and SimResult."""
        out = {"faults": self.stats.as_dict()}
        for name, stats in sorted(self.registered.items()):
            out[name] = stats.as_dict()
        return out
