"""Seeded, resumable chaos campaigns: CampaignSpec -> FaultPlan stream.

A campaign turns the PR 5 fault DSL into a *measured resilience
surface* (ROADMAP item 4): a :class:`CampaignSpec` names parameterized
fault-intensity distributions per site class (link corrupt/drop/delay,
DRAM bit-flips, delegator stall/crash), and deterministically
materializes one :class:`~repro.faults.plan.FaultPlan` per campaign
index.  Each plan's seed is ``derive_seed(spec.seed, index)`` -- the
same splitmix-style mixing discipline as ``repro.scenarios.arrivals``
uses per tenant -- so campaign points never perturb each other: adding
point 7 cannot move point 3's fault schedule, and a resumed or
distributed drain sees byte-identical plans.

:class:`FaultPoint` is the sweep axis: one (campaign index, scheme,
workload) cell, duck-typed to the ``repro.analysis.sweep`` point
protocol (``key``/``label``/``execute``), so campaign grids drain
through ``run_sweep`` and the lease-arbitrated work queue unchanged.
``execute`` runs the PR 5 invariant harness as the oracle, then the
multi-tenant scenario under the armed plan, and scores it with
:mod:`repro.analysis.availability`; the stored payload embeds all
three verdicts.

Intensity distributions (:class:`Intensity`):

* ``fixed``   -- every point gets ``lo``;
* ``ramp``    -- point ``i`` of ``n`` gets ``lo + (hi-lo) * i/(n-1)``
  (the classic degradation ramp);
* ``uniform`` -- an independent draw from ``[lo, hi]`` per point, via
  ``site_rng(spec.seed, "campaign.<site>", str(index))`` -- each point
  owns its stream, so the draw for point ``i`` is a function of
  ``(spec.seed, site, i)`` alone (resumability).
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.sweep import STORE_SCHEMA_VERSION
from repro.faults.plan import (
    DelegatorFault,
    DramFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    RecoveryParams,
    site_rng,
)
from repro.scenarios.arrivals import derive_seed

#: Intensity distribution modes.
INTENSITY_MODES = ("fixed", "ramp", "uniform")


class CampaignError(ValueError):
    """Invalid campaign spec (bad JSON shape, value, or reference)."""


def _canonical(payload: object) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _reject_unknown(doc: Dict[str, object], allowed: Iterable[str],
                    what: str) -> None:
    if not isinstance(doc, dict):
        raise CampaignError(f"{what} must be a JSON object")
    unknown = set(doc) - set(allowed)
    if unknown:
        raise CampaignError(
            f"unknown {what} keys: {', '.join(sorted(unknown))}"
        )


# ---------------------------------------------------------------------------
# Intensity distributions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Intensity:
    """One scalar knob's distribution across campaign points."""

    lo: float
    hi: Optional[float] = None
    mode: str = "fixed"

    def __post_init__(self) -> None:
        if self.hi is None:
            object.__setattr__(self, "hi", self.lo)
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        if self.mode not in INTENSITY_MODES:
            raise CampaignError(
                f"unknown intensity mode {self.mode!r} "
                f"(valid: {', '.join(INTENSITY_MODES)})"
            )
        if not (math.isfinite(self.lo) and math.isfinite(self.hi)):
            raise CampaignError("intensity bounds must be finite")
        if self.lo > self.hi:
            raise CampaignError(
                f"intensity lo {self.lo:g} must be <= hi {self.hi:g}"
            )

    def value(self, spec_seed: int, site: str, index: int,
              points: int) -> float:
        if self.mode == "fixed" or self.lo == self.hi:
            return self.lo
        if self.mode == "ramp":
            if points <= 1:
                return self.hi
            return self.lo + (self.hi - self.lo) * index / (points - 1)
        rng = site_rng(spec_seed, f"campaign.{site}", str(index))
        return rng.uniform(self.lo, self.hi)

    def to_json_dict(self) -> Dict[str, object]:
        return {"lo": self.lo, "hi": self.hi, "mode": self.mode}

    @classmethod
    def from_json(cls, doc, what: str) -> "Intensity":
        if isinstance(doc, (int, float)) and not isinstance(doc, bool):
            return cls(lo=float(doc))
        _reject_unknown(doc, ("lo", "hi", "mode"), what)
        if "lo" not in doc:
            raise CampaignError(f"{what} needs at least 'lo'")
        return cls(lo=doc["lo"], hi=doc.get("hi"),
                   mode=doc.get("mode", "ramp" if "hi" in doc else "fixed"))


def _intensity(value) -> Intensity:
    if isinstance(value, Intensity):
        return value
    return Intensity.from_json(value, "intensity")


# ---------------------------------------------------------------------------
# Per-site-class fault specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LinkSpec:
    """A link fault family whose rate varies across the campaign."""

    kind: str = "corrupt"
    link: str = "bob*.down"
    tag: str = "*"
    rate: Intensity = field(default_factory=lambda: Intensity(0.0))
    delay_ns: float = 0.0
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", _intensity(self.rate))
        # Materialize the extreme points now so a bad spec fails at
        # load, not at drain time (rate bounds, kind, site grammar).
        for probe in (self.rate.lo, self.rate.hi):
            self.materialize(probe)

    def materialize(self, rate: float) -> LinkFault:
        return LinkFault(
            kind=self.kind, link=self.link, tag=self.tag, rate=rate,
            delay_ns=self.delay_ns, start_ns=self.start_ns,
            stop_ns=self.stop_ns,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "link": self.link, "tag": self.tag,
            "rate": self.rate.to_json_dict(), "delay_ns": self.delay_ns,
            "start_ns": self.start_ns, "stop_ns": self.stop_ns,
        }

    _FIELDS = ("kind", "link", "tag", "rate", "delay_ns", "start_ns",
               "stop_ns")

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "LinkSpec":
        _reject_unknown(doc, cls._FIELDS, "link spec")
        kw = dict(doc)
        if "rate" in kw:
            kw["rate"] = Intensity.from_json(kw["rate"], "link rate")
        return cls(**kw)


@dataclass(frozen=True)
class DramSpec:
    """A DRAM bit-flip family whose rate varies across the campaign."""

    channel: str = "ch*"
    rate: Intensity = field(default_factory=lambda: Intensity(0.0))
    start_ns: float = 0.0
    stop_ns: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "rate", _intensity(self.rate))
        for probe in (self.rate.lo, self.rate.hi):
            self.materialize(probe)

    def materialize(self, rate: float) -> DramFault:
        return DramFault(
            channel=self.channel, rate=rate, start_ns=self.start_ns,
            stop_ns=self.stop_ns,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "channel": self.channel, "rate": self.rate.to_json_dict(),
            "start_ns": self.start_ns, "stop_ns": self.stop_ns,
        }

    _FIELDS = ("channel", "rate", "start_ns", "stop_ns")

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "DramSpec":
        _reject_unknown(doc, cls._FIELDS, "dram spec")
        kw = dict(doc)
        if "rate" in kw:
            kw["rate"] = Intensity.from_json(kw["rate"], "dram rate")
        return cls(**kw)


@dataclass(frozen=True)
class DelegatorSpec:
    """A delegator stall/crash whose onset (and length) vary."""

    kind: str = "stall"
    start_ns: Intensity = field(default_factory=lambda: Intensity(0.0))
    duration_ns: Intensity = field(default_factory=lambda: Intensity(0.0))

    def __post_init__(self) -> None:
        object.__setattr__(self, "start_ns", _intensity(self.start_ns))
        object.__setattr__(self, "duration_ns",
                           _intensity(self.duration_ns))
        for start, duration in ((self.start_ns.lo, self.duration_ns.lo),
                                (self.start_ns.hi, self.duration_ns.hi)):
            self.materialize(start, duration)

    def materialize(self, start_ns: float,
                    duration_ns: float) -> DelegatorFault:
        return DelegatorFault(
            kind=self.kind, start_ns=start_ns,
            duration_ns=duration_ns if self.kind == "stall" else 0.0,
        )

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "start_ns": self.start_ns.to_json_dict(),
            "duration_ns": self.duration_ns.to_json_dict(),
        }

    _FIELDS = ("kind", "start_ns", "duration_ns")

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "DelegatorSpec":
        _reject_unknown(doc, cls._FIELDS, "delegator spec")
        kw = dict(doc)
        for key in ("start_ns", "duration_ns"):
            if key in kw:
                kw[key] = Intensity.from_json(kw[key], f"delegator {key}")
        return cls(**kw)


# ---------------------------------------------------------------------------
# The campaign spec
# ---------------------------------------------------------------------------


def _pairs(doc: Dict[str, object],
           what: str) -> Tuple[Tuple[str, object], ...]:
    if not isinstance(doc, dict):
        raise CampaignError(f"{what} must be a JSON object of overrides")
    return tuple(sorted(doc.items()))


@dataclass(frozen=True)
class CampaignSpec:
    """A parameterized chaos campaign (the ``doram chaos`` input)."""

    name: str
    points: int
    seed: int = 1
    schemes: Tuple[str, ...] = ("doram",)
    #: Base scenario overrides applied to every cell (dotted
    #: ``apply_overrides`` keys), then one workload override-set per
    #: workload axis value.
    scenario: Tuple[Tuple[str, object], ...] = ()
    workloads: Tuple[Tuple[Tuple[str, object], ...], ...] = ((),)
    link: Tuple[LinkSpec, ...] = ()
    dram: Tuple[DramSpec, ...] = ()
    delegator: Tuple[DelegatorSpec, ...] = ()
    recovery: RecoveryParams = field(default_factory=RecoveryParams)
    #: Availability SLO deadline (request sojourn bound), ns.
    slo_ns: float = 2000.0
    #: Invariant-harness (oracle) knobs.
    benchmark: str = "libq"
    trace_length: int = 300
    functional_ops: int = 120

    def __post_init__(self) -> None:
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(
            self, "scenario", tuple(sorted(tuple(self.scenario)))
        )
        object.__setattr__(
            self, "workloads",
            tuple(tuple(sorted(tuple(wl))) for wl in self.workloads)
            or ((),),
        )
        object.__setattr__(self, "link", tuple(self.link))
        object.__setattr__(self, "dram", tuple(self.dram))
        object.__setattr__(self, "delegator", tuple(self.delegator))
        if not self.name or not isinstance(self.name, str):
            raise CampaignError("campaign name must be a non-empty string")
        if self.points < 1:
            raise CampaignError(
                f"campaign needs points >= 1 (got {self.points})"
            )
        if not self.schemes:
            raise CampaignError("campaign needs at least one scheme")
        if self.slo_ns <= 0:
            raise CampaignError("slo_ns must be > 0")
        if self.trace_length < 1 or self.functional_ops < 1:
            raise CampaignError(
                "trace_length and functional_ops must be >= 1"
            )
        if sum(1 for s in self.delegator if s.kind == "crash") > 1:
            raise CampaignError("at most one delegator crash spec")
        # Every workload must resolve to a valid ScenarioConfig, and
        # every index to a valid FaultPlan: campaign loading is the
        # one-line-exit-2 boundary, the drain loop never validates.
        for wl in self.workloads:
            self.scenario_config(wl)
        for index in range(self.points):
            self.plan_for(index)

    # -- materialization ----------------------------------------------
    def plan_for(self, index: int) -> FaultPlan:
        """The deterministic FaultPlan of campaign point ``index``."""
        if not 0 <= index < self.points:
            raise CampaignError(
                f"point index {index} out of range [0, {self.points})"
            )
        seed = self.seed
        try:
            return FaultPlan(
                seed=derive_seed(self.seed, index),
                link=tuple(
                    s.materialize(
                        s.rate.value(seed, f"link{i}", index, self.points)
                    )
                    for i, s in enumerate(self.link)
                ),
                dram=tuple(
                    s.materialize(
                        s.rate.value(seed, f"dram{i}", index, self.points)
                    )
                    for i, s in enumerate(self.dram)
                ),
                delegator=tuple(
                    s.materialize(
                        s.start_ns.value(
                            seed, f"sd{i}.start", index, self.points
                        ),
                        s.duration_ns.value(
                            seed, f"sd{i}.dur", index, self.points
                        ),
                    )
                    for i, s in enumerate(self.delegator)
                ),
                recovery=self.recovery,
            )
        except FaultPlanError as exc:
            raise CampaignError(
                f"campaign {self.name!r} point {index} materializes an "
                f"invalid plan: {exc}"
            ) from exc

    def scenario_config(self, workload: Tuple[Tuple[str, object], ...]):
        """The resolved ScenarioConfig of one workload cell."""
        from repro.scenarios.config import ScenarioConfig, apply_overrides

        overrides = dict(self.scenario)
        overrides.update(dict(workload))
        try:
            return apply_overrides(ScenarioConfig(), overrides)
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"campaign {self.name!r}: bad scenario overrides: {exc}"
            ) from exc

    def grid(self) -> List["FaultPoint"]:
        """Every cell: fault intensity x scheme x workload."""
        return [
            FaultPoint(spec=self, index=index, scheme=scheme,
                       workload_id=wl)
            for index in range(self.points)
            for scheme in self.schemes
            for wl in range(len(self.workloads))
        ]

    def describe(self) -> List[str]:
        """Resolved campaign (``doram chaos --dry-run``)."""
        lines = [
            f"campaign {self.name!r}: {self.points} points x "
            f"{len(self.schemes)} schemes x {len(self.workloads)} "
            f"workloads = {self.points * len(self.schemes) * len(self.workloads)} "
            f"cells (seed {self.seed}, slo {self.slo_ns:g} ns)",
        ]
        for wl, overrides in enumerate(self.workloads):
            label = ", ".join(f"{k}={v}" for k, v in overrides) or "(base)"
            lines.append(f"  workload {wl}: {label}")
        for index in range(self.points):
            plan = self.plan_for(index)
            rules = [
                rule.describe()
                for rule in plan.link + plan.dram + plan.delegator
            ]
            lines.append(
                f"  point {index} (plan seed {plan.seed}): "
                + ("; ".join(rules) if rules else "no fault rules")
            )
        return lines

    # -- (de)serialization --------------------------------------------
    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "points": self.points,
            "seed": self.seed,
            "schemes": list(self.schemes),
            "scenario": dict(self.scenario),
            "workloads": [dict(wl) for wl in self.workloads],
            "link": [s.to_json_dict() for s in self.link],
            "dram": [s.to_json_dict() for s in self.dram],
            "delegator": [s.to_json_dict() for s in self.delegator],
            "recovery": asdict(self.recovery),
            "slo_ns": self.slo_ns,
            "benchmark": self.benchmark,
            "trace_length": self.trace_length,
            "functional_ops": self.functional_ops,
        }

    _FIELDS = ("name", "points", "seed", "schemes", "scenario",
               "workloads", "link", "dram", "delegator", "recovery",
               "slo_ns", "benchmark", "trace_length", "functional_ops")

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "CampaignSpec":
        _reject_unknown(doc, cls._FIELDS, "campaign spec")
        if "name" not in doc or "points" not in doc:
            raise CampaignError("campaign spec needs 'name' and 'points'")
        workloads = doc.get("workloads", [{}])
        if not isinstance(workloads, list):
            raise CampaignError("'workloads' must be a list of objects")
        try:
            recovery = RecoveryParams(**doc.get("recovery", {}))
        except (TypeError, FaultPlanError) as exc:
            raise CampaignError(f"bad recovery params: {exc}") from exc
        try:
            return cls(
                name=doc["name"],
                points=int(doc["points"]),
                seed=int(doc.get("seed", 1)),
                schemes=tuple(doc.get("schemes", ("doram",))),
                scenario=_pairs(doc.get("scenario", {}), "'scenario'"),
                workloads=tuple(
                    _pairs(wl, f"workload {i}")
                    for i, wl in enumerate(workloads)
                ),
                link=tuple(
                    LinkSpec.from_json_dict(s)
                    for s in doc.get("link", ())
                ),
                dram=tuple(
                    DramSpec.from_json_dict(s)
                    for s in doc.get("dram", ())
                ),
                delegator=tuple(
                    DelegatorSpec.from_json_dict(s)
                    for s in doc.get("delegator", ())
                ),
                recovery=recovery,
                slo_ns=float(doc.get("slo_ns", 2000.0)),
                benchmark=doc.get("benchmark", "libq"),
                trace_length=int(doc.get("trace_length", 300)),
                functional_ops=int(doc.get("functional_ops", 120)),
            )
        except (TypeError, FaultPlanError) as exc:
            raise CampaignError(f"malformed campaign spec: {exc}") from exc

    @classmethod
    def from_file(cls, path: str) -> "CampaignSpec":
        try:
            with open(path) as fp:
                doc = json.load(fp)
        except OSError as exc:
            raise CampaignError(
                f"cannot read campaign spec {path!r}: "
                f"{exc.strerror or exc}"
            ) from exc
        except ValueError as exc:
            raise CampaignError(
                f"campaign spec {path!r} is not valid JSON: {exc}"
            ) from exc
        return cls.from_json_dict(doc)


# ---------------------------------------------------------------------------
# The sweep axis
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPoint:
    """One campaign cell, duck-typed to the sweep point protocol."""

    spec: CampaignSpec
    index: int
    scheme: str
    workload_id: int = 0

    @property
    def workload(self) -> Tuple[Tuple[str, object], ...]:
        return self.spec.workloads[self.workload_id]

    @property
    def label(self) -> str:
        return (f"chaos[{self.spec.name}#{self.index} "
                f"{self.scheme} w{self.workload_id}]")

    def key(self, with_digest: bool = False) -> str:
        """Content address over everything the payload depends on."""
        spec = self.spec
        doc = {
            "schema": STORE_SCHEMA_VERSION,
            "chaos": {
                "campaign": spec.name,
                "plan": spec.plan_for(self.index).to_json_dict(),
                "scenario": spec.scenario_config(
                    self.workload
                ).to_json_dict(),
                "scheme": self.scheme,
                "benchmark": spec.benchmark,
                "trace_length": spec.trace_length,
                "functional_ops": spec.functional_ops,
                "slo_ns": spec.slo_ns,
            },
            "with_digest": bool(with_digest),
        }
        return hashlib.sha256(
            _canonical(doc).encode("utf-8")
        ).hexdigest()

    def execute(self, with_digest: bool = False) -> Dict[str, object]:
        """Oracle + scenario + scorer; the stored campaign payload."""
        from repro.analysis.availability import score_scenario
        from repro.faults.inject import FaultController
        from repro.faults.invariants import check_fault_invariants
        from repro.scenarios.service import run_scenario

        spec = self.spec
        plan = spec.plan_for(self.index)

        invariants = check_fault_invariants(
            plan, scheme=self.scheme, benchmark=spec.benchmark,
            trace_length=spec.trace_length,
            functional_ops=spec.functional_ops,
        )

        tracer = None
        if with_digest:
            from repro.obs.tracer import Tracer

            tracer = Tracer()
        config = spec.scenario_config(self.workload)
        result = run_scenario(
            config, tracer=tracer, faults=FaultController(plan)
        )
        availability = score_scenario(result, plan, spec.slo_ns)

        payload: Dict[str, object] = {
            "schema": STORE_SCHEMA_VERSION,
            "point": self.to_manifest(),
            "plan": plan.to_json_dict(),
            "invariants": {
                "ok": invariants.ok,
                "violations": list(invariants.violations),
                "end_time": invariants.end_time,
                "events": invariants.events,
                "durability": dict(invariants.durability),
            },
            "result": result.to_json_dict(),
            "fault_summary": result.fault_summary.get("faults", {}),
            "availability": availability.to_json_dict(),
            "report_digest": result.report_digest(),
        }
        if tracer is not None:
            from repro.obs.export import trace_digest

            payload["trace_digest"] = trace_digest(tracer.events)
        return payload

    # -- work-queue manifests -----------------------------------------
    def to_manifest(self) -> Dict[str, object]:
        return {
            "kind": "chaos",
            "spec": self.spec.to_json_dict(),
            "index": self.index,
            "scheme": self.scheme,
            "workload_id": self.workload_id,
        }

    @classmethod
    def from_manifest(cls, doc: Dict[str, object]) -> "FaultPoint":
        return cls(
            spec=CampaignSpec.from_json_dict(doc["spec"]),
            index=int(doc["index"]),
            scheme=doc["scheme"],
            workload_id=int(doc.get("workload_id", 0)),
        )


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


def chaos_rows(
    payloads: Dict[FaultPoint, Dict[str, object]]
) -> List[Dict[str, object]]:
    """Flatten drained payloads into report rows, grid order."""
    rows = []
    for point in sorted(
        payloads,
        key=lambda p: (p.index, p.scheme, p.workload_id),
    ):
        payload = payloads[point]
        avail = payload["availability"]
        rows.append({
            "campaign": point.spec.name,
            "point": point.index,
            "scheme": point.scheme,
            "workload": point.workload_id,
            "plan_seed": payload["plan"]["seed"],
            "offered": avail["offered"],
            "completed": avail["completed"],
            "availability": avail["availability"],
            "goodput_rps": avail["goodput_rps"],
            "slo_goodput_rps": avail["slo_goodput_rps"],
            "recovery_p99_ns": avail["recovery_ns"].get("p99"),
            "mttr_ns": avail["mttr_ns"],
            "invariants_ok": bool(payload["invariants"]["ok"]),
            "violations": len(payload["invariants"]["violations"]),
        })
    return rows


def bench_records(rows: List[Dict[str, object]], label: str,
                  wall_s: float) -> List[Dict[str, object]]:
    """BENCH_chaos.json rows (``tools/bench_trajectory.py`` schema).

    One record per campaign cell; ``recovery_p99_ns`` uses ``-1.0`` as
    the no-recovery-measured sentinel (the schema forbids null values).
    """
    return [
        {
            "label": label,
            "workload": "chaos_point",
            "wall_s": round(wall_s, 3),
            "config": (f"{row['campaign']}#{row['point']}:"
                       f"{row['scheme']}:w{row['workload']}"),
            "campaign": row["campaign"],
            "availability": round(row["availability"], 6),
            "goodput_rps": round(row["goodput_rps"], 3),
            "slo_goodput_rps": round(row["slo_goodput_rps"], 3),
            "recovery_p99_ns": (
                round(row["recovery_p99_ns"], 3)
                if row["recovery_p99_ns"] is not None else -1.0
            ),
            "invariants_ok": bool(row["invariants_ok"]),
        }
        for row in rows
    ]


def render_markdown(rows: List[Dict[str, object]]) -> str:
    """Availability/goodput-under-faults curves as a markdown table."""

    def _ns(value) -> str:
        return f"{value:,.0f}" if value is not None else "-"

    lines = [
        "| point | scheme | workload | availability | goodput (rps) "
        "| SLO goodput (rps) | recovery p99 (ns) | MTTR (ns) "
        "| invariants |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row['point']} | {row['scheme']} | w{row['workload']} "
            f"| {row['availability']:.4f} "
            f"| {row['goodput_rps']:,.0f} "
            f"| {row['slo_goodput_rps']:,.0f} "
            f"| {_ns(row['recovery_p99_ns'])} "
            f"| {_ns(row['mttr_ns'])} "
            f"| {'OK' if row['invariants_ok'] else 'FAILED'} |"
        )
    return "\n".join(lines)
