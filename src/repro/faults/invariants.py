"""The end-to-end invariant harness: what must survive any fault plan.

Given a bounded :class:`~repro.faults.plan.FaultPlan`, one call to
:func:`check_fault_invariants` runs a full system simulation with the
plan armed and verifies every durability guarantee the recovery layer
promises:

1. **Termination** -- the simulation drains; no fault schedule may wedge
   the event loop or deadlock an NS core.
2. **DRAM protocol compliance** -- the implied command streams of every
   channel still pass the independent JEDEC referee
   (:class:`repro.dram.compliance.ProtocolChecker`); injection must not
   let the scheduler cut timing corners.
3. **Timing-channel discipline** -- on delegated schemes the secure
   link's request stream remains a deterministic function of the
   observable wire (:func:`repro.obs.leakage.check_recovery_discipline`),
   i.e. retransmission opened no new timing channel.
4. **Functional durability** -- a real Path ORAM over sealed buckets,
   fed transient flips at a rate matching the plan, returns the
   last-written value for every read, keeps every block on its assigned
   path, and stays within its stash bound
   (:func:`repro.faults.resilient.durability_check`).

This module is imported explicitly (``repro.faults.invariants``), not
re-exported from the package, because it pulls in the whole system
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.faults.inject import FaultController
from repro.faults.plan import FaultPlan
from repro.faults.resilient import ResilientPathOram, durability_check
from repro.oram.config import OramConfig

#: Functional-model flip probability per bucket fetch when the plan has
#: any DRAM fault rule (the timing plan's exact rates target specific
#: channels; the functional oracle just needs a comparable fault load).
FUNCTIONAL_FLIP_RATE = 0.05


@dataclass
class InvariantReport:
    """Outcome of one harness run; ``ok`` means every invariant held."""

    scheme: str
    plan: FaultPlan
    violations: List[str] = field(default_factory=list)
    end_time: int = 0
    events: int = 0
    fault_summary: Optional[Dict[str, Dict[str, float]]] = None
    durability: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        status = "OK" if self.ok else "FAILED"
        lines = [
            f"[{status}] {self.scheme} under plan seed {self.plan.seed}:",
            f"  simulated to t={self.end_time} ({self.events} events)",
        ]
        if self.fault_summary:
            injected = self.fault_summary.get("faults", {})
            if injected:
                lines.append("  faults: " + ", ".join(
                    f"{k}={int(v)}" for k, v in sorted(injected.items())
                ))
        if self.durability:
            lines.append("  durability: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.durability.items())
            ))
        for violation in self.violations:
            lines.append(f"  VIOLATION: {violation}")
        return "\n".join(lines)


def check_fault_invariants(
    plan: FaultPlan,
    scheme: str = "doram",
    benchmark: str = "libq",
    trace_length: int = 300,
    functional_ops: int = 150,
    **overrides,
) -> InvariantReport:
    """Run ``scheme`` under ``plan`` and audit every invariant above."""
    # Deferred: this module sits below repro.core in the import order.
    from repro.core.schemes import run_scheme
    from repro.dram.compliance import ProtocolChecker
    from repro.obs.leakage import check_recovery_discipline
    from repro.obs.tracer import Tracer

    report = InvariantReport(scheme=scheme, plan=plan)
    controller = FaultController(plan, capture_commands=True)
    tracer = Tracer()

    # 1. Termination: build_and_run raises on deadlock or an exhausted
    # recovery bound; both are invariant violations, not crashes.
    try:
        result = run_scheme(
            scheme, benchmark, trace_length,
            tracer=tracer, faults=controller, **overrides,
        )
    except Exception as exc:  # noqa: BLE001 - every failure is a finding
        report.violations.append(
            f"simulation did not complete: {type(exc).__name__}: {exc}"
        )
        return report
    report.end_time = result.end_time
    report.events = result.events
    report.fault_summary = result.fault_summary

    # 2. DRAM protocol compliance over every captured command stream.
    timing = result.config.dram_timing
    num_banks = result.config.channel_params.num_banks
    checker = ProtocolChecker(timing, num_banks)
    for name in sorted(controller.command_logs):
        log = controller.command_logs[name]
        for violation in checker.check(log, strict=False):
            report.violations.append(f"dram {name}: {violation}")

    # 3. Secure-link timing discipline (delegated schemes only -- the
    # on-chip baseline has no secure link to audit).
    if result.config.oram_placement == "delegated":
        for violation in check_recovery_discipline(
            tracer.events,
            secure_channel=result.config.secure_channel,
            t_cycles=result.config.t_cycles,
            deadline_ns=plan.recovery.deadline_ns,
        ):
            report.violations.append(f"link: {violation}")

    # 4. Functional durability under a comparable transient-fault load.
    flip_rate = FUNCTIONAL_FLIP_RATE if plan.dram else 0.0
    oram = ResilientPathOram(
        OramConfig(leaf_level=5), seed=plan.seed, flip_rate=flip_rate,
        retry_limit=plan.recovery.block_read_retries,
    )
    try:
        report.durability = durability_check(
            oram, num_ops=functional_ops, seed=plan.seed
        )
    except Exception as exc:  # noqa: BLE001
        report.violations.append(
            f"durability: {type(exc).__name__}: {exc}"
        )
    return report
