"""Functional durability under transient memory faults.

The timing layers (:mod:`repro.core.recovery`, :mod:`repro.faults.inject`)
model *when* a corrupted read is detected and retried; this module closes
the loop on *what*: a :class:`ResilientPathOram` runs the real functional
Path ORAM (:class:`repro.oram.path_oram.PathOram`) over sealed buckets
(:class:`repro.crypto.codec.EncryptedBucketCodec`) while a seeded fault
process flips bits in fetched images.  Every flip trips the per-bucket
MAC (:class:`~repro.crypto.codec.CodecError`), the fetch is retried
against the intact stored copy -- a *transient* fault corrupts the wire
or the sense path, not the cell array -- and the access completes with
verified data only.

:func:`durability_check` is the end-to-end oracle the invariant harness
(:mod:`repro.faults.invariants`) runs: under any bounded fault schedule,
every read returns the last value written, the placement invariant holds,
and the stash stays within its bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.crypto.codec import CodecError, EncryptedBucketCodec
from repro.faults.plan import site_rng
from repro.oram.config import OramConfig
from repro.oram.path_oram import Block, PathOram


class DurabilityError(AssertionError):
    """A read returned something other than the last written value."""


class ResilientPathOram(PathOram):
    """Functional Path ORAM whose bucket fetches suffer transient flips.

    ``flip_rate`` is the per-fetch probability of a transient bit-flip in
    the returned image (drawn from a :func:`~repro.faults.plan.site_rng`
    stream, so a given ``(seed, flip_rate)`` pair corrupts the same
    fetches in every run).  A flipped fetch fails MAC verification and is
    re-read, up to ``retry_limit`` times per bucket fetch; the stored
    image itself is never damaged, which is exactly the DRAM transient
    model of the fault plan's ``dram`` rules.
    """

    def __init__(
        self,
        config: OramConfig,
        seed: int = 0,
        flip_rate: float = 0.0,
        retry_limit: int = 16,
        stash_capacity: Optional[int] = 500,
        key: bytes = b"durability-key16",
    ) -> None:
        if not 0.0 <= flip_rate < 1.0:
            raise ValueError("flip_rate must be in [0, 1)")
        super().__init__(
            config, seed=seed, codec=EncryptedBucketCodec(key),
            stash_capacity=stash_capacity,
        )
        self.flip_rate = flip_rate
        self.retry_limit = retry_limit
        self._fault_rng = site_rng(seed, "functional", "dram")
        self.flips_injected = 0
        self.flips_detected = 0
        self.rereads = 0

    def _fetch(self, bucket: int, raw: bytes) -> bytes:
        """One memory read of a bucket image, possibly flipped in flight."""
        if self.flip_rate and self._fault_rng.random() < self.flip_rate:
            self.flips_injected += 1
            byte = self._fault_rng.randrange(len(raw))
            bit = 1 << self._fault_rng.randrange(8)
            flipped = bytearray(raw)
            flipped[byte] ^= bit
            return bytes(flipped)
        return raw

    def _decode(self, bucket: int, raw: object) -> List[Block]:
        for attempt in range(self.retry_limit + 1):
            try:
                return super()._decode(bucket, self._fetch(bucket, raw))
            except CodecError:
                # MAC caught the flip: transient, so re-read the intact
                # stored image.
                self.flips_detected += 1
                self.rereads += 1
        raise CodecError(
            f"bucket {bucket}: {self.retry_limit + 1} consecutive fetches "
            f"failed MAC verification; retry bound exhausted"
        )

    def fault_stats(self) -> Dict[str, int]:
        return {
            "flips_injected": self.flips_injected,
            "flips_detected": self.flips_detected,
            "rereads": self.rereads,
            "stash_peak": self.stash.peak,
        }


def durability_check(
    oram: ResilientPathOram,
    num_ops: int = 200,
    seed: int = 0,
) -> Dict[str, int]:
    """Random read/write workload with a shadow map as ground truth.

    Raises :class:`DurabilityError` on the first read that disagrees with
    the last write (or a non-zero first read), and re-checks the
    protocol's structural invariants at the end.  Returns the ORAM's
    fault counters merged with workload accounting.
    """
    rng = site_rng(seed, "functional", "workload")
    shadow: Dict[int, bytes] = {}
    blocks = oram.config.num_user_blocks
    block_bytes = oram.config.block_bytes
    reads = writes = 0
    for op_index in range(num_ops):
        block_id = rng.randrange(blocks)
        if rng.random() < 0.5:
            data = bytes(
                rng.getrandbits(8) for _ in range(block_bytes)
            )
            oram.write(block_id, data)
            shadow[block_id] = data
            writes += 1
        else:
            got = oram.read(block_id)
            want = shadow.get(block_id, bytes(block_bytes))
            if got != want:
                raise DurabilityError(
                    f"op {op_index}: read of block {block_id} returned "
                    f"{got[:8].hex()}..., last write was "
                    f"{want[:8].hex()}..."
                )
            reads += 1
    # Every detected flip must have been injected by us -- the codec
    # never fails on clean fetches.
    if oram.flips_detected != oram.flips_injected:
        raise DurabilityError(
            f"{oram.flips_detected} MAC failures vs "
            f"{oram.flips_injected} injected flips"
        )
    oram.check_invariants()
    out = oram.fault_stats()
    out["reads"] = reads
    out["writes"] = writes
    return out
