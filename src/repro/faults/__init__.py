"""Deterministic fault injection and recovery (the robustness layer).

* :mod:`repro.faults.plan` -- the seeded, declarative :class:`FaultPlan`
  DSL (what may go wrong, when, and the recovery constants).
* :mod:`repro.faults.inject` -- :class:`FaultController`, binding a plan
  to one run's injection sites (links, DRAM channels, the delegator).
* :mod:`repro.faults.invariants` -- the end-to-end harness asserting
  that any bounded fault schedule terminates, preserves read-your-writes
  durability and the stash bound, and keeps the DRAM protocol referee
  and the link-discipline audit green.  (Imported explicitly, not here:
  it pulls in the whole system builder.)
* :mod:`repro.faults.resilient` -- the functional Path ORAM durability
  model (MAC-detected transient flips + bounded re-read).
* :mod:`repro.faults.campaign` -- seeded chaos campaigns: CampaignSpec
  materializes a deterministic FaultPlan per point and FaultPoint
  drains fault-intensity x scheme x workload grids through the sweep
  runner.  (Imported explicitly, not here: it pulls in the analysis
  and scenario layers.)
"""

from repro.faults.inject import FaultController
from repro.faults.plan import (
    DelegatorFault,
    DramFault,
    FaultPlan,
    FaultPlanError,
    LinkFault,
    RecoveryParams,
)

__all__ = [
    "FaultController",
    "FaultPlan",
    "FaultPlanError",
    "LinkFault",
    "DramFault",
    "DelegatorFault",
    "RecoveryParams",
]
