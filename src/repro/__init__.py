"""D-ORAM reproduction (HPCA 2018, Wang/Zhang/Yang).

A complete reimplementation of the paper's system and every substrate it
depends on.  Start here:

* :func:`repro.core.run_scheme` -- simulate any Section V configuration
  (``"baseline"``, ``"doram"``, ``"doram+1/4"``, ...);
* :class:`repro.oram.PathOram` -- the functional Path ORAM (real data,
  real crypto, small trees);
* :mod:`repro.analysis.experiments` -- regenerate any paper figure;
* ``doram`` / ``python -m repro.cli`` -- the command line.

See README.md for the tour and DESIGN.md for the paper-to-module map.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
