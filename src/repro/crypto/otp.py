"""One-time-pad packet encryption (the paper's Eq. (1)).

Before execution the on-chip secure engine and the secure delegator
negotiate a key ``K`` and nonce ``N0``; each 72 B BOB packet is then
sealed as::

    OTP        = AES(K, N0, SeqNum)
    SeqNum     = SeqNum + 1
    Enc_Packet = OTP xor Cleartext_Packet

The OTP depends only on the sequence number, so pads can be pre-generated
off the critical path -- :class:`OtpStream` exposes exactly that, and
:class:`OtpEngine` pairs two streams (one per direction) with MAC-based
authentication so replayed or injected packets are rejected (Section
III-B, step 4).
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.aes import AES128
from repro.crypto.mac import mac_tag, mac_verify


class OtpMismatch(RuntimeError):
    """Authentication or integrity failure on a sealed packet."""


class OtpStream:
    """One direction's pad generator with a monotone sequence number."""

    def __init__(self, key: bytes, nonce: int) -> None:
        self._aes = AES128(key)
        self._nonce = nonce
        self.seq_num = 0

    def next_pad(self, length: int) -> Tuple[int, bytes]:
        """Return ``(seq_num, pad)`` and advance the sequence number.

        Each sequence number gets a disjoint counter range (pads never
        overlap for packets up to 1 KB).
        """
        seq = self.seq_num
        self.seq_num += 1
        pad = self._aes.keystream(self._nonce, seq * 64, length)
        return seq, pad

    def pad_for(self, seq: int, length: int) -> bytes:
        """Recompute the pad for a known sequence number (receiver side)."""
        return self._aes.keystream(self._nonce, seq * 64, length)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    return bytes(x ^ y for x, y in zip(a, b))


class OtpEngine:
    """Seals and opens packets between the CPU secure engine and the SD.

    Two independent OTP streams (request and response directions) plus an
    HMAC tag binding the ciphertext to its sequence number: injection
    fails the tag, replay fails the sequence check.
    """

    MAC_BYTES = 8

    def __init__(self, key: bytes, nonce: int) -> None:
        if len(key) != 16:
            raise ValueError("OtpEngine uses an AES-128 key")
        self._down = OtpStream(key, nonce)
        self._up = OtpStream(key, nonce ^ 0xA5A5A5A5A5A5A5A5)
        self._mac_key = key + b"mac"
        self._expect_down = 0
        self._expect_up = 0

    # -- sender side ------------------------------------------------------
    def seal(self, cleartext: bytes, upstream: bool = False) -> bytes:
        stream = self._up if upstream else self._down
        seq, pad = stream.next_pad(len(cleartext))
        body = xor_bytes(cleartext, pad)
        tag = mac_tag(self._mac_key, seq.to_bytes(8, "big") + body,
                      self.MAC_BYTES)
        return seq.to_bytes(8, "big") + body + tag

    # -- receiver side ------------------------------------------------------
    def open(self, sealed: bytes, upstream: bool = False) -> bytes:
        if len(sealed) < 8 + self.MAC_BYTES:
            raise OtpMismatch("packet too short")
        seq = int.from_bytes(sealed[:8], "big")
        body = sealed[8:-self.MAC_BYTES]
        tag = sealed[-self.MAC_BYTES:]
        if not mac_verify(self._mac_key, sealed[:8] + body, tag):
            raise OtpMismatch("MAC check failed (injected packet?)")
        expected = self._expect_up if upstream else self._expect_down
        if seq != expected:
            raise OtpMismatch(
                f"sequence {seq} != expected {expected} (replayed packet?)"
            )
        if upstream:
            self._expect_up += 1
            pad = self._up.pad_for(seq, len(body))
        else:
            self._expect_down += 1
            pad = self._down.pad_for(seq, len(body))
        return xor_bytes(body, pad)
