"""One-time-pad packet encryption (the paper's Eq. (1)).

Before execution the on-chip secure engine and the secure delegator
negotiate a key ``K`` and nonce ``N0``; each 72 B BOB packet is then
sealed as::

    OTP        = AES(K, N0, SeqNum)
    SeqNum     = SeqNum + 1
    Enc_Packet = OTP xor Cleartext_Packet

The OTP depends only on the sequence number, so pads can be pre-generated
off the critical path -- :class:`OtpStream` exposes exactly that, and
:class:`OtpEngine` pairs two streams (one per direction) with MAC-based
authentication so replayed or injected packets are rejected (Section
III-B, step 4).

Memoization
-----------
The D-ORAM wire protocol is a fixed format: every packet is 72 B, so
every pad request is for the same length and pads are consumed strictly
in sequence order.  :class:`OtpStream` therefore keeps the pads it
generates in a small cache keyed by sequence number; the receiver-side
:meth:`OtpStream.pad_for` pops a cached pad instead of re-running AES
when the same stream object serves both ends (loopback tests, replay
checks, pre-generation).  :class:`OtpEngine` counts the hits and misses
in its :class:`~repro.sim.stats.StatSet` so the cache's effect is
observable.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.aes import AES128
from repro.crypto.mac import mac_tag, mac_verify
from repro.sim.stats import StatSet

#: Pads kept per stream awaiting their :meth:`OtpStream.pad_for` pickup.
#: Consumption is in-order, so the live window is tiny; the bound only
#: guards against a sender whose receiver never drains.
_PAD_CACHE_LIMIT = 1024


class OtpMismatch(RuntimeError):
    """Authentication or integrity failure on a sealed packet."""


class OtpStream:
    """One direction's pad generator with a monotone sequence number."""

    def __init__(self, key: bytes, nonce: int) -> None:
        self._aes = AES128(key)
        self._nonce = nonce
        self.seq_num = 0
        self._pad_cache: dict = {}

    def next_pad(self, length: int) -> Tuple[int, bytes]:
        """Return ``(seq_num, pad)`` and advance the sequence number.

        Each sequence number gets a disjoint counter range (pads never
        overlap for packets up to 1 KB).  The pad is cached for a later
        :meth:`pad_for` of the same sequence number.
        """
        seq = self.seq_num
        self.seq_num += 1
        pad = self._pad_cache.get(seq)
        if pad is None or len(pad) != length:
            pad = self._aes.keystream(self._nonce, seq * 64, length)
        if len(self._pad_cache) < _PAD_CACHE_LIMIT:
            self._pad_cache[seq] = pad
        return seq, pad

    def pregenerate(self, count: int, length: int) -> None:
        """Fill the cache for the next ``count`` sequence numbers --
        the paper's off-critical-path pad generation."""
        start = self.seq_num
        cache = self._pad_cache
        for seq in range(start, start + count):
            if seq not in cache and len(cache) < _PAD_CACHE_LIMIT:
                cache[seq] = self._aes.keystream(
                    self._nonce, seq * 64, length
                )

    def pad_for(self, seq: int, length: int) -> bytes:
        """Pad for a known sequence number (receiver side).

        Pops the cached pad when the sender half of this stream already
        generated it; recomputes otherwise.
        """
        pad = self._pad_cache.pop(seq, None)
        if pad is not None and len(pad) == length:
            return pad
        return self._aes.keystream(self._nonce, seq * 64, length)

    def cached_pad(self, seq: int) -> bool:
        """True when ``seq``'s pad is sitting in the cache."""
        return seq in self._pad_cache


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (single big-int op, not a
    per-byte loop -- this runs once per packet per direction)."""
    if len(a) != len(b):
        raise ValueError("xor operands must have equal length")
    return (
        int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
    ).to_bytes(len(a), "big")


class OtpEngine:
    """Seals and opens packets between the CPU secure engine and the SD.

    Two independent OTP streams (request and response directions) plus an
    HMAC tag binding the ciphertext to its sequence number: injection
    fails the tag, replay fails the sequence check.  ``stats`` counts
    ``pad_hits`` / ``pad_misses`` of the open path's pad lookup.
    """

    MAC_BYTES = 8

    def __init__(self, key: bytes, nonce: int, name: str = "otp") -> None:
        if len(key) != 16:
            raise ValueError("OtpEngine uses an AES-128 key")
        self._down = OtpStream(key, nonce)
        self._up = OtpStream(key, nonce ^ 0xA5A5A5A5A5A5A5A5)
        self._mac_key = key + b"mac"
        self._expect_down = 0
        self._expect_up = 0
        self.stats = StatSet(name)
        self._pad_hits = self.stats.counter("pad_hits")
        self._pad_misses = self.stats.counter("pad_misses")

    # -- sender side ------------------------------------------------------
    def seal(self, cleartext: bytes, upstream: bool = False) -> bytes:
        stream = self._up if upstream else self._down
        seq, pad = stream.next_pad(len(cleartext))
        body = xor_bytes(cleartext, pad)
        tag = mac_tag(self._mac_key, seq.to_bytes(8, "big") + body,
                      self.MAC_BYTES)
        return seq.to_bytes(8, "big") + body + tag

    # -- receiver side ------------------------------------------------------
    def open(self, sealed: bytes, upstream: bool = False) -> bytes:
        if len(sealed) < 8 + self.MAC_BYTES:
            raise OtpMismatch("packet too short")
        seq = int.from_bytes(sealed[:8], "big")
        body = sealed[8:-self.MAC_BYTES]
        tag = sealed[-self.MAC_BYTES:]
        if not mac_verify(self._mac_key, sealed[:8] + body, tag):
            raise OtpMismatch("MAC check failed (injected packet?)")
        expected = self._expect_up if upstream else self._expect_down
        if seq != expected:
            raise OtpMismatch(
                f"sequence {seq} != expected {expected} (replayed packet?)"
            )
        stream = self._up if upstream else self._down
        if stream.cached_pad(seq):
            self._pad_hits.value += 1
        else:
            self._pad_misses.value += 1
        if upstream:
            self._expect_up += 1
        else:
            self._expect_down += 1
        pad = stream.pad_for(seq, len(body))
        return xor_bytes(body, pad)
