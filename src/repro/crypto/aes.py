"""AES-128 block cipher, implemented from the FIPS-197 specification.

Pure Python, table-driven.  The S-box is derived (multiplicative inverse
in GF(2^8) followed by the affine transform) rather than transcribed, and
the implementation is validated against the FIPS-197 Appendix C known
answer test in the test suite.

This is the cipher behind the paper's Eq. (1) OTP generation; the secure
engine and the delegator would use a hardware pipeline, so speed is not a
goal here -- correctness and auditability are.
"""

from __future__ import annotations

from typing import List, Sequence

# ---------------------------------------------------------------------------
# GF(2^8) arithmetic and table construction
# ---------------------------------------------------------------------------


def _xtime(a: int) -> int:
    """Multiply by x (i.e. {02}) in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Full GF(2^8) multiplication (used by MixColumns and tests)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> List[int]:
    # Multiplicative inverses via exhaustive scan (256 elements, done once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = []
    for x in range(256):
        b = inverse[x]
        # Affine transform: b ^ rotl(b,1..4) ^ 0x63.
        value = b
        for shift in range(1, 5):
            value ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox.append(value ^ 0x63)
    return sbox


SBOX: List[int] = _build_sbox()
INV_SBOX: List[int] = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


class AES128:
    """AES with a 128-bit key: ``encrypt_block`` / ``decrypt_block``.

    The state is kept as a 16-byte list in column-major order, as in the
    specification.
    """

    BLOCK_BYTES = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self.round_keys = self._expand_key(key)

    # ------------------------------------------------------------------
    @staticmethod
    def _expand_key(key: bytes) -> List[List[int]]:
        """FIPS-197 key schedule: 11 round keys of 16 bytes each."""
        words: List[List[int]] = [list(key[4 * i: 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]            # RotWord
                temp = [SBOX[b] for b in temp]        # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        return [
            sum((words[4 * r + c] for c in range(4)), [])
            for r in range(11)
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _add_round_key(state: List[int], rk: Sequence[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: List[int], box: Sequence[int]) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: List[int], inverse: bool = False) -> None:
        # state[col*4 + row]; row r rotates left by r (right when inverse).
        for row in range(1, 4):
            values = [state[col * 4 + row] for col in range(4)]
            shift = -row if inverse else row
            values = values[shift % 4:] + values[: shift % 4]
            for col in range(4):
                state[col * 4 + row] = values[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4: col * 4 + 4]
            state[col * 4 + 0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
            state[col * 4 + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
            state[col * 4 + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
            state[col * 4 + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4: col * 4 + 4]
            state[col * 4 + 0] = (gf_mul(a[0], 14) ^ gf_mul(a[1], 11)
                                  ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9))
            state[col * 4 + 1] = (gf_mul(a[0], 9) ^ gf_mul(a[1], 14)
                                  ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13))
            state[col * 4 + 2] = (gf_mul(a[0], 13) ^ gf_mul(a[1], 9)
                                  ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11))
            state[col * 4 + 3] = (gf_mul(a[0], 11) ^ gf_mul(a[1], 13)
                                  ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14))

    # ------------------------------------------------------------------
    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(plaintext)
        self._add_round_key(state, self.round_keys[0])
        for round_no in range(1, 10):
            self._sub_bytes(state, SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self.round_keys[round_no])
        self._sub_bytes(state, SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self.round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = list(ciphertext)
        self._add_round_key(state, self.round_keys[10])
        for round_no in range(9, 0, -1):
            self._shift_rows(state, inverse=True)
            self._sub_bytes(state, INV_SBOX)
            self._add_round_key(state, self.round_keys[round_no])
            self._inv_mix_columns(state)
        self._shift_rows(state, inverse=True)
        self._sub_bytes(state, INV_SBOX)
        self._add_round_key(state, self.round_keys[0])
        return bytes(state)

    # ------------------------------------------------------------------
    def keystream(self, nonce: int, counter: int, length: int) -> bytes:
        """CTR-mode keystream: AES(K, nonce || counter..) truncated.

        The 16-byte counter block is ``nonce`` (8 bytes, big endian)
        followed by a per-call incrementing 8-byte block counter.
        """
        out = bytearray()
        block_index = 0
        while len(out) < length:
            block = (
                (nonce & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
                + ((counter + block_index) & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
            )
            out.extend(self.encrypt_block(block))
            block_index += 1
        return bytes(out[:length])
