"""Message authentication for packets and tree buckets.

HMAC-SHA256 truncated to the caller's tag size.  The paper requires
authentication (reject injected packets) and integrity/freshness (reject
replays) but cites prior work for the construction, so a standard HMAC is
a faithful substitute; sequence-number binding for freshness lives in the
callers (:class:`repro.crypto.otp.OtpEngine`, the bucket codec).
"""

from __future__ import annotations

import hashlib
import hmac


def mac_tag(key: bytes, message: bytes, tag_bytes: int = 8) -> bytes:
    """Truncated HMAC-SHA256 tag over ``message``."""
    if tag_bytes < 4 or tag_bytes > 32:
        raise ValueError("tag_bytes must be in [4, 32]")
    return hmac.new(key, message, hashlib.sha256).digest()[:tag_bytes]


def mac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time comparison of the expected tag against ``tag``."""
    expected = mac_tag(key, message, len(tag))
    return hmac.compare_digest(expected, tag)
