"""Bucket codecs: how Path ORAM buckets look in untrusted memory.

The tree contents must be re-encrypted on every write-back so that an
observer cannot tell which blocks moved (Section II-B).  A codec encodes a
list of ``(block_id, leaf, data)`` tuples into the fixed-size byte image a
bucket occupies (real blocks are indistinguishable from dummy padding) and
back.

* :class:`PlainCodec` -- fixed-size serialization without encryption, for
  tests that inspect structure.
* :class:`EncryptedBucketCodec` -- AES-CTR encryption with a fresh
  per-write counter plus an HMAC tag per bucket; both the probabilistic
  re-encryption and the integrity check the paper calls for.
"""

from __future__ import annotations

import struct
from functools import lru_cache
from typing import List, Optional, Tuple

from repro.crypto.aes import AES128
from repro.crypto.mac import mac_tag, mac_verify
from repro.crypto.otp import xor_bytes

#: (block_id, leaf, data) with block_id == _DUMMY_ID marking padding.
BucketTuples = List[Tuple[int, int, bytes]]

_DUMMY_ID = 0xFFFFFFFFFFFFFFFF
_HEADER = struct.Struct(">QQ")  # block_id, leaf


@lru_cache(maxsize=8)
def _dummy_slots(count: int, block_bytes: int) -> bytes:
    """The padding tail of a bucket image.

    Dummy slots are a fixed byte pattern per geometry, yet every encode
    used to rebuild them slot by slot; buckets are mostly padding (Z=4
    with ~1 real block typical), so this is the bulk of serialization.
    """
    return (_HEADER.pack(_DUMMY_ID, 0) + bytes(block_bytes)) * count


class CodecError(RuntimeError):
    """Malformed, tampered, or replayed bucket image."""


class BucketCodec:
    """Interface: see :meth:`encode_bucket` / :meth:`decode_bucket`."""

    def encode_bucket(
        self, bucket: int, blocks: BucketTuples, bucket_size: int,
        block_bytes: int,
    ) -> bytes:  # pragma: no cover - interface
        raise NotImplementedError

    def decode_bucket(
        self, bucket: int, raw: bytes, bucket_size: int, block_bytes: int,
    ) -> BucketTuples:  # pragma: no cover - interface
        raise NotImplementedError


def _serialize(blocks: BucketTuples, bucket_size: int, block_bytes: int) -> bytes:
    if len(blocks) > bucket_size:
        raise CodecError(f"{len(blocks)} blocks exceed Z={bucket_size}")
    out = bytearray()
    for block_id, leaf, data in blocks:
        if len(data) != block_bytes:
            raise CodecError("wrong block payload size")
        out += _HEADER.pack(block_id, leaf) + data
    padding = bucket_size - len(blocks)
    if padding:
        out += _dummy_slots(padding, block_bytes)
    return bytes(out)


def _deserialize(raw: bytes, bucket_size: int, block_bytes: int) -> BucketTuples:
    slot_bytes = _HEADER.size + block_bytes
    if len(raw) != bucket_size * slot_bytes:
        raise CodecError("wrong bucket image size")
    blocks: BucketTuples = []
    for i in range(bucket_size):
        chunk = raw[i * slot_bytes: (i + 1) * slot_bytes]
        block_id, leaf = _HEADER.unpack(chunk[: _HEADER.size])
        if block_id == _DUMMY_ID:
            continue
        blocks.append((block_id, leaf, chunk[_HEADER.size:]))
    return blocks


class PlainCodec(BucketCodec):
    """Fixed-size serialization only (no confidentiality)."""

    def encode_bucket(self, bucket, blocks, bucket_size, block_bytes):
        return _serialize(blocks, bucket_size, block_bytes)

    def decode_bucket(self, bucket, raw, bucket_size, block_bytes):
        return _deserialize(raw, bucket_size, block_bytes)


class EncryptedBucketCodec(BucketCodec):
    """AES-CTR + HMAC bucket sealing with per-write freshness.

    Every encode uses a new global write counter as the CTR nonce, so two
    writes of identical plaintext produce unrelated ciphertexts -- the
    "re-encrypt after each access" requirement.  The counter is stored in
    the image head (an observer learns only write recency, which it can
    see anyway) and bound into the MAC together with the bucket index, so
    images cannot be swapped between buckets undetected.
    """

    MAC_BYTES = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("EncryptedBucketCodec uses an AES-128 key")
        self._aes = AES128(key)
        self._mac_key = key + b"bucket-mac"
        self._write_counter = 0

    def image_bytes(self, bucket_size: int, block_bytes: int) -> int:
        """Size of the stored image for geometry checks."""
        return 8 + bucket_size * (_HEADER.size + block_bytes) + self.MAC_BYTES

    def encode_bucket(self, bucket, blocks, bucket_size, block_bytes):
        plain = _serialize(blocks, bucket_size, block_bytes)
        counter = self._write_counter
        self._write_counter += 1
        pad = self._aes.keystream(counter, 0, len(plain))
        cipher = xor_bytes(plain, pad)
        head = counter.to_bytes(8, "big")
        tag = mac_tag(self._mac_key,
                      head + bucket.to_bytes(8, "big") + cipher,
                      self.MAC_BYTES)
        return head + cipher + tag

    def decode_bucket(self, bucket, raw, bucket_size, block_bytes):
        if not isinstance(raw, (bytes, bytearray)):
            raise CodecError("encrypted codec expects a byte image")
        if len(raw) != self.image_bytes(bucket_size, block_bytes):
            raise CodecError("wrong encrypted image size")
        head, cipher, tag = raw[:8], raw[8:-self.MAC_BYTES], raw[-self.MAC_BYTES:]
        if not mac_verify(self._mac_key,
                          head + bucket.to_bytes(8, "big") + cipher, tag):
            raise CodecError(f"bucket {bucket}: MAC check failed")
        counter = int.from_bytes(head, "big")
        pad = self._aes.keystream(counter, 0, len(cipher))
        plain = xor_bytes(cipher, pad)
        return _deserialize(plain, bucket_size, block_bytes)
