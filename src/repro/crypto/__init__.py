"""Cryptographic primitives for the secure channel and the ORAM tree.

The paper's Eq. (1) one-time-pad packet encryption is AES in counter mode
over a pre-shared ``(K, N0)``; :mod:`repro.crypto.aes` implements AES-128
from scratch (validated against FIPS-197), :mod:`repro.crypto.otp` builds
the OTP stream and packet sealing on top, and :mod:`repro.crypto.codec`
provides the encrypted/authenticated bucket representation the functional
Path ORAM stores in untrusted memory.

MACs use HMAC-SHA256 from the standard library -- the paper's
authentication/integrity bits "adopt the similar designs in previous
studies" without fixing a construction, so a standard MAC is faithful.
"""

from repro.crypto.aes import AES128
from repro.crypto.otp import OtpEngine, OtpStream
from repro.crypto.mac import mac_tag, mac_verify
from repro.crypto.codec import BucketCodec, PlainCodec, EncryptedBucketCodec

__all__ = [
    "AES128",
    "OtpEngine",
    "OtpStream",
    "mac_tag",
    "mac_verify",
    "BucketCodec",
    "PlainCodec",
    "EncryptedBucketCodec",
]
