"""Trace records and a USIMM-style on-disk format.

A record is "``gap`` non-memory instructions, then one memory access".
The text format is one record per line::

    <gap> R|W <hex line address>

which mirrors USIMM's trace input closely enough that real MSC traces can
be converted with a one-line awk script should they be available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One memory access preceded by ``gap`` non-memory instructions."""

    gap: int
    is_write: bool
    line_addr: int

    def __post_init__(self) -> None:
        if self.gap < 0:
            raise ValueError("gap must be non-negative")
        if self.line_addr < 0:
            raise ValueError("line address must be non-negative")

    @property
    def instructions(self) -> int:
        """Instructions this record accounts for (gap + the access)."""
        return self.gap + 1


def write_trace(records: Iterable[TraceRecord], fp: IO[str]) -> int:
    """Serialize records; returns the number written."""
    count = 0
    for rec in records:
        op = "W" if rec.is_write else "R"
        fp.write(f"{rec.gap} {op} {rec.line_addr:x}\n")
        count += 1
    return count


def read_trace(fp: IO[str]) -> Iterator[TraceRecord]:
    """Parse the text format back into records (ignores blank lines)."""
    for line_no, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3 or parts[1] not in ("R", "W"):
            raise ValueError(f"malformed trace line {line_no}: {line!r}")
        yield TraceRecord(
            gap=int(parts[0]),
            is_write=(parts[1] == "W"),
            line_addr=int(parts[2], 16),
        )
