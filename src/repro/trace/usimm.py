"""Reader for USIMM / Memory Scheduling Championship trace files.

The paper's workloads are MSC traces fed to USIMM.  Those traces are not
redistributable, but anyone holding them can drop them straight into
this reproduction: USIMM's input format is one memory operation per
line ::

    <non-memory instructions since last op> R <hex byte address> <hex pc>
    <non-memory instructions since last op> W <hex byte address>

(the fetch PC is present only on reads).  This module converts that
stream into :class:`~repro.trace.trace_format.TraceRecord` objects --
byte addresses become 64 B line addresses -- so a real MSC trace and the
synthetic generator are interchangeable everywhere in the library.
"""

from __future__ import annotations

from typing import IO, Iterator, Optional

from repro.trace.trace_format import TraceRecord


def read_usimm_trace(
    fp: IO[str],
    line_bytes: int = 64,
    limit: Optional[int] = None,
) -> Iterator[TraceRecord]:
    """Parse a USIMM-format trace into records.

    Parameters
    ----------
    fp:
        Text stream of the trace file.
    line_bytes:
        Cache-line size used to fold byte addresses to line addresses.
    limit:
        Optional cap on the number of records (traces are huge).
    """
    if line_bytes <= 0 or line_bytes & (line_bytes - 1):
        raise ValueError("line_bytes must be a positive power of two")
    shift = line_bytes.bit_length() - 1
    count = 0
    for line_no, line in enumerate(fp, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 3 or parts[1] not in ("R", "W"):
            raise ValueError(
                f"malformed USIMM trace line {line_no}: {line!r}"
            )
        if parts[1] == "R" and len(parts) not in (3, 4):
            raise ValueError(f"bad read record on line {line_no}")
        if parts[1] == "W" and len(parts) != 3:
            raise ValueError(f"bad write record on line {line_no}")
        try:
            gap = int(parts[0])
            byte_addr = int(parts[2], 16)
        except ValueError as exc:
            raise ValueError(
                f"unparseable fields on line {line_no}: {line!r}"
            ) from exc
        yield TraceRecord(
            gap=gap,
            is_write=(parts[1] == "W"),
            line_addr=byte_addr >> shift,
        )
        count += 1
        if limit is not None and count >= limit:
            return


def sniff_usimm(sample: str) -> bool:
    """Heuristic: does this text look like a USIMM trace?

    USIMM read records carry a 4th PC column; our native format never
    does.  Used by tooling that accepts either format.
    """
    for line in sample.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 4 and parts[1] == "R":
            return True
        if len(parts) == 3 and parts[1] in ("R", "W"):
            # Ambiguous: both formats allow 3 columns; USIMM addresses
            # are byte-grained (usually not tiny integers).
            try:
                return int(parts[2], 16) >= (1 << 12)
            except ValueError:
                return False
        return False
    return False
