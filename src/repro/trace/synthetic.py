"""Synthetic memory-trace generator.

Generates a stream of :class:`~repro.trace.trace_format.TraceRecord`
modelling the access behaviour knobs that matter to a DRAM system:

* **MPKI** -- misses per kilo-instruction sets the mean instruction gap
  between accesses (geometric distribution, optionally with a bursty
  mixture component that produces clustered misses);
* **spatial locality** -- with probability ``stream_prob`` the next access
  continues the current sequential stream (row-buffer friendly), otherwise
  it jumps to a random line in the working set (bank/row conflict heavy);
* **read/write mix** -- writes are drawn i.i.d. with ``write_fraction``;
* **working set** -- the number of distinct lines the random jumps cover.

Everything is driven by ``random.Random(seed)`` so traces are perfectly
reproducible and distinct across co-running application copies (seed is
offset by the copy index).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from math import log
from typing import Iterator

from repro.trace.trace_format import TraceRecord


@dataclass(frozen=True)
class TraceParams:
    """Tunable personality of one synthetic workload."""

    mpki: float
    write_fraction: float = 0.30
    stream_prob: float = 0.6
    burst_prob: float = 0.15
    burst_gap_mean: float = 4.0
    working_set_lines: int = 1 << 18  # 16 MB of 64 B lines
    seed: int = 1

    def __post_init__(self) -> None:
        if self.mpki <= 0:
            raise ValueError("mpki must be positive")
        for name in ("write_fraction", "stream_prob", "burst_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.working_set_lines < 2:
            raise ValueError("working set must hold at least 2 lines")

    @property
    def mean_gap(self) -> float:
        """Mean non-memory instructions between accesses for this MPKI."""
        return 1000.0 / self.mpki


class SyntheticTrace:
    """A reproducible, restartable synthetic trace."""

    def __init__(self, params: TraceParams, length: int) -> None:
        if length < 1:
            raise ValueError("length must be positive")
        self.params = params
        self.length = length

    def __iter__(self) -> Iterator[TraceRecord]:
        return self.generate()

    def generate(self) -> Iterator[TraceRecord]:
        """Yield ``length`` records; each call restarts from the seed."""
        p = self.params
        rng = random.Random(p.seed)
        # The non-burst component's mean is chosen so the mixture hits the
        # target mean gap exactly.
        base_mean = (p.mean_gap - p.burst_prob * p.burst_gap_mean) / max(
            1.0 - p.burst_prob, 1e-9
        )
        base_mean = max(base_mean, 1.0)
        position = rng.randrange(p.working_set_lines)

        # Per-record inline of _geometric with the log denominators
        # precomputed (base_mean is always > 0; the burst mean may be 0,
        # in which case _geometric returns 0 without consuming a draw).
        uniform = rng.random
        randrange = rng.randrange
        burst_prob = p.burst_prob
        stream_prob = p.stream_prob
        write_fraction = p.write_fraction
        working_set = p.working_set_lines
        base_denom = log(1.0 - 1.0 / (base_mean + 1.0))
        burst_mean = p.burst_gap_mean
        burst_denom = (
            log(1.0 - 1.0 / (burst_mean + 1.0)) if burst_mean > 0 else None
        )

        for _ in range(self.length):
            if uniform() < burst_prob:
                if burst_denom is None:
                    gap = 0
                else:
                    u = uniform()
                    gap = int(log(u if u > 1e-300 else 1e-300) / burst_denom)
            else:
                u = uniform()
                gap = int(log(u if u > 1e-300 else 1e-300) / base_denom)
            if uniform() < stream_prob:
                position = (position + 1) % working_set
            else:
                position = randrange(working_set)
            is_write = uniform() < write_fraction
            yield TraceRecord(gap=gap, is_write=is_write, line_addr=position)

    # ------------------------------------------------------------------
    def measured_mpki(self) -> float:
        """MPKI of the generated stream (for calibration tests)."""
        instructions = 0
        accesses = 0
        for rec in self.generate():
            instructions += rec.instructions
            accesses += 1
        return 1000.0 * accesses / instructions if instructions else 0.0


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric-ish integer with the given mean (>= 0)."""
    if mean <= 0:
        return 0
    # Inverse-CDF sampling of a geometric distribution on {0, 1, ...}
    # with success probability 1/(mean+1).
    u = rng.random()
    p_success = 1.0 / (mean + 1.0)
    return int(log(max(u, 1e-300)) / log(1.0 - p_success))


def with_copy_seed(params: TraceParams, copy_index: int) -> TraceParams:
    """Clone ``params`` for the ``copy_index``-th co-running instance.

    The paper runs eight copies of the same program (multi-programmed);
    each copy must follow a distinct random path or their accesses would
    march in lockstep and alias queueing artifacts.
    """
    return TraceParams(
        mpki=params.mpki,
        write_fraction=params.write_fraction,
        stream_prob=params.stream_prob,
        burst_prob=params.burst_prob,
        burst_gap_mean=params.burst_gap_mean,
        working_set_lines=params.working_set_lines,
        seed=params.seed + 7919 * (copy_index + 1),
    )
