"""The Table III benchmark catalog.

Fifteen memory-intensive programs from the 2012 Memory Scheduling
Championship suite (PARSEC, commercial, SPEC, BioBench) with the MPKI the
paper lists in Table III.  The memory *personality* columns
(``stream_prob``, ``write_fraction``, ``burst_prob``, working set) are our
calibration -- chosen from the programs' published characterizations
(e.g. libquantum and leslie3d stream; mummer's suffix-tree walk is a
pointer chase; the commercial traces are transaction-like and bursty) --
since the real traces are not redistributable.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterator, List, Tuple

from repro.trace.synthetic import SyntheticTrace, TraceParams, with_copy_seed
from repro.trace.trace_format import TraceRecord


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table III entry plus synthetic-personality calibration."""

    name: str
    code: str
    suite: str
    mpki: float
    stream_prob: float
    write_fraction: float
    burst_prob: float
    working_set_lines: int

    def params(self, seed: int = 1) -> TraceParams:
        return TraceParams(
            mpki=self.mpki,
            write_fraction=self.write_fraction,
            stream_prob=self.stream_prob,
            burst_prob=self.burst_prob,
            working_set_lines=self.working_set_lines,
            seed=seed,
        )


_WS_SMALL = 1 << 16   # 4 MB of lines -- mostly cache-resident, low pressure
_WS_MED = 1 << 18     # 16 MB
_WS_LARGE = 1 << 20   # 64 MB -- far beyond the 4 MB LLC

#: Table III of the paper (MPKI in parentheses there), keyed by full name.
BENCHMARKS: List[BenchmarkSpec] = [
    # PARSEC
    BenchmarkSpec("black", "bl", "PARSEC", 4.2, 0.55, 0.25, 0.10, _WS_MED),
    BenchmarkSpec("face", "fa", "PARSEC", 26.8, 0.45, 0.30, 0.20, _WS_LARGE),
    BenchmarkSpec("ferret", "fe", "PARSEC", 8.0, 0.50, 0.30, 0.15, _WS_MED),
    BenchmarkSpec("fluid", "fl", "PARSEC", 17.5, 0.60, 0.35, 0.15, _WS_LARGE),
    BenchmarkSpec("stream", "st", "PARSEC", 12.9, 0.90, 0.45, 0.05, _WS_LARGE),
    BenchmarkSpec("swapt", "sw", "PARSEC", 10.9, 0.50, 0.30, 0.15, _WS_MED),
    # Commercial
    BenchmarkSpec("comm1", "c1", "COMM", 7.3, 0.35, 0.35, 0.30, _WS_MED),
    BenchmarkSpec("comm2", "c2", "COMM", 12.6, 0.35, 0.35, 0.30, _WS_LARGE),
    BenchmarkSpec("comm3", "c3", "COMM", 4.2, 0.40, 0.30, 0.25, _WS_SMALL),
    BenchmarkSpec("comm4", "c4", "COMM", 3.7, 0.40, 0.30, 0.25, _WS_SMALL),
    BenchmarkSpec("comm5", "c5", "COMM", 4.5, 0.40, 0.30, 0.25, _WS_MED),
    # SPEC
    BenchmarkSpec("leslie", "le", "SPEC", 23.1, 0.85, 0.30, 0.05, _WS_LARGE),
    BenchmarkSpec("libq", "li", "SPEC", 12.0, 0.95, 0.10, 0.02, _WS_MED),
    # BioBench
    BenchmarkSpec("mummer", "mu", "BIOBENCH", 24.0, 0.15, 0.15, 0.20, _WS_LARGE),
    BenchmarkSpec("tigr", "ti", "BIOBENCH", 6.7, 0.70, 0.20, 0.10, _WS_LARGE),
]

_BY_CODE: Dict[str, BenchmarkSpec] = {b.code: b for b in BENCHMARKS}
_BY_NAME: Dict[str, BenchmarkSpec] = {b.name: b for b in BENCHMARKS}


def benchmark_by_code(code: str) -> BenchmarkSpec:
    """Look up a benchmark by its two-letter code or full name."""
    if code in _BY_CODE:
        return _BY_CODE[code]
    if code in _BY_NAME:
        return _BY_NAME[code]
    raise KeyError(f"unknown benchmark {code!r}; "
                   f"codes: {sorted(_BY_CODE)} names: {sorted(_BY_NAME)}")


@lru_cache(maxsize=256)
def _materialized_trace(
    code: str, length: int, copy_index: int, segment: int
) -> Tuple[TraceRecord, ...]:
    """Generate-once record storage behind :func:`benchmark_trace`.

    Records are frozen, so the same tuple can back every consumer; an
    experiment that runs the same benchmark under several schemes (the
    common figure shape) pays for generation once.
    """
    spec = benchmark_by_code(code)
    params = spec.params(seed=1 + 104729 * segment)
    params = with_copy_seed(params, copy_index)
    return tuple(SyntheticTrace(params, length).generate())


def benchmark_trace(
    code: str, length: int, copy_index: int = 0, segment: int = 0
) -> Iterator[TraceRecord]:
    """Trace stream for one co-running copy of a benchmark.

    ``segment`` selects a different region of the (infinite) synthetic
    program -- Fig. 12 profiles on a *different trace segment* than the
    one measured, which this parameter reproduces.
    """
    return iter(_materialized_trace(code, length, copy_index, segment))
