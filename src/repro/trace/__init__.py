"""Workload traces.

The paper drives USIMM with the 2012 Memory Scheduling Championship traces
(500 M-instruction Simpoints of PARSEC, commercial, SPEC and BioBench
programs).  Those traces are not redistributable, so this package provides
a synthetic generator calibrated to Table III: each benchmark is a seeded
stochastic process with the paper's MPKI and a hand-assigned memory
personality (streaming vs. pointer-chasing, read/write mix, burstiness)
chosen to match the program's published behaviour.

DESIGN.md records this substitution: relative sensitivities (memory-hungry
programs suffer more from ORAM co-run) are preserved; absolute
per-benchmark slowdowns are not expected to match the paper's.
"""

from repro.trace.trace_format import TraceRecord, read_trace, write_trace
from repro.trace.synthetic import SyntheticTrace, TraceParams
from repro.trace.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_by_code,
    benchmark_trace,
)
from repro.trace.usimm import read_usimm_trace, sniff_usimm

__all__ = [
    "TraceRecord",
    "read_trace",
    "write_trace",
    "SyntheticTrace",
    "TraceParams",
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_by_code",
    "benchmark_trace",
    "read_usimm_trace",
    "sniff_usimm",
]
