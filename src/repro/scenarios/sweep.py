"""Scenario sweep points: tenant-count x arrival-rate grids.

A :class:`ScenarioPoint` plugs the service layer into the PR-2 sweep
runner (:func:`repro.analysis.sweep.run_sweep`): it is picklable and
hashable, content-addresses itself over the *resolved*
:class:`~repro.scenarios.config.ScenarioConfig`, and carries its own
``execute`` method, which the generalized ``execute_point`` dispatches
to.  Store entries therefore share the RunPoint machinery -- atomic
writes, resume, parallel workers, per-point timeouts -- without the
analysis layer importing the scenario layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.sweep import (
    STORE_SCHEMA_VERSION,
    ResultStore,
    SweepResult,
    canonical_json,
    run_sweep,
)
from repro.scenarios.config import ScenarioConfig, apply_overrides
from repro.scenarios.service import ScenarioResult, run_scenario


@dataclass(frozen=True)
class ScenarioPoint:
    """One independent scenario run in a sweep.

    ``overrides`` is a sorted tuple of ``(field, value)`` pairs applied
    to the default :class:`ScenarioConfig`; ``arrival.<field>`` dotted
    keys reach the nested spec.  Values must be picklable and JSON-safe.
    """

    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "overrides", tuple(sorted(tuple(self.overrides)))
        )

    @property
    def label(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in self.overrides)
        return f"scenario[{extra}]" if extra else "scenario[default]"

    def resolved_config(self) -> ScenarioConfig:
        """The full :class:`ScenarioConfig` this point runs."""
        return apply_overrides(ScenarioConfig(), dict(self.overrides))

    def key(self, with_digest: bool = False) -> str:
        """Content address: sha256 of the resolved config + schema."""
        doc = {
            "schema": STORE_SCHEMA_VERSION,
            "scenario": self.resolved_config().to_json_dict(),
            "with_digest": bool(with_digest),
        }
        return hashlib.sha256(
            canonical_json(doc).encode("utf-8")
        ).hexdigest()

    def execute(self, with_digest: bool = False) -> Dict[str, object]:
        """Run the scenario and return its serialized store payload.

        The sweep runner's ``execute_point`` calls this (instead of
        ``_simulate_point``) for any point that provides it; the payload
        mirrors the RunPoint shape so store tooling stays generic.
        """
        tracer = None
        if with_digest:
            from repro.obs.tracer import Tracer

            tracer = Tracer()
        result = run_scenario(self.resolved_config(), tracer=tracer)
        payload: Dict[str, object] = {
            "schema": STORE_SCHEMA_VERSION,
            "point": {
                "kind": "scenario",
                "overrides": [list(kv) for kv in self.overrides],
            },
            "result": result.to_json_dict(),
            "report_digest": result.report_digest(),
        }
        if tracer is not None:
            from repro.obs.export import trace_digest

            payload["trace_digest"] = trace_digest(tracer.events)
        return payload


def scenario_grid(
    tenant_counts: Sequence[int],
    rates_rps: Sequence[float],
    base_overrides: Mapping[str, object] = (),
) -> List[ScenarioPoint]:
    """The SLO-sweep grid: one point per tenants x arrival-rate cell."""
    base = tuple(dict(base_overrides).items())
    return [
        ScenarioPoint(overrides=base + (
            ("num_tenants", int(tenants)),
            ("arrival.rate_rps", float(rate)),
        ))
        for tenants in tenant_counts
        for rate in rates_rps
    ]


def run_slo_sweep(
    points: Iterable[ScenarioPoint],
    workers: Optional[int] = None,
    store: Optional[ResultStore] = None,
    resume: bool = True,
    with_digest: bool = False,
    progress=None,
    timeout_s: Optional[float] = None,
) -> SweepResult:
    """Execute scenario points through the shared sweep runner."""
    return run_sweep(
        points, workers=workers, store=store, resume=resume,
        with_digest=with_digest, progress=progress, timeout_s=timeout_s,
    )


def slo_rows(sweep_result: SweepResult) -> List[Dict[str, object]]:
    """Flatten sweep payloads into table rows (one per grid cell).

    Rows carry the knobs the grid varied plus the aggregate SLO numbers
    -- what EXPERIMENTS.md and the ``doram serve --sweep`` table print.
    """
    rows: List[Dict[str, object]] = []
    for point, payload in sweep_result.payloads.items():
        result = ScenarioResult.from_json_dict(payload["result"])
        config = result.config
        rows.append({
            "tenants": config.num_tenants,
            "arrival": config.arrival.kind,
            "rate_rps": config.arrival.rate_rps,
            "offered": result.total("offered"),
            "admitted": result.total("admitted"),
            "completed": result.total("completed"),
            "goodput_rps": result.goodput_rps(),
            "worst_p50_ns": result.worst("p50"),
            "worst_p99_ns": result.worst("p99"),
            "worst_p999_ns": result.worst("p999"),
            "report_digest": payload.get("report_digest", ""),
            "label": point.label,
        })
    rows.sort(key=lambda r: (r["tenants"], r["rate_rps"]))
    return rows
