"""Multi-tenant open-loop service layer on the D-ORAM fabric.

The scenario layer turns the trace-replay simulator into a *service*
model: N concurrent S-App tenants, each behind its own ORAM tree and
fixed-rate frontend, driven by seeded open-loop arrival processes,
sharing secure delegators and the BOB channel fabric, optionally under
live admission control derived from the paper's D-ORAM/c profiling rule.
See DESIGN.md §11 for the architecture and the determinism contract.
"""

from repro.scenarios.arrivals import (
    ARRIVAL_KINDS,
    ArrivalSpec,
    ArrivalStream,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    derive_seed,
    make_stream,
    merge_streams,
)
from repro.scenarios.admission import AdmissionGovernor
from repro.scenarios.config import (
    FAULT_KINDS,
    ScenarioConfig,
    TenantFault,
    apply_overrides,
)
from repro.scenarios.service import (
    ScenarioResult,
    build_scenario,
    format_report,
    golden_scenario_config,
    golden_scenario_digests,
    run_scenario,
)
from repro.scenarios.sweep import (
    ScenarioPoint,
    run_slo_sweep,
    scenario_grid,
    slo_rows,
)
from repro.scenarios.tenant import TenantSource

__all__ = [
    "ARRIVAL_KINDS",
    "AdmissionGovernor",
    "ArrivalSpec",
    "ArrivalStream",
    "BurstyArrivals",
    "DiurnalArrivals",
    "FAULT_KINDS",
    "PoissonArrivals",
    "ScenarioConfig",
    "ScenarioPoint",
    "ScenarioResult",
    "TenantFault",
    "TenantSource",
    "apply_overrides",
    "build_scenario",
    "derive_seed",
    "format_report",
    "golden_scenario_config",
    "golden_scenario_digests",
    "make_stream",
    "merge_streams",
    "run_scenario",
    "run_slo_sweep",
    "scenario_grid",
    "slo_rows",
]
