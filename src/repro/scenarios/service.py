"""Scenario assembly and execution: N tenants on the D-ORAM fabric.

``run_scenario(ScenarioConfig)`` wires the multi-tenant service machine
-- the BOB fabric via :func:`repro.core.system.build_bob_fabric`, one
:class:`~repro.core.delegator.SecureDelegator` per secure channel, one
ORAM tree + fixed-rate frontend + open-loop :class:`~repro.scenarios.
tenant.TenantSource` per tenant, and optionally the live admission
governor -- runs it open-loop to the horizon (plus the drain epilogue),
and returns a :class:`ScenarioResult` with per-tenant SLO metrics.

Determinism contract (DESIGN.md §11): the result's
:meth:`ScenarioResult.to_json_dict` payload, its :meth:`ScenarioResult.
report_digest`, and the event-trace digest are all bit-identical across
runs, scheduler backends (heap/wheel), and periodic modes (eager/lazy)
for the same config -- pinned by ``tests/scenarios`` and the extended
census-invariance suite.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.metrics import SLO_QUANTILES, latency_quantiles_ns
from repro.core.delegator import OramSequencer, SecureDelegator
from repro.core.frontend import DelegatorBackend, OnChipBackend, OramFrontend
from repro.core.recovery import (
    BobChannelSink,
    FailoverBackend,
    SecureLinkSession,
)
from repro.core.system import build_bob_fabric
from repro.dram.address_mapping import DeviceGeometry
from repro.dram.commands import TrafficClass
from repro.dram.scheduler import SharePolicy
from repro.obs.snapshot import StatsSampler
from repro.oram.controller import OramController
from repro.oram.layout import OramLayout
from repro.scenarios.admission import AdmissionGovernor
from repro.scenarios.arrivals import derive_seed, make_stream
from repro.scenarios.config import ScenarioConfig
from repro.scenarios.tenant import TenantSource
from repro.sim.engine import Engine, TICKS_PER_NS, ns

#: Bumped when the report payload changes shape (mirrors the sweep
#: store's schema discipline).
SCENARIO_REPORT_VERSION = 1

#: App-id base for the per-channel delegators (distinct from tenant ids,
#: which start at 0 -- there are no NS background apps in a scenario).
_SD_APP_ID_BASE = 1000


def _canonical_json(payload: object) -> str:
    import json

    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass
class ScenarioResult:
    """Everything measured in one scenario run (the SLO report)."""

    config: ScenarioConfig
    #: Per-tenant report rows keyed by stringified tenant id.
    tenants: Dict[str, Dict[str, object]]
    #: Per-sub-channel summary rows (same shape as ``SimResult.channels``).
    channels: Dict[str, Dict[str, float]]
    #: Admission-governor decision log and shed accounting.
    governor: Dict[str, object]
    events: int = 0
    end_time: int = 0
    snapshots: List[Dict] = field(default_factory=list)
    #: Raw dispatches (drops under lazy periodic mode); excluded from
    #: equality and serialization like ``SimResult.raw_events``.
    raw_events: int = field(default=0, compare=False)
    #: ``FaultController.summary()`` of an armed run.  Live-only (not
    #: serialized, not compared): armed-empty plans must keep the stored
    #: payload and report digest bit-identical to a bare run.
    fault_summary: Dict[str, object] = field(
        default_factory=dict, compare=False
    )
    #: Per-tenant ``(completion_tick, sojourn_ticks)`` streams for the
    #: availability scorer, keyed like :attr:`tenants`.  Live-only for
    #: the same reason as :attr:`fault_summary`.
    tenant_completions: Dict[str, List] = field(
        default_factory=dict, compare=False
    )

    # -- headline metrics -------------------------------------------------
    def total(self, counter: str) -> int:
        return sum(int(row[counter]) for row in self.tenants.values())

    def goodput_rps(self) -> float:
        """Aggregate completed requests per second of offered-load window."""
        return self.total("completed") / (self.config.horizon_ns * 1e-9)

    def worst(self, percentile: str) -> float:
        """Worst per-tenant latency percentile in ns (e.g. ``"p999"``)."""
        return max(
            float(row["latency_ns"][percentile])
            for row in self.tenants.values()
        )

    # -- (de)serialization (sweep result store) -------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """Complete JSON-safe report; every value is an exact integer, a
        string, or a deterministically computed float, so the canonical
        encoding is byte-identical across runs and processes."""
        return {
            "version": SCENARIO_REPORT_VERSION,
            "config": self.config.to_json_dict(),
            "tenants": self.tenants,
            "channels": self.channels,
            "governor": self.governor,
            "events": self.events,
            "end_time": self.end_time,
            "snapshots": self.snapshots,
        }

    @classmethod
    def from_json_dict(cls, state: Dict[str, object]) -> "ScenarioResult":
        return cls(
            config=ScenarioConfig.from_json_dict(state["config"]),
            tenants=state["tenants"],
            channels=state["channels"],
            governor=state["governor"],
            events=state["events"],
            end_time=state["end_time"],
            snapshots=state["snapshots"],
        )

    def report_digest(self) -> str:
        """sha256 over the canonical-JSON report -- the byte-identity
        oracle the acceptance criteria and CI smoke gate pin."""
        return hashlib.sha256(
            _canonical_json(self.to_json_dict()).encode("utf-8")
        ).hexdigest()


class _DrainMonitor:
    """Terminates the run: horizon passed and every admitted request done."""

    __slots__ = ("engine", "sources", "horizon_passed")

    def __init__(self, engine: Engine, sources: List[TenantSource]) -> None:
        self.engine = engine
        self.sources = sources
        self.horizon_passed = False

    def outstanding(self) -> int:
        return sum(source.outstanding for source in self.sources)

    def completion(self) -> None:
        if self.horizon_passed and self.outstanding() == 0:
            self.engine.stop()

    def horizon(self) -> None:
        self.horizon_passed = True
        if self.outstanding() == 0:
            self.engine.stop()


def build_scenario(
    config: ScenarioConfig,
    tracer=None,
    faults=None,
) -> Dict[str, object]:
    """Instantiate the scenario machine without running it.

    Returns the component dictionary ``run_scenario`` executes; exposed
    separately so tests can poke at the wiring (and so the builder stays
    a pure function of the config).

    ``faults`` (a :class:`repro.faults.FaultController`, single-run) arms
    link/DRAM fault sites and the per-tenant secure-link recovery
    protocol, exactly as ``build_and_run`` does for single-app runs.  An
    armed controller with an *empty* plan leaves the run bit-identical
    to ``faults=None`` (recovery framing is schedule-neutral).
    """
    engine = Engine(tracer=tracer)
    if faults is not None:
        faults.bind(engine, tracer)
    geometry = DeviceGeometry()
    secure_policy = SharePolicy({
        TrafficClass.SECURE: config.secure_share,
        TrafficClass.NORMAL: 1.0 - config.secure_share,
    })
    channels, bobs = build_bob_fabric(
        engine,
        num_channels=config.num_channels,
        secure_channels=config.secure_channels,
        secure_subchannels=config.secure_subchannels,
        normal_subchannels=config.normal_subchannels,
        dram_timing=config.dram_timing,
        channel_params=config.channel_params,
        link_params=config.link_params,
        secure_policy=secure_policy,
        tracer=tracer,
    )

    if faults is not None:
        for key in sorted(channels):
            channel = channels[key]
            site = faults.dram_site(channel.name)
            if site is not None:
                channel.arm_faults(site)
            if faults.capture_commands:
                faults.command_logs[channel.name] = \
                    channel.start_command_log()
        for ch in sorted(bobs):
            bob = bobs[ch]
            for link in (bob.down, bob.up):
                site = faults.link_site(link.name)
                if site is not None:
                    link.arm_faults(site)

    secure_set = frozenset(config.secure_channels)
    normal_bobs = {
        ch: bob for ch, bob in bobs.items() if ch not in secure_set
    }
    # Link-pipeline classes (DORAM_LINK).  Fault-armed runs always take
    # the legacy per-packet classes: recovery frames, NAKs and
    # armed-empty plans are pinned against the per-packet schedule (same
    # fallback rule as ``build_and_run``).
    if faults is None:
        from repro.core.link_kernel import link_classes

        frontend_cls, backend_cls, delegator_cls = link_classes(engine)
    else:
        frontend_cls = OramFrontend
        backend_cls = DelegatorBackend
        delegator_cls = SecureDelegator
    delegators: Dict[int, SecureDelegator] = {}
    for sc in sorted(secure_set):
        delegators[sc] = delegator_cls(
            engine, bobs[sc], normal_bobs,
            process_ns=config.sd_process_ns,
            app_id=_SD_APP_ID_BASE + sc,
            name=f"sd{sc}",
            tracer=tracer,
        )

    # One ORAM tree per tenant, stacked per channel so regions never
    # collide (the multi-S-App layout rule from ``build_and_run``).
    home_base = {sc: 1 << 24 for sc in secure_set}
    controllers: Dict[int, OramController] = {}
    first_controller: Dict[int, OramController] = {}
    for tenant_id in range(config.num_tenants):
        sc = config.secure_channel_of(tenant_id)
        layout = OramLayout(
            config.oram,
            home_targets=[
                (sc, i) for i in range(config.secure_subchannels)
            ],
            geometry=geometry,
            base_line=home_base[sc],
        )
        home_base[sc] += layout.home_lines_per_target + (1 << 16)
        ctrl = OramController(
            engine, config.oram, layout, delegators[sc].sink,
            seed=config.seed + 31 * tenant_id,
            name=f"oram{tenant_id}",
            tracer=tracer,
        )
        controllers[tenant_id] = ctrl
        first_controller.setdefault(sc, ctrl)
    for sc, ctrl in first_controller.items():
        delegators[sc].sequencer = OramSequencer(ctrl)
    if faults is not None:
        for sc in sorted(secure_set):
            delegators[sc].arm_recovery(faults)

    horizon = ns(config.horizon_ns)
    sources: List[TenantSource] = []
    frontends: List[OramFrontend] = []
    tenant_faults = {
        fault.tenant_id: fault for fault in config.tenant_faults
    }
    monitor = _DrainMonitor(engine, sources)
    for tenant_id in range(config.num_tenants):
        sc = config.secure_channel_of(tenant_id)
        session = None
        if faults is not None:
            ctrl = controllers[tenant_id]

            def _make_fallback(ctrl=ctrl, tenant_id=tenant_id, sc=sc):
                # Host-side Path ORAM over the normal BOB path; built
                # lazily, only if the watchdog ever fires.
                fb_sink = BobChannelSink(
                    bobs, app_id=_SD_APP_ID_BASE + sc, faults=faults,
                    retry_limit=faults.recovery.block_read_retries,
                )
                fb_ctrl = OramController(
                    engine, ctrl.config, ctrl.layout, fb_sink,
                    seed=config.seed + 31 * tenant_id,
                    name=f"oram{tenant_id}.fb",
                    tracer=tracer,
                )
                return OnChipBackend(engine, fb_ctrl)

            session = SecureLinkSession(
                engine, bobs[sc], delegators[sc], ctrl,
                faults.recovery, faults,
                fallback_factory=_make_fallback,
                name=f"sdlink{tenant_id}",
            )
            backend = FailoverBackend(session)
        else:
            backend = backend_cls(
                engine, bobs[sc], delegators[sc],
                controller=controllers[tenant_id],
            )
        frontend = frontend_cls(
            engine, backend, t_cycles=config.t_cycles,
            name=f"oram_fe{tenant_id}", tracer=tracer,
        )
        if session is not None:
            session.bind_pacer(frontend.pacer)
        frontends.append(frontend)
        stream = make_stream(
            config.arrival, derive_seed(config.seed, tenant_id)
        )
        source = TenantSource(
            engine, tenant_id, frontend, stream,
            horizon=horizon,
            queue_cap=config.queue_cap,
            write_fraction=config.write_fraction,
            request_seed=derive_seed(config.seed ^ 0x5EED, tenant_id),
            fault=tenant_faults.get(tenant_id),
            on_outstanding_change=(
                monitor.completion if config.drain else None
            ),
            tracer=tracer,
        )
        sources.append(source)

    governor: Optional[AdmissionGovernor] = None
    if config.governed:
        groups = {
            sc: [sources[t] for t in config.tenants_on(sc)]
            for sc in sorted(secure_set)
            if config.tenants_on(sc)
        }
        governor = AdmissionGovernor(
            engine, groups,
            interval=ns(config.control_interval_ns),
            slo_target_ticks=ns(config.slo_target_ns),
            min_admitting=config.min_admitting,
            tracer=tracer,
        )

    sampler: Optional[StatsSampler] = None
    if config.snapshot_interval_ns > 0:
        sampler = StatsSampler(
            engine, ns(config.snapshot_interval_ns), tracer=tracer
        )
        for source, frontend in zip(sources, frontends):
            sampler.add_source(
                source.name,
                _TenantSampler(source, frontend),
            )
        for sc in sorted(secure_set):
            delegator = delegators[sc]
            sampler.add_source(
                delegator.name,
                lambda d=delegator: {"pending": float(d.backlog)},
            )

    return {
        "engine": engine,
        "channels": channels,
        "bobs": bobs,
        "delegators": delegators,
        "controllers": controllers,
        "frontends": frontends,
        "sources": sources,
        "governor": governor,
        "sampler": sampler,
        "monitor": monitor,
        "horizon": horizon,
    }


class _TenantSampler:
    """Queue-depth-over-time source for one tenant (picklable-free,
    allocation-free closure replacement)."""

    __slots__ = ("source", "frontend")

    def __init__(self, source: TenantSource, frontend: OramFrontend) -> None:
        self.source = source
        self.frontend = frontend

    def __call__(self) -> Dict[str, float]:
        return {
            "queued": float(len(self.source._queue)),
            "backlog": float(self.frontend.backlog),
            "outstanding": float(self.source.outstanding),
        }


def run_scenario(
    config: ScenarioConfig,
    tracer=None,
    max_events: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    faults=None,
) -> ScenarioResult:
    """Build, simulate, and report one multi-tenant scenario."""
    parts = build_scenario(config, tracer=tracer, faults=faults)
    engine: Engine = parts["engine"]
    sources: List[TenantSource] = parts["sources"]
    frontends: List[OramFrontend] = parts["frontends"]
    governor: Optional[AdmissionGovernor] = parts["governor"]
    sampler: Optional[StatsSampler] = parts["sampler"]
    monitor: _DrainMonitor = parts["monitor"]
    horizon: int = parts["horizon"]

    # Start order is part of the determinism contract: frontends (the
    # fixed-rate emitters), then tenant arrival streams in id order,
    # then the governor and sampler, then the horizon sentinel.
    for frontend in frontends:
        frontend.start()
    for source in sources:
        source.start()
    if governor is not None:
        governor.start()
    if sampler is not None:
        sampler.start()

    if config.drain:
        def _horizon() -> None:
            if governor is not None:
                governor.stop()
            monitor.horizon()
        engine.at(horizon, _horizon)
    else:
        engine.at(horizon, engine.stop)

    if progress is not None:
        progress(
            f"serving {config.num_tenants} tenants for "
            f"{config.horizon_ns / 1e3:.0f} us "
            f"({config.arrival.kind} @ {config.arrival.rate_rps:g} rps)"
        )
    engine.run(max_events=max_events)

    # -- collect ----------------------------------------------------------
    horizon_s = config.horizon_ns * 1e-9
    tenant_rows: Dict[str, Dict[str, object]] = {}
    for source, frontend in zip(sources, frontends):
        stats = source.stats
        completed = stats.counter("completed").value
        lat = dict(latency_quantiles_ns(
            source.sojourn, TICKS_PER_NS, SLO_QUANTILES
        ))
        lat["count"] = source.sojourn_stat.count
        lat["mean"] = source.sojourn_stat.mean / TICKS_PER_NS
        lat["max"] = (source.sojourn_stat.max or 0) / TICKS_PER_NS
        queue_hist = stats.histogram("queue_depth")
        tenant_rows[str(source.tenant_id)] = {
            "secure_channel": config.secure_channel_of(source.tenant_id),
            "offered": stats.counter("offered").value,
            "admitted": stats.counter("admitted").value,
            "rejected_overflow": stats.counter("rejected_overflow").value,
            "rejected_shed": stats.counter("rejected_shed").value,
            "rejected_fault": stats.counter("rejected_fault").value,
            "completed": completed,
            "writes": stats.counter("writes").value,
            "goodput_rps": completed / horizon_s,
            "latency_ns": lat,
            "queue_depth": {
                "p50": queue_hist.quantile(0.5),
                "p99": queue_hist.quantile(0.99),
                "max": queue_hist.max_value,
            },
            "oram_emissions": {
                "real": frontend.pacer.stats.counter("real").value,
                "dummy": frontend.pacer.stats.counter("dummy").value,
            },
            "functional_digest": source.functional_digest,
            "timing_digest": source.timing_digest,
        }

    channels = parts["channels"]
    channel_rows: Dict[str, Dict[str, float]] = {}
    for key in sorted(channels):
        channel = channels[key]
        channel_rows[channel.name] = {
            "utilization": channel.utilization(),
            "row_hit_rate": channel.row_hit_rate(),
            "reads": channel.stats.counter("reads_serviced").value,
            "writes": channel.stats.counter("writes_serviced").value,
            "secure_reads": channel.stats.latency(
                "secure_read_latency").count,
            "secure_read_ns": channel.stats.latency(
                "secure_read_latency").mean / TICKS_PER_NS,
        }

    governor_doc: Dict[str, object] = {"enabled": config.governed}
    if governor is not None:
        governor_doc["decisions"] = governor.decisions
        governor_doc["sheds"] = governor.sheds

    return ScenarioResult(
        config=config,
        tenants=tenant_rows,
        channels=channel_rows,
        governor=governor_doc,
        events=engine.events_dispatched,
        end_time=engine.now,
        snapshots=sampler.rows if sampler is not None else [],
        raw_events=engine.raw_events_dispatched,
        fault_summary=faults.summary() if faults is not None else {},
        tenant_completions={
            str(source.tenant_id): list(source.completions)
            for source in sources
        },
    )


def golden_scenario_config() -> "ScenarioConfig":
    """The small fixed scenario pinned by the golden/census suites.

    Four tenants, a 13-level tree, writes in the mix, and the admission
    governor armed -- every scenario mechanism is exercised, yet a run
    takes well under a second.  Digest history lives in
    ``tests/obs/golden_digests.json`` under the ``"scenario"`` key;
    regenerate with ``python tools/regen_goldens.py`` after intentional
    timing changes.
    """
    from repro.oram.config import OramConfig

    return ScenarioConfig(
        num_tenants=4,
        horizon_ns=20_000.0,
        oram=OramConfig(leaf_level=12),
        seed=7,
        write_fraction=0.25,
        slo_target_ns=800.0,
    )


def golden_scenario_digests() -> Dict[str, str]:
    """``{"report": ..., "trace": ...}`` digests of the golden scenario."""
    from repro.obs.export import trace_digest
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    result = run_scenario(golden_scenario_config(), tracer=tracer)
    return {
        "report": result.report_digest(),
        "trace": trace_digest(tracer.events),
    }


def format_report(result: ScenarioResult) -> str:
    """Human-readable SLO table (the ``doram serve`` stdout form)."""
    lines = [
        f"tenants={result.config.num_tenants} "
        f"arrival={result.config.arrival.kind}"
        f"@{result.config.arrival.rate_rps:g}rps "
        f"horizon={result.config.horizon_ns / 1e3:g}us "
        f"seed={result.config.seed}",
        f"{'tenant':>6} {'ch':>3} {'offered':>8} {'admit':>7} {'shed':>6} "
        f"{'done':>7} {'goodput':>10} {'p50ns':>8} {'p99ns':>8} "
        f"{'p999ns':>8} {'maxns':>9}",
    ]
    for tenant_id in sorted(result.tenants, key=int):
        row = result.tenants[tenant_id]
        lat = row["latency_ns"]
        shed = (int(row["rejected_shed"]) + int(row["rejected_overflow"])
                + int(row["rejected_fault"]))
        lines.append(
            f"{tenant_id:>6} {row['secure_channel']:>3} "
            f"{row['offered']:>8} {row['admitted']:>7} {shed:>6} "
            f"{row['completed']:>7} {row['goodput_rps']:>10,.0f} "
            f"{lat['p50']:>8,.0f} {lat['p99']:>8,.0f} "
            f"{lat['p999']:>8,.0f} {lat['max']:>9,.0f}"
        )
    lines.append(
        f"aggregate: offered={result.total('offered')} "
        f"admitted={result.total('admitted')} "
        f"completed={result.total('completed')} "
        f"goodput={result.goodput_rps():,.0f} rps "
        f"worst-p999={result.worst('p999'):,.0f} ns"
    )
    if result.governor.get("enabled"):
        decisions = result.governor.get("decisions", [])
        sheds = result.governor.get("sheds", 0)
        lines.append(
            f"governor: {len(decisions)} decisions, {sheds} tenant-window "
            f"sheds"
        )
    lines.append(
        f"simulated {result.end_time / TICKS_PER_NS / 1000:.1f} us, "
        f"{result.events:,} events; report digest "
        f"{result.report_digest()[:16]}..."
    )
    return "\n".join(lines)
