"""Live admission control: the D-ORAM/c profiling rule as a governor.

The paper applies ``recommend_c`` offline: profile the latency ratio on a
spare trace segment, pick ``c`` once, run with it (Section V-C).  The
service layer closes the loop instead.  Every ``interval`` ticks the
governor computes, per secure channel, the mean request sojourn over the
window just ended, forms the ratio against the operator's SLO target --
the open-loop analogue of ``T25mix / T33`` (how much worse than
acceptable is the loaded secure channel running?) -- and feeds it to
:func:`repro.core.channel_sharing.recommend_c` with the channel's tenant
count standing in for the NS-App population:

* ratio <= 1 ("large" category): the channel meets its SLO; every tenant
  admits.
* ratio > 1 ("small" category): the channel is past its SLO; only the
  suggested number of tenants (clamped to ``min_admitting``) keep
  admitting, lowest tenant id first, and the rest shed arrivals until a
  later window recovers.

Decisions are deterministic functions of simulator state and are logged
(tick, channel, ratio, category, admitting count) into the scenario
report, so a sweep can show the policy engaging as load crosses the SLO.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.channel_sharing import recommend_c
from repro.obs.tracer import NULL_TRACER
from repro.scenarios.tenant import TenantSource
from repro.sim.engine import Engine


class AdmissionGovernor:
    """Fixed-cadence, per-secure-channel admission control loop."""

    def __init__(
        self,
        engine: Engine,
        groups: Dict[int, Sequence[TenantSource]],
        interval: int,
        slo_target_ticks: int,
        min_admitting: int = 1,
        tracer=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("governor interval must be positive ticks")
        if slo_target_ticks <= 0:
            raise ValueError("slo target must be positive ticks")
        self.engine = engine
        self.groups = {
            channel: list(tenants) for channel, tenants in groups.items()
        }
        self.interval = interval
        self.slo_target = slo_target_ticks
        self.min_admitting = min_admitting
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("sd")
        #: One row per (tick, channel) decision, in decision order.
        self.decisions: List[Dict[str, object]] = []
        self._sheds = 0
        self._stopped = False

    def start(self) -> None:
        self.engine.after(self.interval, self._tick)

    def stop(self) -> None:
        """Stop rescheduling (drain epilogue: shedding would be unfair
        to requests that arrived before the horizon)."""
        self._stopped = True
        for tenants in self.groups.values():
            for tenant in tenants:
                tenant.admitting = True

    @property
    def sheds(self) -> int:
        """Total tenant-window shed decisions taken."""
        return self._sheds

    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        for channel in sorted(self.groups):
            tenants = self.groups[channel]
            count = total = 0
            for tenant in tenants:
                t_count, t_total = tenant.take_window()
                count += t_count
                total += t_total
            if count == 0:
                # Quiet window: no evidence either way -- hold the
                # previous admitting set, log the hold.
                admitting = sum(1 for t in tenants if t.admitting)
                self.decisions.append({
                    "ts": now, "channel": channel, "ratio": None,
                    "category": "hold", "admitting": admitting,
                })
                continue
            # A window of zero-sojourn completions (all stores accepted
            # instantly) yields ratio 0, which recommend_c rejects;
            # clamp to a positive epsilon -- still firmly "large".
            ratio = max((total / count) / self.slo_target, 1e-12)
            decision = recommend_c(ratio, len(tenants))
            if decision.category == "small":
                allowed = max(self.min_admitting, decision.suggested_c)
            else:
                allowed = len(tenants)
            allowed = min(allowed, len(tenants))
            for index, tenant in enumerate(tenants):
                admit = index < allowed
                if tenant.admitting and not admit:
                    self._sheds += 1
                tenant.admitting = admit
            self.decisions.append({
                "ts": now, "channel": channel, "ratio": ratio,
                "category": decision.category, "admitting": allowed,
            })
            tracer = self._tracer
            if tracer.enabled:
                tracer.instant(
                    "sd", "admission", f"governor.ch{channel}", now,
                    {"ratio": ratio, "admitting": allowed},
                )
        self.engine.after(self.interval, self._tick)
