"""Per-tenant open-loop source: arrivals -> admission -> ORAM frontend.

One :class:`TenantSource` drives one S-App tenant.  It owns the tenant's
arrival stream, admission queue, request-content RNG, SLO statistics, and
two running sha256 digests:

* the **functional digest** folds ``(seq, block_id, op)`` per completed
  request -- *what* the tenant asked for and got back, independent of
  timing.  Running tenant A alone or beside contending tenants must not
  move it (the isolation regression).
* the **timing digest** additionally folds arrival and completion ticks,
  so any schedule change is observable per tenant.

The source sits in front of the PR-era :class:`~repro.core.frontend.
OramFrontend` (the fixed-rate emitter): admitted requests feed the
frontend whenever it has space; reads complete at the ORAM response,
writes complete at frontend acceptance (the ORAM write happens
obliviously later), matching the paper's store semantics.
"""

from __future__ import annotations

import hashlib
import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.core.frontend import OramFrontend
from repro.dram.commands import OpType
from repro.obs.tracer import NULL_TRACER
from repro.scenarios.arrivals import ArrivalStream
from repro.scenarios.config import TenantFault
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet

#: Sojourn histogram resolution: 10 ns buckets keep p999 meaningful at
#: microsecond-scale latencies without unbounded dense storage.
SOJOURN_BUCKET_NS = 10


class _TenantDone:
    """Completion context for one admitted read (one allocation each)."""

    __slots__ = ("tenant", "seq", "block_id", "arrival")

    def __init__(self, tenant: "TenantSource", seq: int, block_id: int,
                 arrival: int) -> None:
        self.tenant = tenant
        self.seq = seq
        self.block_id = block_id
        self.arrival = arrival

    def __call__(self, time: int) -> None:
        self.tenant._complete(self.seq, self.block_id, False, self.arrival,
                              time)


class TenantSource:
    """Open-loop driver for one tenant."""

    def __init__(
        self,
        engine: Engine,
        tenant_id: int,
        frontend: OramFrontend,
        arrivals: ArrivalStream,
        *,
        horizon: int,
        queue_cap: int,
        write_fraction: float = 0.0,
        request_seed: int = 0,
        fault: Optional[TenantFault] = None,
        on_outstanding_change=None,
        tracer=None,
    ) -> None:
        self.engine = engine
        self.tenant_id = tenant_id
        self.frontend = frontend
        self.arrivals = arrivals
        self.horizon = horizon
        self.queue_cap = queue_cap
        self.write_fraction = write_fraction
        self.name = f"tenant{tenant_id}"
        self.stats = StatSet(self.name)
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("sd")
        #: Queued-but-not-yet-issued requests: (arrival_tick, seq).
        self._queue: Deque[Tuple[int, int]] = deque()
        self._next_seq = 0
        #: Requests admitted but not yet completed (reads in flight plus
        #: everything still queued); drain termination watches this.
        self.outstanding = 0
        self._on_outstanding_change = on_outstanding_change
        #: Governor switch: when False, new arrivals are shed.
        self.admitting = True
        self._req_rng = random.Random(request_seed)
        self._blocks = frontend.backend.num_user_blocks
        self._fault = fault
        self._fault_rng = (
            random.Random(fault.seed) if fault is not None else None
        )
        self._fault_delay_ticks = (
            ns(fault.delay_ns) if fault is not None else 0
        )
        # Pre-bound stats (the StatSet idiom: resolve names once).
        self._offered = self.stats.counter("offered")
        self._admitted = self.stats.counter("admitted")
        self._rejected_overflow = self.stats.counter("rejected_overflow")
        self._rejected_shed = self.stats.counter("rejected_shed")
        self._rejected_fault = self.stats.counter("rejected_fault")
        self._completed = self.stats.counter("completed")
        self._writes = self.stats.counter("writes")
        self.sojourn = self.stats.histogram(
            "sojourn", bucket_width=ns(SOJOURN_BUCKET_NS)
        )
        self.sojourn_stat = self.stats.latency("sojourn_lat")
        #: ``(completion_tick, sojourn_ticks)`` per completed request, in
        #: completion order -- the availability scorer's raw material.
        self.completions: List[Tuple[int, int]] = []
        self._queue_depth = self.stats.histogram("queue_depth")
        #: Windowed (count, total-ticks) pair the governor reads and
        #: resets each control tick.
        self.window_count = 0
        self.window_total = 0
        self._functional = hashlib.sha256()
        self._timing = hashlib.sha256()
        self._arrival_pending = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first arrival (if any falls inside the horizon)."""
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if self._arrival_pending:
            return
        due = self.arrivals.peek()
        if due >= self.horizon:
            return
        self._arrival_pending = True
        self.engine.at(due, self._arrival)

    # ------------------------------------------------------------------
    # Arrival / admission
    # ------------------------------------------------------------------
    def _arrival(self) -> None:
        self._arrival_pending = False
        now = self.arrivals.take()
        assert now == self.engine.now
        self._offered.add()
        fault = self._fault
        if (fault is not None and fault.kind == "drop"
                and self._fault_rng.random() < fault.fraction):
            self._rejected_fault.add()
        elif not self.admitting:
            self._rejected_shed.add()
        elif len(self._queue) >= self.queue_cap:
            self._rejected_overflow.add()
        else:
            seq = self._next_seq
            self._next_seq = seq + 1
            self._queue.append((now, seq))
            self._admitted.add()
            self.outstanding += 1
            self._queue_depth.record(len(self._queue))
            self._feed()
        self._schedule_next_arrival()

    # ------------------------------------------------------------------
    # Feeding the fixed-rate frontend
    # ------------------------------------------------------------------
    def _feed(self) -> None:
        frontend = self.frontend
        while self._queue:
            if not frontend.can_accept(OpType.READ):
                frontend.notify_on_space(self._feed)
                return
            arrival, seq = self._queue.popleft()
            is_write = (self.write_fraction > 0.0
                        and self._req_rng.random() < self.write_fraction)
            block_id = self._req_rng.randrange(self._blocks)
            if is_write:
                # Stores complete at acceptance; the oblivious write-back
                # is the ORAM engine's business.
                frontend.issue(OpType.WRITE, block_id, self.tenant_id, None)
                self._writes.add()
                self._complete(seq, block_id, True, arrival, self.engine.now)
            else:
                frontend.issue(
                    OpType.READ, block_id, self.tenant_id,
                    _TenantDone(self, seq, block_id, arrival),
                )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _complete(self, seq: int, block_id: int, is_write: bool,
                  arrival: int, time: int) -> None:
        fault = self._fault
        if (not is_write and fault is not None and fault.kind == "delay"
                and self._fault_rng.random() < fault.fraction):
            # Response post-processing stall, scoped to this tenant's
            # accounting only.
            when = time + self._fault_delay_ticks
            self.engine.call_at(
                when,
                _DelayedComplete(self, seq, block_id, arrival),
                when,
            )
            return
        self._record_completion(seq, block_id, is_write, arrival, time)

    def _record_completion(self, seq: int, block_id: int, is_write: bool,
                           arrival: int, time: int) -> None:
        sojourn = time - arrival
        self._completed.add()
        self.sojourn.record(sojourn)
        self.sojourn_stat.record(sojourn)
        self.completions.append((time, sojourn))
        self.window_count += 1
        self.window_total += sojourn
        op = b"W" if is_write else b"R"
        self._functional.update(b"%d:%d:%s;" % (seq, block_id, op))
        self._timing.update(
            b"%d:%d:%s:%d:%d;" % (seq, block_id, op, arrival, time)
        )
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "sd", "tenant_complete", self.name, time,
                {"seq": seq, "sojourn": sojourn, "write": int(is_write)},
            )
        self.outstanding -= 1
        if self._on_outstanding_change is not None:
            self._on_outstanding_change()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests admitted but not yet fed to the frontend."""
        return len(self._queue)

    @property
    def functional_digest(self) -> str:
        """sha256 over completed ``(seq, block_id, op)`` -- timing-free."""
        return self._functional.hexdigest()

    @property
    def timing_digest(self) -> str:
        """sha256 over completions including arrival/finish ticks."""
        return self._timing.hexdigest()

    def take_window(self) -> Tuple[int, int]:
        """Drain the governor's (count, total-ticks) sojourn window."""
        window = (self.window_count, self.window_total)
        self.window_count = 0
        self.window_total = 0
        return window


class _DelayedComplete:
    """Deferred completion record for the ``delay`` tenant fault."""

    __slots__ = ("tenant", "seq", "block_id", "arrival")

    def __init__(self, tenant: TenantSource, seq: int, block_id: int,
                 arrival: int) -> None:
        self.tenant = tenant
        self.seq = seq
        self.block_id = block_id
        self.arrival = arrival

    def __call__(self, time: int) -> None:
        self.tenant._record_completion(
            self.seq, self.block_id, False, self.arrival, time
        )
