"""Scenario configuration: one multi-tenant open-loop service run.

Mirrors :class:`repro.core.config.SystemConfig` in idiom -- a frozen
dataclass, validated in ``__post_init__``, JSON-round-trippable so the
sweep store can content-address it -- but describes a *service* rather
than a trace replay: N S-App tenants behind one secure delegator fabric,
each driven by a seeded open-loop arrival stream, with per-tenant
admission control and an SLO-focused report.

The default geometry is the paper's BOB machine (four channels, channel 0
secure with four sub-channels) carrying zero NS-App background cores:
every periodic mechanism left in the build (DRAM refresh, the per-tenant
request pacers) is poll-driven or one-event-per-occurrence, which is what
keeps horizon-bounded runs census-invariant across eager/lazy periodic
modes (see DESIGN.md §11).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.bob.link import LinkParams
from repro.dram.timing import (
    ChannelParams,
    DDR3Timing,
    DDR3_1600,
    DEFAULT_CHANNEL_PARAMS,
)
from repro.oram.config import OramConfig
from repro.scenarios.arrivals import ArrivalSpec

FAULT_KINDS = ("drop", "delay")


@dataclass(frozen=True)
class TenantFault:
    """A deterministic fault scoped to exactly one tenant.

    ``drop`` rejects ``fraction`` of the tenant's arrivals before
    admission (seeded Bernoulli); ``delay`` adds ``delay_ns`` to the
    tenant's response accounting for ``fraction`` of completed reads.
    Both act entirely inside the faulted tenant's source -- the shared
    fabric sees only the (changed) load the tenant offers -- which is
    the property the tenant-isolation regression pins: a fault on tenant
    B may move other tenants' *timing*, never their functional results.
    """

    tenant_id: int = 0
    kind: str = "drop"
    fraction: float = 1.0
    delay_ns: float = 0.0
    seed: int = 97

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError("tenant_id must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown tenant fault kind {self.kind!r} "
                f"(known: {', '.join(FAULT_KINDS)})"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")

    def to_json_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, state: Dict[str, object]) -> "TenantFault":
        return cls(**state)


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to run one multi-tenant service scenario."""

    # -- tenants ----------------------------------------------------------
    num_tenants: int = 8
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    #: Offered-load window in nanoseconds; arrivals stop at the horizon.
    horizon_ns: float = 100_000.0
    #: When true (default), the run continues past the horizon until
    #: every admitted request completes, so completed == admitted and
    #: per-tenant functional digests are contention-independent.
    drain: bool = True
    #: Per-tenant admission queue capacity; arrivals beyond it are
    #: rejected (counted, never silently dropped).
    queue_cap: int = 64
    #: Fraction of admitted requests issued as writes (completed at
    #: admission to the ORAM frontend; reads complete at the response).
    write_fraction: float = 0.0

    # -- fabric -----------------------------------------------------------
    num_channels: int = 4
    #: BOB channels hosting secure delegators; tenants are assigned
    #: round-robin across them in id order.
    secure_channels: Tuple[int, ...] = (0,)
    secure_subchannels: int = 4
    normal_subchannels: int = 1
    t_cycles: int = 50
    sd_process_ns: float = 5.0
    secure_share: float = 0.5

    # -- control loop -----------------------------------------------------
    #: Admission-governor cadence; 0 disables the governor entirely.
    control_interval_ns: float = 10_000.0
    #: Mean-sojourn SLO target the governor compares against; 0 disables
    #: the governor (report percentiles are always emitted regardless).
    slo_target_ns: float = 0.0
    #: Governor floor: never shed below this many admitting tenants per
    #: secure channel.
    min_admitting: int = 1

    # -- components -------------------------------------------------------
    oram: OramConfig = field(default_factory=OramConfig)
    dram_timing: DDR3Timing = field(default_factory=lambda: DDR3_1600)
    channel_params: ChannelParams = field(
        default_factory=lambda: DEFAULT_CHANNEL_PARAMS
    )
    link_params: LinkParams = field(default_factory=LinkParams)
    seed: int = 1

    # -- observation ------------------------------------------------------
    #: Queue-depth/backlog sampling period; 0 disables snapshots.
    snapshot_interval_ns: float = 0.0
    #: Tenant-scoped fault specs (see :class:`TenantFault`).
    tenant_faults: Tuple[TenantFault, ...] = ()

    def __post_init__(self) -> None:
        if self.num_tenants < 1:
            raise ValueError("num_tenants must be >= 1")
        if self.horizon_ns <= 0:
            raise ValueError("horizon_ns must be positive")
        if self.queue_cap < 1:
            raise ValueError("queue_cap must be >= 1")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.num_channels < 2:
            raise ValueError("need at least one secure + one normal channel")
        secure = tuple(self.secure_channels)
        object.__setattr__(self, "secure_channels", secure)
        if not secure:
            raise ValueError("secure_channels must not be empty")
        if len(set(secure)) != len(secure):
            raise ValueError("secure_channels must be distinct")
        if any(not 0 <= ch < self.num_channels for ch in secure):
            raise ValueError("secure_channels out of range")
        if len(secure) >= self.num_channels:
            raise ValueError("at least one channel must stay normal")
        if self.secure_subchannels < 1 or self.normal_subchannels < 1:
            raise ValueError("subchannel counts must be >= 1")
        if self.t_cycles < 1:
            raise ValueError("t_cycles must be >= 1")
        if not 0.0 < self.secure_share < 1.0:
            raise ValueError("secure_share must be in (0, 1)")
        if self.control_interval_ns < 0 or self.slo_target_ns < 0:
            raise ValueError("control knobs must be >= 0")
        if self.min_admitting < 1:
            raise ValueError("min_admitting must be >= 1")
        if self.snapshot_interval_ns < 0:
            raise ValueError("snapshot_interval_ns must be >= 0")
        faults = tuple(self.tenant_faults)
        object.__setattr__(self, "tenant_faults", faults)
        for fault in faults:
            if fault.tenant_id >= self.num_tenants:
                raise ValueError(
                    f"tenant fault targets tenant {fault.tenant_id} but the "
                    f"scenario has {self.num_tenants} tenants"
                )

    # -- derived ----------------------------------------------------------
    @property
    def governed(self) -> bool:
        """True when the live admission governor is armed."""
        return self.control_interval_ns > 0 and self.slo_target_ns > 0

    def secure_channel_of(self, tenant_id: int) -> int:
        """Round-robin tenant -> secure channel placement."""
        secure = self.secure_channels
        return secure[tenant_id % len(secure)]

    def tenants_on(self, channel: int) -> Tuple[int, ...]:
        return tuple(
            t for t in range(self.num_tenants)
            if self.secure_channel_of(t) == channel
        )

    # -- (de)serialization (sweep result store) -------------------------
    def to_json_dict(self) -> Dict[str, object]:
        """JSON-safe dict; hashed (canonical JSON) as the sweep key, so
        every behaviour-affecting field must appear -- ``asdict``
        guarantees that by construction."""
        return dataclasses.asdict(self)

    @classmethod
    def from_json_dict(cls, state: Dict[str, object]) -> "ScenarioConfig":
        state = dict(state)
        state["arrival"] = ArrivalSpec(**state["arrival"])
        state["oram"] = OramConfig(**state["oram"])
        state["dram_timing"] = DDR3Timing(**state["dram_timing"])
        state["channel_params"] = ChannelParams(**state["channel_params"])
        state["link_params"] = LinkParams(**state["link_params"])
        state["secure_channels"] = tuple(state["secure_channels"])
        state["tenant_faults"] = tuple(
            TenantFault(**f) for f in state.get("tenant_faults", ())
        )
        return cls(**state)


def apply_overrides(base: ScenarioConfig,
                    overrides: Dict[str, object]) -> ScenarioConfig:
    """Rebuild ``base`` with flat overrides.

    ``arrival.<field>`` and ``oram.<field>`` keys reach into the nested
    :class:`ArrivalSpec` / :class:`~repro.oram.config.OramConfig`, so
    sweep points can vary the rate or tree height without spelling the
    whole nested spec.
    """
    top: Dict[str, object] = {}
    arrival: Dict[str, object] = {}
    oram: Dict[str, object] = {}
    for key, value in overrides.items():
        if key.startswith("arrival."):
            arrival[key[len("arrival."):]] = value
        elif key.startswith("oram."):
            oram[key[len("oram."):]] = value
        else:
            top[key] = value
    if arrival:
        top["arrival"] = dataclasses.replace(base.arrival, **arrival)
    if oram:
        top["oram"] = dataclasses.replace(base.oram, **oram)
    return dataclasses.replace(base, **top)
