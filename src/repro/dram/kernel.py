"""Struct-of-arrays DRAM batch kernel (``DORAM_DRAM=kernel``).

:class:`KernelChannel` is a drop-in replacement for
:class:`repro.dram.channel.Channel` that restructures the hot service
loop two ways:

**Struct-of-arrays bank state.**  The per-bank JEDEC state machine
(open row, last-ACTIVATE time, precharge/activate readiness fences)
lives in flat per-channel lists indexed by bank number instead of one
``Bank`` object per bank.  The FR-FCFS pick and the whole
``Bank.commit`` timing arithmetic are fused into the service step with
every table in a local, so one decision point costs list indexing
instead of attribute traffic across three objects.  The base class's
``Bank`` objects are still constructed (``len(channel.banks)`` is part
of the public surface) but are *stale*: the arrays are authoritative.

**Chained decision points.**  The legacy channel schedules one engine
event per decision: the next-service event at each burst's data start
and one completion event per request.  The next-service event is very
often the engine's next event anyway, so instead of pushing it the
kernel holds it as a ``(time, seq)`` slot and keeps re-entering the
service step inline -- advancing the whole channel to its next decision
point in one dispatch -- for as long as the held slot is strictly
earlier (lexicographic ``(time, seq)``) than the engine's queue head.
Each inlined step books one synthesized occurrence, the same census
contract lazy periodic streams established: the logical event count,
every stat, the command log, and the trace are byte-identical to the
legacy channel; only the raw dispatch count drops.  When a foreign
event is due first the slot is pushed with the sequence number it was
allocated, so same-tick FIFO order is exactly what the legacy channel
produces.  Completions always go through the queue at legacy code
points -- holding them too saved one push/pop but cost more in
bookkeeping than it won, and keeping them queued means *nothing that
consults* :meth:`Engine.peek_time` *can ever run while an event is
held* (only space-waiter callbacks run inside the step, and they only
push), so no extra guard rail in the engine is needed.

Chaining obeys the same gate as core gap crunching
(``engine.lazy_periodic and not engine._tracer.enabled``): in eager
periodic mode, or under a per-dispatch engine trace, every decision is
flushed immediately and the kernel's raw dispatch stream reproduces the
legacy channel event for event -- that is the differential oracle the
conformance suite replays.

Safety interactions with other fast-forward machinery: chains respect
``engine._run_until`` (a bounded ``run(until=...)`` must leave later
events queued) and stop at ``engine.stop()``, flushing the held slot in
both cases.

Sequence-number discipline: the kernel allocates ``engine._seq`` at
exactly the code points the legacy channel does (completion before
space waiters, next-service after), whether the event is later inlined
or flushed, so every other component's same-tick ordering is untouched.
"""

from __future__ import annotations

from heapq import heappop as _heappop
from typing import Optional, Tuple

from repro.dram.channel import Channel, _NO_PICK
from repro.dram.commands import OpType, TrafficClass
from repro.sim.engine import Engine, _NO_ARG

__all__ = ["KernelChannel", "channel_class"]


def channel_class(engine: Engine):
    """The channel implementation selected by ``engine.dram_backend``."""
    return KernelChannel if engine.dram_backend == "kernel" else Channel


class KernelChannel(Channel):
    """A DRAM channel with struct-of-arrays banks and chained service.

    Construction, the front-end interface (``can_accept`` / ``enqueue``
    / ``notify_on_space``), statistics, and analysis helpers are
    inherited; only the service path and the bank state layout differ.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        n = self.params.num_banks
        # Struct-of-arrays bank state (authoritative; the inherited
        # Bank objects are not updated).  ``None`` means precharged,
        # mirroring Bank.open_row so row comparisons are identical.
        self._open_row: list = [None] * n
        self._b_act_time = [-(10 ** 12)] * n
        self._b_pre_ready = [0] * n
        self._b_act_ready = [0] * n
        # Remaining JEDEC parameters the fused commit needs (the base
        # class already caches tBURST/tRTW/tREFI/tRFC).
        t = self.timing
        self._tRCD = t.tRCD
        self._tRP = t.tRP
        self._tRC = t.tRC
        self._tRAS = t.tRAS
        self._tWR = t.tWR
        self._tRTP = t.tRTP
        self._tCL = t.tCL
        self._tCWL = t.tCWL
        self._tRRD = t.tRRD
        self._tFAW = t.tFAW
        self._tWTR = t.tWTR
        #: Rank ACT history (shared with ``self.rank`` so rank-level
        #: introspection stays truthful).
        self._r_acts = self.rank._acts
        # Same gate as Core._crunch: chaining books synthesized
        # occurrences and elides dispatches a per-dispatch engine trace
        # would record.
        self._chain_ok = (
            self.engine.lazy_periodic and not self.engine._tracer.enabled
        )
        # Direct heap reference for the chain guard (None under the
        # wheel scheduler, which uses peek_entry()).  A raw ``heap[0]``
        # probe treats a cancelled-but-unpopped head as live -- a
        # conservative "don't chain", which is always safe.
        self._equeue = (
            self.engine._queue if self.engine._wheel is None else None
        )

    # ------------------------------------------------------------------
    def start_command_log(self) -> list:
        """Same contract as the base class; the kernel writes the log
        directly from the fused service step (the stale Bank objects
        never see commands)."""
        from repro.dram.compliance import DramCommand  # noqa: F401

        self.command_log = []
        return self.command_log

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _service(self) -> None:
        engine = self.engine
        step = self._step
        svc = step(engine.now)
        if svc is None:
            return
        if self._chain_ok:
            q = self._equeue
            if q is not None:
                cancelled = engine._cancelled_seqs
                while not engine._stopped:
                    t = svc[0]
                    if q:
                        # Drain cancel tombstones exactly as the
                        # dispatcher would: a dead head must not break
                        # the chain, or the raw dispatch count becomes
                        # sensitive to who cancelled what (the empty
                        # fault-plan identity suite pins this).
                        while q and cancelled and q[0][1] in cancelled:
                            cancelled.remove(_heappop(q)[1])
                    if q:
                        head = q[0]
                        if head[0] < t or (
                            head[0] == t and head[1] < svc[1]
                        ):
                            break  # a foreign event is due first
                    until = engine._run_until
                    if until is not None and t > until:
                        break  # bounded run: leave this event queued
                    engine._synthesized += 1
                    engine.now = t
                    svc = step(t)
                    if svc is None:
                        return
            else:
                peek = engine.peek_entry
                while not engine._stopped:
                    t, s = svc
                    head = peek()
                    if head is not None and (
                        head[0] < t or (head[0] == t and head[1] < s)
                    ):
                        break  # a foreign event is due first
                    until = engine._run_until
                    if until is not None and t > until:
                        break  # bounded run: leave this event queued
                    engine._synthesized += 1
                    engine.now = t
                    svc = step(t)
                    if svc is None:
                        return
        engine._push((svc[0], svc[1], self._service, _NO_ARG))

    def _step(self, now: int) -> Optional[Tuple[int, int]]:
        """One decision point: the legacy ``Channel._service`` body over
        the struct-of-arrays state.  Completions are pushed exactly
        where the legacy channel pushes them; only the next-*service*
        event is handed back as a ``(time, seq)`` slot for the chain
        loop to inline or queue."""
        self._service_scheduled = False
        read_q = self.read_q
        write_q = self.write_q
        if not (read_q or write_q):
            return
        engine = self.engine

        # Refresh first (identical to the legacy channel: closed-form
        # catch-up of every overdue window, back-dated logs/trace).
        stream = self._refresh_stream
        if now >= stream.next_due:
            first, count = stream.take_due(now)
            tRFC = self._tRFC
            last_end = first + (count - 1) * self._tREFI + tRFC
            log = self.command_log
            if log is not None:
                from repro.dram.compliance import DramCommand

                start = first
                for _ in range(count):
                    log.append(
                        DramCommand(start, "REF", -1, None, start + tRFC)
                    )
                    start += self._tREFI
            if self._tracer.enabled:
                self._tracer.complete_series(
                    "dram", "refresh", self.name, first, self._tREFI,
                    count, tRFC,
                )
            open_row = self._open_row
            act_ready = self._b_act_ready
            for i in range(len(open_row)):  # force_precharge, fused
                open_row[i] = None
                if last_end > act_ready[i]:
                    act_ready[i] = last_end
            if last_end > self._bus_free:
                self._bus_free = last_end
            self.rank.refreshes += count
            self._refreshes_counter.value += count
            if count > 1:
                engine._synthesized += count - 1
            self._service_scheduled = True
            seq = engine._seq
            engine._seq = seq + 1
            bus_free = self._bus_free
            return (bus_free if bus_free > now else now, seq)

        # Queue selection: write-drain hysteresis + age bound.
        params = self.params
        wq_len = len(write_q)
        draining = self._draining
        if draining and wq_len <= params.write_drain_lo:
            draining = self._draining = False
        if not draining and wq_len >= params.write_drain_hi:
            draining = self._draining = True
        if not draining and wq_len and (
            now - write_q[0].arrival >= params.write_timeout
        ):
            draining = self._draining = True
        if draining and wq_len:
            queue = write_q
        elif read_q:
            queue = read_q
        else:
            queue = write_q

        # Single-class common-case picks (depth-1 pop, head row-hit).
        open_row_l = self._open_row
        is_write_q = queue is write_q
        secure_count = self._wq_secure if is_write_q else self._rq_secure
        qlen = len(queue)
        if not 0 < secure_count < qlen:
            if qlen == 1:
                req = queue.pop()
            elif open_row_l[(r0 := queue[0]).bank] == r0.row:
                req = r0
                del queue[0]
            else:
                req = None
            if req is not None:
                indexes = self._wq_index if is_write_q else self._rq_index
                index = indexes[req.bank]
                bucket = index[req.row]
                if len(bucket) == 1:
                    del index[req.row]
                else:
                    bucket.remove(req)
                if req.traffic is TrafficClass.SECURE:
                    if is_write_q:
                        self._wq_secure -= 1
                    else:
                        self._rq_secure -= 1
            else:
                req = self._pick_request(queue)
        else:
            req = self._pick_request(queue)

        # Fused Bank.commit over the arrays.
        bus_free = self._bus_free
        floor = bus_free if bus_free > now else now
        is_write = req.is_write
        if is_write and self._last_op is OpType.READ:
            floor += self._tRTW
        b = req.bank
        row = req.row
        earliest = req.arrival
        rank = self.rank
        cas = self._tCWL if is_write else self._tCL
        orow = open_row_l[b]
        if orow == row:  # hit (orow is never None here)
            outcome = "hit"
            act_time = self._b_act_time[b]
            pre_time = None
            col = act_time + self._tRCD
            if col < earliest:
                col = earliest
            if not is_write:
                ready = rank._last_write_end + self._tWTR
                if ready > col:
                    col = ready
            data_start = col + cas
        else:
            act_ready = self._b_act_ready[b]
            if orow is not None:  # conflict: PRECHARGE first
                outcome = "conflict"
                pre_time = self._b_pre_ready[b]
                if pre_time < earliest:
                    pre_time = earliest
                act_lb = pre_time + self._tRP
                if act_lb < act_ready:
                    act_lb = act_ready
            else:  # closed
                outcome = "closed"
                pre_time = None
                act_lb = act_ready if act_ready > earliest else earliest
            # tRRD + tFAW activate fences (rank ACT history).
            act_time = act_lb
            acts = self._r_acts
            if acts:
                fence = acts[-1] + self._tRRD
                if fence > act_time:
                    act_time = fence
                if len(acts) >= 4:
                    fence = acts[-4] + self._tFAW
                    if fence > act_time:
                        act_time = fence
            col = act_time + self._tRCD
            if not is_write:
                ready = rank._last_write_end + self._tWTR
                if ready > col:
                    col = ready
            data_start = col + cas
            acts.append(act_time)
            if len(acts) > 4:
                del acts[0]
            self._b_act_time[b] = act_time
            self._b_act_ready[b] = act_time + self._tRC
            open_row_l[b] = row
        if data_start < floor:
            data_start = floor
        col_time = data_start - cas
        pre_ready_l = self._b_pre_ready
        act_fence = act_time + self._tRAS
        if is_write:
            write_end = data_start + self._tBURST
            pre_ready = write_end + self._tWR
            if act_fence > pre_ready:
                pre_ready = act_fence
            if pre_ready > pre_ready_l[b]:
                pre_ready_l[b] = pre_ready
            if write_end > rank._last_write_end:
                rank._last_write_end = write_end
        else:
            pre_ready = col_time + self._tRTP
            if act_fence > pre_ready:
                pre_ready = act_fence
            if pre_ready > pre_ready_l[b]:
                pre_ready_l[b] = pre_ready
        if self._close_page:
            close_pre = pre_ready_l[b]
            open_row_l[b] = None
            ar = close_pre + self._tRP
            if ar > self._b_act_ready[b]:
                self._b_act_ready[b] = ar
        log = self.command_log
        if log is not None:
            from repro.dram.compliance import DramCommand

            if pre_time is not None:
                log.append(DramCommand(pre_time, "PRE", b, None))
            if outcome != "hit":
                log.append(DramCommand(act_time, "ACT", b, row))
            log.append(
                DramCommand(col_time, "WR" if is_write else "RD", b, row)
            )
            if self._close_page:
                log.append(DramCommand(close_pre, "PRE", b, None))

        tburst = self._tBURST
        finish = data_start + tburst
        self._bus_free = finish
        self._last_op = req.op
        self._busy_ticks += tburst

        latency = finish - earliest
        secure = req.traffic is TrafficClass.SECURE
        lat_kind, lat_cls, served = self._lat_by_req[
            (2 if is_write else 0) + (1 if secure else 0)
        ]
        lat_kind.count += 1
        lat_kind.total += latency
        bound = lat_kind.min
        if bound is None or latency < bound:
            lat_kind.min = latency
        bound = lat_kind.max
        if bound is None or latency > bound:
            lat_kind.max = latency
        lat_cls.count += 1
        lat_cls.total += latency
        bound = lat_cls.min
        if bound is None or latency < bound:
            lat_cls.min = latency
        bound = lat_cls.max
        if bound is None or latency > bound:
            lat_cls.max = latency
        self._row_counters[outcome].value += 1
        served.value += 1
        if self._tracer.enabled:
            self._tracer.complete(
                "dram", "write" if is_write else "read", self.name,
                data_start, tburst,
                {
                    "bank": b,
                    "row": row,
                    "outcome": outcome,
                    "app": req.app_id,
                    "cls": req.traffic.value,
                    "lat": latency,
                },
            )
        on_complete = req.on_complete
        if on_complete is not None:
            if self._faults is not None and not is_write:
                self._faults.maybe_flip(on_complete)
            seq = engine._seq
            engine._seq = seq + 1
            engine._push((finish, seq, on_complete, finish))

        if self._space_waiters:
            self._wake_space_waiters()
        if read_q or write_q:
            self._service_scheduled = True
            seq = engine._seq
            engine._seq = seq + 1
            return (data_start, seq)
        return None

    # ------------------------------------------------------------------
    # FR-FCFS picks over the arrays (same decisions as the base class)
    # ------------------------------------------------------------------
    def _pick_request(self, queue):
        is_write_q = queue is self.write_q
        secure_count = self._wq_secure if is_write_q else self._rq_secure
        indexes = self._wq_index if is_write_q else self._rq_index
        open_row_l = self._open_row
        qlen = len(queue)
        if 0 < secure_count < qlen:
            if queue[0].traffic is TrafficClass.SECURE:
                classes = [TrafficClass.SECURE, TrafficClass.NORMAL]
            else:
                classes = [TrafficClass.NORMAL, TrafficClass.SECURE]
            chosen_cls = self.share_policy.pick_class(classes)
            if self._tracer.enabled:
                self._tracer.instant(
                    "dram", "class_pick", self.name, self.engine.now,
                    {"cls": chosen_cls.value, "contenders": len(classes)},
                )
                candidates = [r for r in queue if r.traffic is chosen_cls]
                req = candidates[self._scan_pick(candidates)]
            else:
                window = self._window
                first = None
                req = None
                examined = 0
                for r in queue:
                    if r.traffic is chosen_cls:
                        if open_row_l[r.bank] == r.row:
                            req = r
                            break
                        if first is None:
                            first = r
                        examined += 1
                        if examined >= window:
                            break
                if req is None:
                    req = first
            queue.remove(req)
        elif qlen == 1:
            req = queue.pop()
        elif open_row_l[(r0 := queue[0]).bank] == r0.row:
            req = r0
            del queue[0]
        elif qlen <= self._window:
            req = None
            best_seq = _NO_PICK
            for bank_idx, row in enumerate(open_row_l):
                if row is not None:
                    bucket = indexes[bank_idx].get(row)
                    if bucket:
                        head = bucket[0]
                        if head._enq_seq < best_seq:
                            best_seq = head._enq_seq
                            req = head
            if req is None:
                req = queue[0]
                del queue[0]
            elif self._tracer.enabled:
                i = queue.index(req)
                if i:
                    self._tracer.instant(
                        "dram", "frfcfs_reorder", self.name,
                        self.engine.now,
                        {"index": i, "bank": req.bank, "depth": qlen},
                    )
                del queue[i]
            else:
                queue.remove(req)
        else:
            req = queue[self._scan_pick(queue)]
            queue.remove(req)

        index = indexes[req.bank]
        bucket = index[req.row]
        if len(bucket) == 1:
            del index[req.row]
        else:
            bucket.remove(req)
        if req.traffic is TrafficClass.SECURE:
            if is_write_q:
                self._wq_secure -= 1
            else:
                self._rq_secure -= 1
        return req

    def _scan_pick(self, queue) -> int:
        open_row_l = self._open_row
        qlen = len(queue)
        limit = qlen if qlen < self._window else self._window
        for i in range(limit):
            r = queue[i]
            if open_row_l[r.bank] == r.row:
                if i and self._tracer.enabled:
                    self._tracer.instant(
                        "dram", "frfcfs_reorder", self.name,
                        self.engine.now,
                        {"index": i, "bank": r.bank, "depth": qlen},
                    )
                return i
        return 0
