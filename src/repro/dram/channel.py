"""One DRAM (sub-)channel: banks, queues, data bus, and scheduler.

The channel is the unit of bandwidth in every experiment: the paper's
direct-attached baseline has four of them; the BOB configuration puts four
*sub-channels* (each an instance of this class) behind the secure channel's
on-board controller and one behind each normal channel.

Event flow
----------
``enqueue()`` accepts a :class:`MemRequest`, then a service loop picks
requests with FR-FCFS (optionally arbitrated between secure/normal traffic
classes by a :class:`SharePolicy`), computes when the bank can deliver the
data burst, occupies the data bus for ``tBURST``, and fires the request's
completion callback when the burst ends.  Bank preparation (PRE/ACT) is
back-dated as early as JEDEC constraints allow, modeling the command/data
overlap of a real pipelined controller.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.bank import Bank, RankTimers
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.scheduler import FrFcfsScheduler, SharePolicy, SingleClassPolicy
from repro.dram.timing import ChannelParams, DDR3Timing, DDR3_1600, DEFAULT_CHANNEL_PARAMS
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Engine
from repro.sim.stats import StatSet


class Channel:
    """A DRAM channel with one rank of banks and a shared data bus."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        timing: DDR3Timing = DDR3_1600,
        params: ChannelParams = DEFAULT_CHANNEL_PARAMS,
        share_policy: Optional[SharePolicy] = None,
        tracer=None,
        page_policy: str = "open",
    ) -> None:
        if page_policy not in ("open", "close"):
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.engine = engine
        self.name = name
        self.timing = timing
        self.params = params
        self.page_policy = page_policy
        #: Optional protocol-compliance log of ``DramCommand`` entries;
        #: enabled via :meth:`start_command_log`.
        self.command_log = None
        self.rank = RankTimers(timing)
        self.banks: List[Bank] = [
            Bank(timing, self.rank) for _ in range(params.num_banks)
        ]
        self.scheduler = FrFcfsScheduler(params.scheduler_window)
        self.share_policy = share_policy or SingleClassPolicy()
        self._tracer = (tracer if tracer is not None else NULL_TRACER).category(
            "dram"
        )
        self.scheduler.bind_tracer(self._tracer, name, engine)

        self.read_q: List[MemRequest] = []
        self.write_q: List[MemRequest] = []
        self._draining = False
        self._bus_free = 0
        self._last_op: Optional[OpType] = None
        self._service_scheduled = False
        self._space_waiters: List[Callable[[], None]] = []

        self.stats = StatSet(name)
        self._busy_ticks = 0
        # Hot-path accelerators: pre-bound stat objects (avoids per-
        # request f-string key construction) and per-queue secure-class
        # counters (skips class scans when traffic is homogeneous).
        self._lat_by_req = {}
        for is_write, kind in ((False, "read"), (True, "write")):
            for traffic in (TrafficClass.NORMAL, TrafficClass.SECURE):
                self._lat_by_req[(is_write, traffic)] = (
                    self.stats.latency(f"{kind}_latency"),
                    self.stats.latency(f"{traffic.value}_{kind}_latency"),
                    self.stats.counter(f"{kind}s_serviced"),
                )
        self._row_counters = {
            outcome: self.stats.counter(f"row_{outcome}")
            for outcome in ("hit", "closed", "conflict")
        }
        self._rq_secure = 0
        self._wq_secure = 0

    # ------------------------------------------------------------------
    # Front-end interface
    # ------------------------------------------------------------------
    def can_accept(self, op: OpType) -> bool:
        """Queue-space check; front ends must test before ``enqueue``."""
        if op is OpType.WRITE:
            return len(self.write_q) < self.params.write_queue_depth
        return len(self.read_q) < self.params.read_queue_depth

    def enqueue(self, req: MemRequest) -> None:
        """Accept a request.  Raises if the target queue is full."""
        if not self.can_accept(req.op):
            raise RuntimeError(f"{self.name}: {req.op.value} queue full")
        if not 0 <= req.bank < len(self.banks):
            raise ValueError(f"{self.name}: bank {req.bank} out of range")
        req.arrival = self.engine.now
        if req.is_write:
            self.write_q.append(req)
            if req.traffic is TrafficClass.SECURE:
                self._wq_secure += 1
        else:
            self.read_q.append(req)
            if req.traffic is TrafficClass.SECURE:
                self._rq_secure += 1
        self._kick()

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        """One-shot callback fired the next time any queue entry drains."""
        self._space_waiters.append(callback)

    def start_command_log(self) -> list:
        """Record every implied DRAM command (PRE/ACT/RD/WR/REF) from now
        on, for replay through :class:`repro.dram.compliance.ProtocolChecker`.
        Returns the live log list."""
        from repro.dram.compliance import DramCommand  # noqa: F401

        self.command_log = []
        for bank in self.banks:
            bank.record_commands = True
        return self.command_log

    @property
    def queued(self) -> int:
        return len(self.read_q) + len(self.write_q)

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._service_scheduled or not (self.read_q or self.write_q):
            return
        self._service_scheduled = True
        self.engine.at(max(self.engine.now, self._bus_free), self._service)

    def _service(self) -> None:
        self._service_scheduled = False
        if not (self.read_q or self.write_q):
            return

        # Refresh first: if the refresh deadline has passed, stall the rank
        # for tRFC with every bank precharged.
        window = self.rank.refresh_window(self.engine.now)
        if window is not None:
            start, end = window
            for bank in self.banks:
                bank.force_precharge(end)
            if self.command_log is not None:
                from repro.dram.compliance import DramCommand

                self.command_log.append(
                    DramCommand(start, "REF", -1, None, end)
                )
            self._bus_free = max(self._bus_free, end)
            self.rank.complete_refresh()
            self.stats.counter("refreshes").add()
            if self._tracer.enabled:
                self._tracer.complete(
                    "dram", "refresh", self.name, start, end - start
                )
            self._service_scheduled = True
            self.engine.at(max(self.engine.now, self._bus_free), self._service)
            return

        queue = self._select_queue()
        req = self._pick_request(queue)

        bank = self.banks[req.bank]
        floor = max(self._bus_free, self.engine.now)
        if self._last_op is OpType.READ and req.is_write:
            floor += self.timing.tRTW
        data_start, outcome = bank.commit(req, req.arrival, floor=floor)
        if self.page_policy == "close":
            bank.close_after_access()
        if self.command_log is not None:
            from repro.dram.compliance import DramCommand

            self.command_log.extend(
                DramCommand(t, kind, req.bank, row)
                for kind, t, row in bank.last_commands
            )
        finish = data_start + self.timing.tBURST

        self._bus_free = finish
        self._last_op = req.op
        self._busy_ticks += self.timing.tBURST

        self._record(req, outcome, finish)
        if self._tracer.enabled:
            self._tracer.complete(
                "dram", "write" if req.is_write else "read", self.name,
                data_start, self.timing.tBURST,
                {
                    "bank": req.bank,
                    "row": req.row,
                    "outcome": outcome,
                    "app": req.app_id,
                    "cls": req.traffic.value,
                    "lat": finish - req.arrival,
                },
            )
        if req.on_complete is not None:
            self.engine.at(finish, lambda r=req, t=finish: r.on_complete(t))

        self._wake_space_waiters()
        # Decide the next request when the bus frees so bursts can chain
        # back-to-back.
        if self.read_q or self.write_q:
            self._service_scheduled = True
            self.engine.at(data_start, self._service)

    def _select_queue(self) -> List[MemRequest]:
        """Write-drain hysteresis + age bound, else reads, else writes."""
        wq_len = len(self.write_q)
        if self._draining and wq_len <= self.params.write_drain_lo:
            self._draining = False
        if not self._draining and wq_len >= self.params.write_drain_hi:
            self._draining = True
        if not self._draining and self.write_q:
            # Starvation bound: a sufficiently old write forces service
            # even below the high watermark (bounded write latency, as in
            # real controllers).
            oldest = min(req.arrival for req in self.write_q)
            if self.engine.now - oldest >= self.params.write_timeout:
                self._draining = True
        if self._draining and self.write_q:
            return self.write_q
        if self.read_q:
            return self.read_q
        return self.write_q

    def _pick_request(self, queue: List[MemRequest]) -> MemRequest:
        """Arbitrate traffic classes, then FR-FCFS within the class."""
        secure_count = (
            self._wq_secure if queue is self.write_q else self._rq_secure
        )
        if 0 < secure_count < len(queue):
            # Mixed traffic: the share policy decides the class.
            classes = []
            seen = set()
            for req in queue:
                if req.traffic not in seen:
                    seen.add(req.traffic)
                    classes.append(req.traffic)
            chosen_cls = self.share_policy.pick_class(classes)
            if self._tracer.enabled:
                self._tracer.instant(
                    "dram", "class_pick", self.name, self.engine.now,
                    {"cls": chosen_cls.value, "contenders": len(classes)},
                )
            candidates = [r for r in queue if r.traffic is chosen_cls]
        else:
            candidates = queue
        idx_in_candidates = self.scheduler.pick(candidates, self.banks)
        req = candidates[idx_in_candidates]
        queue.remove(req)
        if req.traffic is TrafficClass.SECURE:
            if queue is self.write_q:
                self._wq_secure -= 1
            else:
                self._rq_secure -= 1
        return req

    # ------------------------------------------------------------------
    def _record(self, req: MemRequest, outcome: str, finish: int) -> None:
        latency = finish - req.arrival
        lat_kind, lat_class, counter = self._lat_by_req[
            (req.is_write, req.traffic)
        ]
        lat_kind.record(latency)
        lat_class.record(latency)
        self._row_counters[outcome].add()
        counter.add()

    def _wake_space_waiters(self) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of elapsed time the data bus carried bursts."""
        return self._busy_ticks / self.engine.now if self.engine.now else 0.0

    def row_hit_rate(self) -> float:
        hits = self.stats.counter("row_hit").value
        total = hits + self.stats.counter("row_closed").value + \
            self.stats.counter("row_conflict").value
        return hits / total if total else 0.0
