"""One DRAM (sub-)channel: banks, queues, data bus, and scheduler.

The channel is the unit of bandwidth in every experiment: the paper's
direct-attached baseline has four of them; the BOB configuration puts four
*sub-channels* (each an instance of this class) behind the secure channel's
on-board controller and one behind each normal channel.

Event flow
----------
``enqueue()`` accepts a :class:`MemRequest`, then a service loop picks
requests with FR-FCFS (optionally arbitrated between secure/normal traffic
classes by a :class:`SharePolicy`), computes when the bank can deliver the
data burst, occupies the data bus for ``tBURST``, and fires the request's
completion callback when the burst ends.  Bank preparation (PRE/ACT) is
back-dated as early as JEDEC constraints allow, modeling the command/data
overlap of a real pipelined controller.

FR-FCFS indexing
----------------
Each queue keeps a per-bank ``{row: [requests...]}`` side index, maintained
on enqueue/dequeue.  A pick then probes each bank's open row directly --
the first-ready request is the minimum ``_enq_seq`` over the bucket heads
-- instead of rescanning the queue window per service.  Queue position
order equals ``_enq_seq`` order (appends are monotonic, removals preserve
relative order), so the probe selects exactly the request the windowed
:class:`FrFcfsScheduler` scan would; the scan remains the fallback for the
two cases it doesn't cover (queue deeper than the scheduler window, and
mixed-traffic slots where the share policy filters candidates first).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.dram.bank import Bank, RankTimers
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.dram.scheduler import FrFcfsScheduler, SharePolicy, SingleClassPolicy
from repro.dram.timing import ChannelParams, DDR3Timing, DDR3_1600, DEFAULT_CHANNEL_PARAMS
from repro.obs.tracer import NULL_TRACER
from repro.sim.engine import Engine, _NO_ARG
from repro.sim.stats import StatSet

#: Larger than any real ``_enq_seq``; sentinel for the bucket-head probe.
_NO_PICK = 1 << 62


class Channel:
    """A DRAM channel with one rank of banks and a shared data bus."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        timing: DDR3Timing = DDR3_1600,
        params: ChannelParams = DEFAULT_CHANNEL_PARAMS,
        share_policy: Optional[SharePolicy] = None,
        tracer=None,
        page_policy: str = "open",
    ) -> None:
        if page_policy not in ("open", "close"):
            raise ValueError(f"unknown page policy {page_policy!r}")
        self.engine = engine
        self.name = name
        self.timing = timing
        self.params = params
        self.page_policy = page_policy
        #: Optional protocol-compliance log of ``DramCommand`` entries;
        #: enabled via :meth:`start_command_log`.
        self.command_log = None
        #: Fault-injection site (``repro.faults``); ``None`` keeps the
        #: service loop on its zero-overhead fast branch.
        self._faults = None
        self.rank = RankTimers(timing)
        self.banks: List[Bank] = [
            Bank(timing, self.rank) for _ in range(params.num_banks)
        ]
        self.scheduler = FrFcfsScheduler(params.scheduler_window)
        self.share_policy = share_policy or SingleClassPolicy()
        self._tracer = (tracer if tracer is not None else NULL_TRACER).category(
            "dram"
        )
        self.scheduler.bind_tracer(self._tracer, name, engine)

        self.read_q: List[MemRequest] = []
        self.write_q: List[MemRequest] = []
        #: Per-bank ``{row: [requests]}`` side indexes (see module docstring).
        self._rq_index: List[Dict[int, List[MemRequest]]] = [
            {} for _ in range(params.num_banks)
        ]
        self._wq_index: List[Dict[int, List[MemRequest]]] = [
            {} for _ in range(params.num_banks)
        ]
        self._enq_counter = 0
        self._draining = False
        self._bus_free = 0
        self._last_op: Optional[OpType] = None
        self._service_scheduled = False
        self._space_waiters: List[Callable[[], None]] = []

        self.stats = StatSet(name)
        self._busy_ticks = 0
        # Hot-path accelerators: cached params/timing ints, pre-bound stat
        # recorders (avoids per-request f-string keys and dict lookups),
        # and per-queue secure-class counters (skips class scans when
        # traffic is homogeneous).
        self._rq_depth = params.read_queue_depth
        self._wq_depth = params.write_queue_depth
        self._window = params.scheduler_window
        self._tBURST = timing.tBURST
        self._tRTW = timing.tRTW
        self._close_page = page_policy == "close"
        #: Indexed ``2*is_write + is_secure`` -> (kind latency stat,
        #: class latency stat, serviced counter) objects; ``_service``
        #: updates their fields inline rather than paying two method
        #: calls per serviced request.
        self._lat_by_req = []
        for is_write, kind in ((False, "read"), (True, "write")):
            for traffic in (TrafficClass.NORMAL, TrafficClass.SECURE):
                self._lat_by_req.append((
                    self.stats.latency(f"{kind}_latency"),
                    self.stats.latency(f"{traffic.value}_{kind}_latency"),
                    self.stats.counter(f"{kind}s_serviced"),
                ))
        self._row_counters = {
            outcome: self.stats.counter(f"row_{outcome}")
            for outcome in ("hit", "closed", "conflict")
        }
        self._rq_secure = 0
        self._wq_secure = 0
        # Refresh census plumbing: the rank's deadline stream (eager mode
        # pins it to one window per service dispatch, the pre-lazy
        # census), plus cached tREFI/tRFC and the refresh counter so the
        # catch-up path does closed-form batches without dict lookups.
        self._refresh_stream = self.rank.refresh
        self._refresh_stream.eager = not engine.lazy_periodic
        self._tREFI = timing.tREFI
        self._tRFC = timing.tRFC
        self._refreshes_counter = self.stats.counter("refreshes")

    # ------------------------------------------------------------------
    # Front-end interface
    # ------------------------------------------------------------------
    def can_accept(self, op: OpType) -> bool:
        """Queue-space check; front ends must test before ``enqueue``."""
        if op is OpType.WRITE:
            return len(self.write_q) < self._wq_depth
        return len(self.read_q) < self._rq_depth

    def enqueue(self, req: MemRequest) -> None:
        """Accept a request.  Raises if the target queue is full."""
        bank = req.bank
        if not 0 <= bank < len(self.banks):
            raise ValueError(f"{self.name}: bank {bank} out of range")
        req.arrival = self.engine.now
        seq = self._enq_counter
        self._enq_counter = seq + 1
        req._enq_seq = seq
        if req.is_write:
            if len(self.write_q) >= self._wq_depth:
                raise RuntimeError(f"{self.name}: write queue full")
            self.write_q.append(req)
            index = self._wq_index[bank]
            if req.traffic is TrafficClass.SECURE:
                self._wq_secure += 1
        else:
            if len(self.read_q) >= self._rq_depth:
                raise RuntimeError(f"{self.name}: read queue full")
            self.read_q.append(req)
            index = self._rq_index[bank]
            if req.traffic is TrafficClass.SECURE:
                self._rq_secure += 1
        bucket = index.get(req.row)
        if bucket is None:
            index[req.row] = [req]
        else:
            bucket.append(req)
        if not self._service_scheduled:
            self._service_scheduled = True
            # Inline of Engine.at: the kick time is clamped to >= now, so
            # the past-schedule guard cannot fire.
            engine = self.engine
            bus_free = self._bus_free
            now = engine.now
            seq = engine._seq
            engine._seq = seq + 1
            engine._push(
                (bus_free if bus_free > now else now, seq,
                 self._service, _NO_ARG)
            )

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        """One-shot callback fired the next time any queue entry drains."""
        self._space_waiters.append(callback)

    def arm_faults(self, site) -> None:
        """Attach a :class:`~repro.faults.inject.DramFaultSite`."""
        self._faults = site

    def start_command_log(self) -> list:
        """Record every implied DRAM command (PRE/ACT/RD/WR/REF) from now
        on, for replay through :class:`repro.dram.compliance.ProtocolChecker`.
        Returns the live log list."""
        from repro.dram.compliance import DramCommand  # noqa: F401

        self.command_log = []
        for bank in self.banks:
            bank.record_commands = True
        return self.command_log

    @property
    def queued(self) -> int:
        return len(self.read_q) + len(self.write_q)

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------
    def _kick(self) -> None:
        if self._service_scheduled or not (self.read_q or self.write_q):
            return
        self._service_scheduled = True
        self.engine.at(max(self.engine.now, self._bus_free), self._service)

    def _service(self) -> None:
        self._service_scheduled = False
        read_q = self.read_q
        write_q = self.write_q
        if not (read_q or write_q):
            return
        engine = self.engine
        now = engine.now

        # Refresh first: if the refresh deadline has passed, stall the rank
        # for tRFC with every bank precharged.  The deadline is read
        # directly (one compare on the not-due path, which is every
        # service but one in ~7.8 us).  All overdue windows are consumed
        # in one dispatch: the pre-batch code chained one same-tick
        # service dispatch per window (each window's end lands before
        # ``now`` except possibly the last), so stats, command log, and
        # trace entries are reconstructed per window back-dated exactly
        # where those dispatches put them, and the skipped dispatches are
        # accounted as synthesized occurrences.  In eager periodic mode
        # the stream hands over one window at a time, reproducing the
        # dispatch-per-window census bit-for-bit.
        stream = self._refresh_stream
        if now >= stream.next_due:
            first, count = stream.take_due(now)
            tRFC = self._tRFC
            last_start = first + (count - 1) * self._tREFI
            last_end = last_start + tRFC
            log = self.command_log
            if log is not None:
                from repro.dram.compliance import DramCommand

                start = first
                for _ in range(count):
                    log.append(
                        DramCommand(start, "REF", -1, None, start + tRFC)
                    )
                    start += self._tREFI
            if self._tracer.enabled:
                self._tracer.complete_series(
                    "dram", "refresh", self.name, first, self._tREFI,
                    count, tRFC,
                )
            for bank in self.banks:
                bank.force_precharge(last_end)
            if last_end > self._bus_free:
                self._bus_free = last_end
            self.rank.refreshes += count
            self._refreshes_counter.value += count
            if count > 1:
                engine._synthesized += count - 1
            self._service_scheduled = True
            seq = engine._seq
            engine._seq = seq + 1
            engine._push(
                (max(now, self._bus_free), seq, self._service, _NO_ARG)
            )
            return

        # Inline of _select_queue (write-drain hysteresis + age bound).
        params = self.params
        wq_len = len(write_q)
        draining = self._draining
        if draining and wq_len <= params.write_drain_lo:
            draining = self._draining = False
        if not draining and wq_len >= params.write_drain_hi:
            draining = self._draining = True
        if not draining and wq_len and (
            now - write_q[0].arrival >= params.write_timeout
        ):
            draining = self._draining = True
        if draining and wq_len:
            queue = write_q
        elif read_q:
            queue = read_q
        else:
            queue = write_q

        # Single-class common-case picks, inlined from _pick_request:
        # depth-1 pop and head row-hit cover most services, and neither
        # can emit a reorder event (index 0 picks never do).
        is_write_q = queue is write_q
        secure_count = self._wq_secure if is_write_q else self._rq_secure
        qlen = len(queue)
        if not 0 < secure_count < qlen:
            if qlen == 1:
                req = queue.pop()
            elif self.banks[(r0 := queue[0]).bank].open_row == r0.row:
                req = r0
                del queue[0]
            else:
                req = None
            if req is not None:
                indexes = self._wq_index if is_write_q else self._rq_index
                index = indexes[req.bank]
                bucket = index[req.row]
                if len(bucket) == 1:
                    del index[req.row]
                else:
                    bucket.remove(req)
                if req.traffic is TrafficClass.SECURE:
                    if is_write_q:
                        self._wq_secure -= 1
                    else:
                        self._rq_secure -= 1
            else:
                req = self._pick_request(queue)
        else:
            req = self._pick_request(queue)

        bank = self.banks[req.bank]
        bus_free = self._bus_free
        floor = bus_free if bus_free > now else now
        is_write = req.is_write
        if is_write and self._last_op is OpType.READ:
            floor += self._tRTW
        data_start, outcome = bank.commit(req, req.arrival, floor=floor)
        if self._close_page:
            bank.close_after_access()
        if self.command_log is not None:
            from repro.dram.compliance import DramCommand

            self.command_log.extend(
                DramCommand(t, kind, req.bank, row)
                for kind, t, row in bank.last_commands
            )
        tburst = self._tBURST
        finish = data_start + tburst

        self._bus_free = finish
        self._last_op = req.op
        self._busy_ticks += tburst

        latency = finish - req.arrival
        secure = req.traffic is TrafficClass.SECURE
        lat_kind, lat_cls, served = self._lat_by_req[
            (2 if is_write else 0) + (1 if secure else 0)
        ]
        # Inline of LatencyStat.record (x2) and Counter.add (x2): these
        # four updates run for every serviced request, and the call
        # overhead alone was measurable.  Latency is positive by
        # construction (finish > arrival), so the negative-value guard
        # is unnecessary here.
        lat_kind.count += 1
        lat_kind.total += latency
        bound = lat_kind.min
        if bound is None or latency < bound:
            lat_kind.min = latency
        bound = lat_kind.max
        if bound is None or latency > bound:
            lat_kind.max = latency
        lat_cls.count += 1
        lat_cls.total += latency
        bound = lat_cls.min
        if bound is None or latency < bound:
            lat_cls.min = latency
        bound = lat_cls.max
        if bound is None or latency > bound:
            lat_cls.max = latency
        self._row_counters[outcome].value += 1
        served.value += 1
        if self._tracer.enabled:
            self._tracer.complete(
                "dram", "write" if is_write else "read", self.name,
                data_start, tburst,
                {
                    "bank": req.bank,
                    "row": req.row,
                    "outcome": outcome,
                    "app": req.app_id,
                    "cls": req.traffic.value,
                    "lat": latency,
                },
            )
        # Inline of Engine.call_at / Engine.at: both times are >= now by
        # construction (data_start is floored at now, finish is later
        # still), so the past-schedule guards cannot fire.
        on_complete = req.on_complete
        if on_complete is not None:
            if self._faults is not None and not is_write:
                # Transient flip of this read's data burst: marks the
                # completion's owner (who MAC-verifies) before it fires.
                self._faults.maybe_flip(on_complete)
            seq = engine._seq
            engine._seq = seq + 1
            engine._push((finish, seq, on_complete, finish))

        if self._space_waiters:
            self._wake_space_waiters()
        # Decide the next request when the bus frees so bursts can chain
        # back-to-back.
        if read_q or write_q:
            self._service_scheduled = True
            seq = engine._seq
            engine._seq = seq + 1
            engine._push((data_start, seq, self._service, _NO_ARG))

    def _select_queue(self) -> List[MemRequest]:
        """Write-drain hysteresis + age bound, else reads, else writes."""
        write_q = self.write_q
        wq_len = len(write_q)
        draining = self._draining
        if draining and wq_len <= self.params.write_drain_lo:
            draining = self._draining = False
        if not draining and wq_len >= self.params.write_drain_hi:
            draining = self._draining = True
        if not draining and wq_len:
            # Starvation bound: a sufficiently old write forces service
            # even below the high watermark (bounded write latency, as in
            # real controllers).  FIFO append order makes the queue head
            # the oldest write.
            if self.engine.now - write_q[0].arrival >= self.params.write_timeout:
                draining = self._draining = True
        if draining and wq_len:
            return write_q
        if self.read_q:
            return self.read_q
        return write_q

    def _pick_request(self, queue: List[MemRequest]) -> MemRequest:
        """Arbitrate traffic classes, then FR-FCFS within the class."""
        is_write_q = queue is self.write_q
        secure_count = self._wq_secure if is_write_q else self._rq_secure
        indexes = self._wq_index if is_write_q else self._rq_index
        qlen = len(queue)
        if 0 < secure_count < qlen:
            # Mixed traffic: the share policy decides the class, then the
            # windowed scan picks within the filtered candidates (the side
            # index spans both classes, so it does not apply here).  Both
            # classes are present by the count check, so the
            # first-appearance-ordered class list only depends on the
            # queue head's class.
            if queue[0].traffic is TrafficClass.SECURE:
                classes = [TrafficClass.SECURE, TrafficClass.NORMAL]
            else:
                classes = [TrafficClass.NORMAL, TrafficClass.SECURE]
            chosen_cls = self.share_policy.pick_class(classes)
            if self._tracer.enabled:
                self._tracer.instant(
                    "dram", "class_pick", self.name, self.engine.now,
                    {"cls": chosen_cls.value, "contenders": len(classes)},
                )
                candidates = [r for r in queue if r.traffic is chosen_cls]
                req = candidates[self._scan_pick(candidates)]
            else:
                # Tracing off: no reorder event can be emitted, so scan
                # the queue directly for the first in-class row hit
                # within the window instead of materializing the
                # candidate list (same decision as _scan_pick over it).
                banks = self.banks
                window = self._window
                first = None
                req = None
                examined = 0
                for r in queue:
                    if r.traffic is chosen_cls:
                        if banks[r.bank].open_row == r.row:
                            req = r
                            break
                        if first is None:
                            first = r
                        examined += 1
                        if examined >= window:
                            break
                if req is None:
                    req = first
            queue.remove(req)
        elif qlen == 1:
            # Depth-1 early-out: any scan returns index 0 and never
            # emits a reorder event.
            req = queue.pop()
        elif self.banks[(r0 := queue[0]).bank].open_row == r0.row:
            # Head row-hit early-out: the scan's first probe is index 0,
            # and in the indexed probe the head holds the global minimum
            # _enq_seq, so both pick it; index 0 never emits a reorder.
            req = r0
            del queue[0]
        elif qlen <= self._window:
            # Indexed first-ready probe: the whole queue is inside the
            # scan window, so the minimum-_enq_seq open-row bucket head
            # is exactly the scan's first hit (queue position order ==
            # _enq_seq order); no hit -> oldest (queue head).
            req = None
            best_seq = _NO_PICK
            for bank_idx, bank in enumerate(self.banks):
                row = bank.open_row
                if row is not None:
                    bucket = indexes[bank_idx].get(row)
                    if bucket:
                        head = bucket[0]
                        if head._enq_seq < best_seq:
                            best_seq = head._enq_seq
                            req = head
            if req is None:
                req = queue[0]
                del queue[0]
            elif self._tracer.enabled:
                i = queue.index(req)
                if i:
                    self._tracer.instant(
                        "dram", "frfcfs_reorder", self.name,
                        self.engine.now,
                        {"index": i, "bank": req.bank, "depth": qlen},
                    )
                del queue[i]
            else:
                queue.remove(req)
        else:
            # Queue deeper than the scan window: the bounded scan may
            # legitimately miss a hit the full index would see, so defer
            # to it for bit-identical decisions.
            req = queue[self._scan_pick(queue)]
            queue.remove(req)

        index = indexes[req.bank]
        bucket = index[req.row]
        if len(bucket) == 1:
            del index[req.row]
        else:
            bucket.remove(req)
        if req.traffic is TrafficClass.SECURE:
            if is_write_q:
                self._wq_secure -= 1
            else:
                self._rq_secure -= 1
        return req

    def _scan_pick(self, queue: List[MemRequest]) -> int:
        """Inlined :meth:`FrFcfsScheduler.pick` (same decisions and trace
        events, minus the per-entry ``classify`` call)."""
        banks = self.banks
        qlen = len(queue)
        limit = qlen if qlen < self._window else self._window
        for i in range(limit):
            r = queue[i]
            if banks[r.bank].open_row == r.row:
                if i and self._tracer.enabled:
                    self._tracer.instant(
                        "dram", "frfcfs_reorder", self.name,
                        self.engine.now,
                        {"index": i, "bank": r.bank, "depth": qlen},
                    )
                return i
        return 0

    # ------------------------------------------------------------------
    def _record(self, req: MemRequest, outcome: str, finish: int) -> None:
        """Record service statistics (kept for subclass/analysis use; the
        service loop inlines the same sequence)."""
        latency = finish - req.arrival
        lat_kind, lat_cls, served = self._lat_by_req[
            (2 if req.is_write else 0)
            + (1 if req.traffic is TrafficClass.SECURE else 0)
        ]
        lat_kind.record(latency)
        lat_cls.record(latency)
        self._row_counters[outcome].value += 1
        served.value += 1

    def _wake_space_waiters(self) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of elapsed time the data bus carried bursts."""
        return self._busy_ticks / self.engine.now if self.engine.now else 0.0

    def row_hit_rate(self) -> float:
        hits = self.stats.counter("row_hit").value
        total = hits + self.stats.counter("row_closed").value + \
            self.stats.counter("row_conflict").value
        return hits / total if total else 0.0
