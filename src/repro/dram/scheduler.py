"""Request scheduling policies for a memory channel.

Two policies from the paper's infrastructure:

* **FR-FCFS** (first-ready, first-come-first-served) -- the standard USIMM
  open-page scheduler: among queued requests, prefer one that hits an open
  row buffer, otherwise take the oldest.  The scan is bounded by a window
  for simulation speed, as real schedulers bound their associative search.

* **Bandwidth preallocation** (:class:`SharePolicy`) -- the cooperative
  Path ORAM sharing technique of Wang et al. [39] that Section IV adopts
  with a 50 % threshold: when secure (ORAM) and normal traffic share a
  channel, each traffic class is guaranteed its configured fraction of
  scheduling slots via deficit round-robin, so an ORAM burst cannot starve
  co-running applications (and vice versa).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.dram.bank import Bank
from repro.dram.commands import MemRequest, TrafficClass


class _NullPickTracer:
    """Disabled-tracing sentinel (mirrors ``repro.obs.tracer.NULL_TRACER``
    without importing it, keeping the DRAM layer importable standalone)."""

    enabled = False


_NULL_PICK_TRACER = _NullPickTracer()


class FrFcfsScheduler:
    """First-ready FCFS pick over a bounded queue window."""

    def __init__(self, window: int = 24) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._tracer = _NULL_PICK_TRACER
        self._track = ""
        self._clock = None

    def bind_tracer(self, tracer, track: str, clock) -> None:
        """Attach a trace sink (``dram`` category).

        ``clock`` is the owning engine (read for ``now``); the scheduler
        itself stays time-free.  Only out-of-order picks are emitted --
        an FR-FCFS decision that deviates from FIFO is exactly the
        reordering a mean-preserving regression could hide.
        """
        self._tracer = tracer
        self._track = track
        self._clock = clock

    def pick(self, queue: Sequence[MemRequest], banks: Sequence[Bank]) -> int:
        """Index of the request to service next (queue must be non-empty).

        Prefers, within the scan window, a request whose bank currently has
        its row open (a row-buffer hit); falls back to the oldest request.
        """
        if not queue:
            raise ValueError("pick() on empty queue")
        limit = min(len(queue), self.window)
        for i in range(limit):
            req = queue[i]
            if banks[req.bank].classify(req.row) == "hit":
                if i and self._tracer.enabled:
                    self._tracer.instant(
                        "dram", "frfcfs_reorder", self._track,
                        self._clock.now,
                        {"index": i, "bank": req.bank, "depth": len(queue)},
                    )
                return i
        return 0


class SharePolicy:
    """Deficit round-robin between traffic classes.

    ``weights`` maps each :class:`TrafficClass` to its guaranteed share;
    the paper uses 50/50 (``{SECURE: 1, NORMAL: 1}``).  Classes with no
    queued work donate their slot, so the policy is work-conserving.
    """

    def __init__(self, weights: Optional[Dict[TrafficClass, float]] = None) -> None:
        if weights is None:
            weights = {TrafficClass.SECURE: 1.0, TrafficClass.NORMAL: 1.0}
        if not weights or any(w <= 0 for w in weights.values()):
            raise ValueError("weights must be positive")
        self.weights = dict(weights)
        total = sum(self.weights.values())
        self._share = {cls: w / total for cls, w in self.weights.items()}
        self._credit: Dict[TrafficClass, float] = {
            cls: 0.0 for cls in self.weights
        }
        self.served: Dict[TrafficClass, int] = {cls: 0 for cls in self.weights}

    def pick_class(self, pending: Sequence[TrafficClass]) -> TrafficClass:
        """Choose which class to serve among classes with queued requests."""
        if len(pending) == 2:
            # The hot shape (secure + normal contending): same arithmetic
            # as the generic path below, without the key-function sort.
            a, b = pending
            if a in self.weights and b in self.weights:
                credit = self._credit
                share = self._share
                ca = min(credit[a] + share[a], 2.0)
                cb = min(credit[b] + share[b], 2.0)
                credit[a] = ca
                credit[b] = cb
                best = a if ca >= cb else b  # tie -> earlier in pending
                credit[best] = max(credit[best] - 1.0, -2.0)
                self.served[best] += 1
                return best
        candidates = [cls for cls in pending if cls in self.weights]
        if not candidates:
            # Unconfigured classes fall through in arrival order.
            return pending[0]
        if len(candidates) == 1:
            # Work-conserving bypass: an uncontended slot costs no credit,
            # so a class running alone does not bank debt (or surplus)
            # against classes that were absent.
            self.served[candidates[0]] += 1
            return candidates[0]
        # Contended slot: every pending class earns its share, the winner
        # pays one slot.  Credits stay bounded by construction (shares sum
        # to <= 1 and the winner pays 1), but clamp anyway for safety.
        for cls in candidates:
            self._credit[cls] = min(self._credit[cls] + self._share[cls], 2.0)
        best = max(candidates, key=lambda cls: (self._credit[cls],
                                                -candidates.index(cls)))
        self._credit[best] = max(self._credit[best] - 1.0, -2.0)
        self.served[best] += 1
        return best

    def served_fraction(self, cls: TrafficClass) -> float:
        """Fraction of slots actually served to ``cls`` (for tests/analysis)."""
        total = sum(self.served.values())
        return self.served.get(cls, 0) / total if total else 0.0


class SingleClassPolicy:
    """Degenerate share policy when only one traffic class uses a channel."""

    def pick_class(self, pending: Sequence[TrafficClass]) -> TrafficClass:
        return pending[0]
