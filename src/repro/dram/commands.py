"""Memory request objects exchanged between front ends and controllers."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class OpType(enum.Enum):
    """Request direction as seen by the DRAM channel."""

    READ = "read"
    WRITE = "write"


#: Traffic-class tag for scheduler share policies: the ORAM engine's
#: requests are ``SECURE``, everything else is ``NORMAL``.
class TrafficClass(enum.Enum):
    NORMAL = "normal"
    SECURE = "secure"


_request_ids = itertools.count()


@dataclass
class MemRequest:
    """One cache-line access, already decoded to device coordinates.

    The front end (core, ORAM controller, or secure delegator) fills in the
    coordinates via the address-mapping layer, enqueues the request at a
    :class:`~repro.dram.channel.Channel`, and receives ``on_complete`` when
    the data burst finishes.
    """

    op: OpType
    channel: int
    subchannel: int
    bank: int
    row: int
    #: Line offset within the row (column group); kept for address
    #: round-tripping and debug, not used by the timing model.
    col: int = 0
    #: Originating application id; -1 marks engine-internal traffic.
    app_id: int = -1
    traffic: TrafficClass = TrafficClass.NORMAL
    #: Set by the channel when the request is accepted.
    arrival: int = 0
    #: Completion callback, invoked with the finish tick.
    on_complete: Optional[Callable[[int], None]] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    @property
    def is_write(self) -> bool:
        return self.op is OpType.WRITE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemRequest(#{self.req_id} {self.op.value} app={self.app_id} "
            f"ch={self.channel}.{self.subchannel} b={self.bank} r={self.row})"
        )
