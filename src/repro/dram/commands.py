"""Memory request objects exchanged between front ends and controllers."""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Optional


class OpType(enum.Enum):
    """Request direction as seen by the DRAM channel."""

    READ = "read"
    WRITE = "write"

    # Enum equality is member identity, so the identity hash is consistent
    # -- and C-speed, where ``Enum.__hash__`` is a Python-level call that
    # shows up in profiles under every enum-keyed dict operation.
    __hash__ = object.__hash__


#: Traffic-class tag for scheduler share policies: the ORAM engine's
#: requests are ``SECURE``, everything else is ``NORMAL``.
class TrafficClass(enum.Enum):
    NORMAL = "normal"
    SECURE = "secure"

    __hash__ = object.__hash__


_request_ids = itertools.count()


class MemRequest:
    """One cache-line access, already decoded to device coordinates.

    The front end (core, ORAM controller, or secure delegator) fills in the
    coordinates via the address-mapping layer, enqueues the request at a
    :class:`~repro.dram.channel.Channel`, and receives ``on_complete`` when
    the data burst finishes.

    A ``__slots__`` class (not a dataclass): requests are the single most
    allocated object on the simulation hot path, and ``is_write`` is
    precomputed at construction so the channel/bank fast paths read a
    plain attribute instead of testing ``op`` per use.  Identity (not
    field) equality -- two distinct requests are never "the same".
    """

    __slots__ = (
        "op",
        "channel",
        "subchannel",
        "bank",
        "row",
        "col",
        "app_id",
        "traffic",
        "arrival",
        "on_complete",
        "req_id",
        "is_write",
        "_enq_seq",
    )

    def __init__(
        self,
        op: OpType,
        channel: int,
        subchannel: int,
        bank: int,
        row: int,
        col: int = 0,
        app_id: int = -1,
        traffic: TrafficClass = TrafficClass.NORMAL,
        arrival: int = 0,
        on_complete: Optional[Callable[[int], None]] = None,
        req_id: Optional[int] = None,
    ) -> None:
        self.op = op
        self.channel = channel
        self.subchannel = subchannel
        self.bank = bank
        self.row = row
        #: Line offset within the row (column group); kept for address
        #: round-tripping and debug, not used by the timing model.
        self.col = col
        #: Originating application id; -1 marks engine-internal traffic.
        self.app_id = app_id
        self.traffic = traffic
        #: Set by the channel when the request is accepted.
        self.arrival = arrival
        #: Completion callback, invoked with the finish tick.
        self.on_complete = on_complete
        self.req_id = next(_request_ids) if req_id is None else req_id
        self.is_write = op is OpType.WRITE
        #: Channel-local FIFO sequence, assigned at enqueue (used by the
        #: indexed FR-FCFS pick to order row hits across banks).
        self._enq_seq = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemRequest(#{self.req_id} {self.op.value} app={self.app_id} "
            f"ch={self.channel}.{self.subchannel} b={self.bank} r={self.row})"
        )
