"""Address mapping: application line addresses to DRAM device coordinates.

Two layers, mirroring the paper's memory organization:

* :class:`ChannelInterleaver` decides *which* channel/sub-channel a line
  lives on.  Per-application channel masks implement the experiments'
  allocation policies: the Fig. 4 channel partition (7NS-3ch keeps NS-Apps
  off channel 0) and D-ORAM/c (only ``c`` of the NS-Apps may allocate on
  the secure channel, Section III-D).

* :func:`decode_line` maps the channel-local line index to (bank, row,
  column) with consecutive lines filling a row before moving to the next
  bank, so streaming accesses see row-buffer hits -- USIMM's default
  open-page-friendly layout.

The ORAM tree does *not* use this module's interleaver; its physical
placement is the subtree layout in :mod:`repro.oram.layout`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class DeviceGeometry:
    """Channel-local geometry used to decode line indices."""

    num_banks: int = 8
    lines_per_row: int = 128  # 8 KB row / 64 B line
    num_rows: int = 1 << 16

    @property
    def lines_per_bank(self) -> int:
        return self.lines_per_row * self.num_rows

    @property
    def capacity_lines(self) -> int:
        return self.lines_per_bank * self.num_banks


@dataclass(frozen=True)
class LineAddress:
    """A fully decoded physical line location."""

    channel: int
    subchannel: int
    bank: int
    row: int
    col: int


def decode_line(local_line: int, geometry: DeviceGeometry) -> Tuple[int, int, int]:
    """Map a channel-local line index to ``(bank, row, col)``.

    Row-major within a bank row, then round-robin across banks per row so
    that (a) a streaming app keeps row hits inside each bank and (b) large
    strides still spread across banks for parallelism.
    """
    if local_line < 0:
        raise ValueError("negative line index")
    col = local_line % geometry.lines_per_row
    row_group = local_line // geometry.lines_per_row
    bank = row_group % geometry.num_banks
    row = (row_group // geometry.num_banks) % geometry.num_rows
    return bank, row, col


class ChannelInterleaver:
    """Per-application interleaving across an allowed set of channels.

    Each application owns a disjoint slice of the physical row space (a
    per-app base row offset) so co-running copies of the same benchmark do
    not alias onto the same rows, matching the paper's "addresses of
    different versions are mapped to different address spaces".
    """

    def __init__(
        self,
        targets: Sequence[Tuple[int, int]],
        geometry: DeviceGeometry = DeviceGeometry(),
        app_base_line: int = 0,
    ) -> None:
        if not targets:
            raise ValueError("an app must be allowed at least one channel")
        self.targets: List[Tuple[int, int]] = list(targets)
        self.geometry = geometry
        self.app_base_line = app_base_line
        # Hot-path caches for map_line_tuple (one decode per issued
        # request; the frozen-dataclass construction and property
        # indirection were measurable there).
        self._num_targets = len(self.targets)
        self._lines_per_row = geometry.lines_per_row
        self._num_banks = geometry.num_banks
        self._num_rows = geometry.num_rows

    def map_line(self, line_index: int) -> LineAddress:
        """Stripe ``line_index`` across the allowed targets at line grain."""
        if line_index < 0:
            raise ValueError("negative line index")
        target = self.targets[line_index % len(self.targets)]
        local = self.app_base_line + line_index // len(self.targets)
        bank, row, col = decode_line(local, self.geometry)
        return LineAddress(target[0], target[1], bank, row, col)

    def map_line_tuple(self, line_index: int) -> Tuple[int, int, int, int, int]:
        """:meth:`map_line` as a plain ``(channel, subchannel, bank, row,
        col)`` tuple -- same decode, no per-request dataclass allocation."""
        if line_index < 0:
            raise ValueError("negative line index")
        n = self._num_targets
        channel, subchannel = self.targets[line_index % n]
        local = self.app_base_line + line_index // n
        col = local % self._lines_per_row
        row_group = local // self._lines_per_row
        return (
            channel,
            subchannel,
            row_group % self._num_banks,
            (row_group // self._num_banks) % self._num_rows,
            col,
        )


def build_app_interleavers(
    app_targets: Dict[int, Sequence[Tuple[int, int]]],
    geometry: DeviceGeometry = DeviceGeometry(),
    lines_per_app: int = 1 << 20,
) -> Dict[int, ChannelInterleaver]:
    """Create one interleaver per application with disjoint base offsets.

    ``app_targets`` maps ``app_id`` to the (channel, subchannel) pairs the
    app may allocate on; ``lines_per_app`` sizes each app's slice of the
    channel-local line space (default 64 MB of lines, ample for traces).
    """
    interleavers: Dict[int, ChannelInterleaver] = {}
    for slot, (app_id, targets) in enumerate(sorted(app_targets.items())):
        interleavers[app_id] = ChannelInterleaver(
            targets, geometry, app_base_line=slot * lines_per_app
        )
    return interleavers
