"""JEDEC DDR3 timing parameters.

All values are stored in engine ticks (16 ticks per nanosecond) and the
defaults correspond to DDR3-1600K (11-11-11) as enforced by USIMM's default
configuration, which Table II of the paper adopts.  One memory-bus cycle at
1600 MT/s (800 MHz clock) is 1.25 ns = 20 ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import mem_cycles, ns


@dataclass(frozen=True)
class DDR3Timing:
    """DDR3 device timing constraints, in engine ticks.

    Attribute names follow JEDEC / USIMM conventions.  The defaults model
    DDR3-1600 with CL=11; construct with different values for speed-grade
    ablations.
    """

    #: One memory bus cycle (tCK), ticks.
    tCK: int = mem_cycles(1)
    #: ACTIVATE to internal read/write delay (tRCD).
    tRCD: int = mem_cycles(11)
    #: PRECHARGE to ACTIVATE delay (tRP).
    tRP: int = mem_cycles(11)
    #: CAS latency: column read command to first data (tCL / tCAS).
    tCL: int = mem_cycles(11)
    #: CAS write latency (tCWL/tCWD); DDR3-1600 uses 8.
    tCWL: int = mem_cycles(8)
    #: ACTIVATE to PRECHARGE minimum (tRAS).
    tRAS: int = mem_cycles(28)
    #: ACTIVATE to ACTIVATE, same bank (tRC = tRAS + tRP).
    tRC: int = mem_cycles(39)
    #: Data burst duration for BL8 on a x64 channel (4 bus cycles).
    tBURST: int = mem_cycles(4)
    #: ACTIVATE to ACTIVATE, different banks same rank (tRRD).
    tRRD: int = mem_cycles(5)
    #: Four-activate window per rank (tFAW).
    tFAW: int = mem_cycles(24)
    #: Write recovery: end of write data to PRECHARGE (tWR).
    tWR: int = mem_cycles(12)
    #: Read to PRECHARGE (tRTP).
    tRTP: int = mem_cycles(6)
    #: Write data end to subsequent READ command, same rank (tWTR).
    tWTR: int = mem_cycles(6)
    #: Read data end to subsequent write burst (bus turnaround, tRTW proxy).
    tRTW: int = mem_cycles(2)
    #: Average refresh interval (tREFI), 7.8 us.
    tREFI: int = ns(7800)
    #: Refresh cycle time (tRFC) for a 4 Gb device, 260 ns.
    tRFC: int = ns(260)

    def __post_init__(self) -> None:
        if self.tRC < self.tRAS + self.tRP:
            raise ValueError("tRC must be >= tRAS + tRP")
        if self.tFAW < self.tRRD:
            raise ValueError("tFAW must cover at least one tRRD window")

    # Derived figures used by analysis and docs -------------------------
    @property
    def row_hit_latency(self) -> int:
        """Column command to last data beat for a row-buffer hit (read)."""
        return self.tCL + self.tBURST

    @property
    def row_closed_latency(self) -> int:
        """ACT + column + data for an access to a precharged bank."""
        return self.tRCD + self.tCL + self.tBURST

    @property
    def row_conflict_latency(self) -> int:
        """PRE + ACT + column + data for a row-buffer conflict."""
        return self.tRP + self.tRCD + self.tCL + self.tBURST


#: The paper's device (Table II: DDR3-1600, defaults "strictly enforced
#: in USIMM").
DDR3_1600 = DDR3Timing()


@dataclass(frozen=True)
class ChannelParams:
    """Per-channel organization (Table II: 1 rank, 8 banks per rank)."""

    num_banks: int = 8
    num_ranks: int = 1
    #: Row buffer (page) size in bytes: 8 x8 chips x 1 KB page.
    row_bytes: int = 8192
    #: Cache-line (block) size in bytes.
    line_bytes: int = 64
    #: Read-queue capacity in the controller.
    read_queue_depth: int = 64
    #: Write-queue capacity; fetch backpressure triggers when full.
    write_queue_depth: int = 64
    #: Write drain starts above this occupancy...
    write_drain_hi: int = 40
    #: ...and stops below this one.
    write_drain_lo: int = 16
    #: Starvation bound: a write older than this (ticks) forces a drain
    #: even below the high watermark, as real controllers do.  12800
    #: ticks = 800 ns.
    write_timeout: int = 12800
    #: FR-FCFS scan window (bounded for simulation speed).
    scheduler_window: int = 24

    @property
    def lines_per_row(self) -> int:
        return self.row_bytes // self.line_bytes

    def __post_init__(self) -> None:
        if self.write_drain_lo >= self.write_drain_hi:
            raise ValueError("write_drain_lo must be below write_drain_hi")
        if self.row_bytes % self.line_bytes:
            raise ValueError("row size must be a multiple of the line size")


DEFAULT_CHANNEL_PARAMS = ChannelParams()
