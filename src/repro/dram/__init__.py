"""DDR3 DRAM device and memory-controller substrate.

This package replaces USIMM (the cycle-accurate simulator the paper used)
with an event-driven model that keeps the JEDEC DDR3-1600 constraint set:
row hit / closed / conflict latencies, tFAW and tRRD activation windows,
read/write bus turnaround, write recovery, and periodic refresh.

The public surface:

* :class:`~repro.dram.timing.DDR3Timing` -- the JEDEC parameter set;
* :class:`~repro.dram.commands.MemRequest` -- one cache-line read or write;
* :class:`~repro.dram.channel.Channel` -- one (sub-)channel with its banks,
  queues and FR-FCFS scheduler;
* :mod:`~repro.dram.address_mapping` -- line-address to device-coordinate
  mapping, including per-application channel masks used by D-ORAM/c.
"""

from repro.dram.timing import DDR3Timing, DDR3_1600
from repro.dram.commands import MemRequest, OpType
from repro.dram.bank import Bank
from repro.dram.channel import Channel
from repro.dram.kernel import KernelChannel, channel_class
from repro.dram.scheduler import FrFcfsScheduler, SharePolicy
from repro.dram.address_mapping import (
    ChannelInterleaver,
    DeviceGeometry,
    LineAddress,
    decode_line,
)

__all__ = [
    "DDR3Timing",
    "DDR3_1600",
    "MemRequest",
    "OpType",
    "Bank",
    "Channel",
    "KernelChannel",
    "channel_class",
    "FrFcfsScheduler",
    "SharePolicy",
    "ChannelInterleaver",
    "DeviceGeometry",
    "LineAddress",
    "decode_line",
]
