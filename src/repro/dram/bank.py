"""DRAM bank state machine.

A bank tracks its open row and the JEDEC timestamps needed to decide when
the *data burst* of the next access can start.  The channel asks the bank
two questions:

* :meth:`earliest_data_start` -- if I scheduled this request now, when could
  its data appear on the bus?  (Used by FR-FCFS to prefer row hits and by
  the channel to overlap bank preparation with the current burst.)
* :meth:`commit` -- the request was selected; advance the state machine and
  return the actual data-start time.

The model back-dates PRECHARGE/ACTIVATE preparation as early as the bank
and rank constraints allow (but never before the request's arrival), which
captures the command/data overlap a real FR-FCFS controller achieves
without simulating individual command slots.

Both classes carry ``__slots__`` and cache the JEDEC parameters they use
as plain instance attributes: ``commit``/``_plan`` run once per serviced
request, and the indirection through the timing dataclass was measurable
there.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dram.commands import MemRequest
from repro.dram.timing import DDR3Timing
from repro.sim.periodic import PeriodicStream


class Bank:
    """One DRAM bank: open-row register plus timing bookkeeping."""

    __slots__ = (
        "timing",
        "rank",
        "open_row",
        "_act_time",
        "_pre_ready",
        "_act_ready",
        "hits",
        "misses",
        "conflicts",
        "record_commands",
        "last_commands",
        "_tRCD",
        "_tRP",
        "_tRC",
        "_tRAS",
        "_tWR",
        "_tRTP",
        "_tCL",
        "_tCWL",
        "_tBURST",
    )

    def __init__(self, timing: DDR3Timing, rank: "RankTimers") -> None:
        self.timing = timing
        self.rank = rank
        #: Currently open row, or ``None`` when precharged.
        self.open_row: Optional[int] = None
        #: Tick of the last ACTIVATE.
        self._act_time: int = -(10**12)
        #: Earliest tick a PRECHARGE may issue (tRAS / tWR / tRTP fences).
        self._pre_ready: int = 0
        #: Earliest tick an ACTIVATE may issue (tRP / tRC fences).
        self._act_ready: int = 0
        # Row-buffer statistics, read by the channel.
        self.hits = 0
        self.misses = 0
        self.conflicts = 0
        #: When set (protocol-compliance replay), :meth:`commit` records
        #: the implied command schedule into :attr:`last_commands` as
        #: ``(kind, time, row)`` tuples.  Off by default -- zero cost on
        #: the hot path.
        self.record_commands = False
        self.last_commands: list = []
        # Hot-path timing caches (see module docstring).
        self._tRCD = timing.tRCD
        self._tRP = timing.tRP
        self._tRC = timing.tRC
        self._tRAS = timing.tRAS
        self._tWR = timing.tWR
        self._tRTP = timing.tRTP
        self._tCL = timing.tCL
        self._tCWL = timing.tCWL
        self._tBURST = timing.tBURST

    # ------------------------------------------------------------------
    def classify(self, row: int) -> str:
        """Row-buffer outcome if ``row`` were accessed next."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    def earliest_data_start(self, req: MemRequest, earliest: int) -> int:
        """Earliest data-burst start for ``req``, preparing from ``earliest``.

        Does not mutate state.  ``earliest`` is the first tick preparation
        commands may be considered (normally the request arrival time).
        """
        start, _act, _pre = self._plan(req, earliest)
        return start

    def commit(self, req: MemRequest, earliest: int, floor: int = 0) -> Tuple[int, str]:
        """Schedule ``req``; returns ``(data_start, outcome)``.

        ``floor`` is the earliest the data burst may start for reasons the
        bank cannot see (the channel data bus being busy); all recovery
        fences are computed from the *actual* burst time.  ``outcome`` is
        ``"hit"``, ``"closed"`` or ``"conflict"`` for row-buffer statistics.
        """
        # Fused copy of :meth:`_plan` plus the state advance -- this runs
        # once per serviced request, and the separate call re-branched on
        # the row classification computed here.
        row = req.row
        open_row = self.open_row
        is_write = req.is_write
        cas = self._tCWL if is_write else self._tCL
        rank = self.rank

        if open_row == row:  # hit (open_row is never None here)
            outcome = "hit"
            self.hits += 1
            act_time = self._act_time
            pre_time = None
            col = act_time + self._tRCD
            if col < earliest:
                col = earliest
            if not is_write:
                ready = rank._last_write_end + rank._tWTR  # read_ready
                if ready > col:
                    col = ready
            data_start = col + cas
        else:
            act_ready = self._act_ready
            if open_row is not None:  # conflict: PRECHARGE first
                outcome = "conflict"
                self.conflicts += 1
                pre_time = self._pre_ready
                if pre_time < earliest:
                    pre_time = earliest
                act_lb = pre_time + self._tRP
                if act_lb < act_ready:
                    act_lb = act_ready
            else:  # closed
                outcome = "closed"
                self.misses += 1
                pre_time = None
                act_lb = act_ready if act_ready > earliest else earliest
            # Inline of rank.activate_slot / note_activate (tRRD + tFAW).
            act_time = act_lb
            acts = rank._acts
            if acts:
                fence = acts[-1] + rank._tRRD
                if fence > act_time:
                    act_time = fence
                if len(acts) >= 4:
                    fence = acts[-4] + rank._tFAW
                    if fence > act_time:
                        act_time = fence
            col = act_time + self._tRCD
            if not is_write:
                ready = rank._last_write_end + rank._tWTR  # read_ready
                if ready > col:
                    col = ready
            data_start = col + cas
            # The ACTIVATE (possibly preceded by a PRECHARGE) happened.
            acts.append(act_time)
            if len(acts) > 4:
                del acts[0]
            self._act_time = act_time
            self._act_ready = act_time + self._tRC
            self.open_row = row

        if data_start < floor:
            data_start = floor
        col_time = data_start - cas
        if self.record_commands:
            self.last_commands = []
            if pre_time is not None:
                self.last_commands.append(("PRE", pre_time, None))
            if outcome != "hit":
                self.last_commands.append(("ACT", act_time, row))
            self.last_commands.append(
                ("WR" if is_write else "RD", col_time, row)
            )
        if is_write:
            # Write recovery fences the next precharge after the data burst.
            write_end = data_start + self._tBURST
            pre_ready = write_end + self._tWR
            act_fence = act_time + self._tRAS
            if act_fence > pre_ready:
                pre_ready = act_fence
            if pre_ready > self._pre_ready:
                self._pre_ready = pre_ready
            if write_end > rank._last_write_end:  # note_write_end
                rank._last_write_end = write_end
        else:
            pre_ready = col_time + self._tRTP
            act_fence = act_time + self._tRAS
            if act_fence > pre_ready:
                pre_ready = act_fence
            if pre_ready > self._pre_ready:
                self._pre_ready = pre_ready
        return data_start, outcome

    def force_precharge(self, time: int) -> None:
        """Close the row (refresh or page-close policy)."""
        self.open_row = None
        self._act_ready = max(self._act_ready, time)

    def close_after_access(self) -> int:
        """Close-page policy: precharge at the earliest legal tick after
        the access just committed (honoring tRAS/tWR/tRTP recovery).
        Returns the PRECHARGE time and appends it to the command record
        when recording is on."""
        pre_time = self._pre_ready
        self.open_row = None
        self._act_ready = max(self._act_ready, pre_time + self._tRP)
        if self.record_commands:
            self.last_commands.append(("PRE", pre_time, None))
        return pre_time

    # ------------------------------------------------------------------
    def _plan(
        self, req: MemRequest, earliest: int
    ) -> Tuple[int, int, Optional[int]]:
        """Compute ``(data_start, act_time, pre_time)`` without mutating
        state.  ``pre_time`` is ``None`` unless a row-buffer conflict
        forces a PRECHARGE first."""
        is_write = req.is_write
        cas = self._tCWL if is_write else self._tCL
        open_row = self.open_row

        if open_row == req.row:  # hit (open_row is never None here then)
            # Column command directly; tRCD already satisfied if the row
            # has been open long enough.
            col = self._act_time + self._tRCD
            if col < earliest:
                col = earliest
            if not is_write:
                ready = self.rank.read_ready(earliest)
                if ready > col:
                    col = ready
            return col + cas, self._act_time, None

        act_ready = self._act_ready
        if open_row is not None:  # conflict
            pre = self._pre_ready
            if pre < earliest:
                pre = earliest
            act_lb = pre + self._tRP
            if act_lb < act_ready:
                act_lb = act_ready
        else:  # closed
            pre = None
            act_lb = act_ready if act_ready > earliest else earliest

        act = self.rank.activate_slot(act_lb)
        col = act + self._tRCD
        if not is_write:
            ready = self.rank.read_ready(earliest)
            if ready > col:
                col = ready
        return col + cas, act, pre


class RankTimers:
    """Per-rank constraints shared by the rank's banks.

    Tracks the tFAW four-activate window, tRRD activate spacing, the
    write-to-read (tWTR) fence, and the periodic refresh schedule.
    """

    __slots__ = (
        "timing",
        "_acts",
        "_last_write_end",
        "refresh",
        "refreshes",
        "_tRRD",
        "_tFAW",
        "_tWTR",
        "_tREFI",
        "_tRFC",
    )

    def __init__(self, timing: DDR3Timing) -> None:
        self.timing = timing
        #: Ticks of the most recent activates (at most 4 kept).
        self._acts: list = []
        self._last_write_end = -(10**12)
        #: The refresh deadline as a lazy occurrence stream: one window
        #: every tREFI, first due one interval in.  The channel's service
        #: loop consumes overdue windows in closed form (see
        #: :mod:`repro.sim.periodic`).
        self.refresh = PeriodicStream(timing.tREFI)
        self.refreshes = 0
        self._tRRD = timing.tRRD
        self._tFAW = timing.tFAW
        self._tWTR = timing.tWTR
        self._tREFI = timing.tREFI
        self._tRFC = timing.tRFC

    # -- activates ------------------------------------------------------
    def activate_slot(self, lower_bound: int) -> int:
        """Earliest ACTIVATE at or after ``lower_bound`` honoring
        tRRD and tFAW.  Does not record the activate."""
        t = lower_bound
        acts = self._acts
        if acts:
            fence = acts[-1] + self._tRRD
            if fence > t:
                t = fence
            if len(acts) >= 4:
                fence = acts[-4] + self._tFAW
                if fence > t:
                    t = fence
        return t

    def note_activate(self, time: int) -> None:
        acts = self._acts
        acts.append(time)
        if len(acts) > 4:
            del acts[0]

    # -- write-to-read fence ---------------------------------------------
    def note_write_end(self, time: int) -> None:
        if time > self._last_write_end:
            self._last_write_end = time

    def read_ready(self, earliest: int) -> int:
        """Earliest a READ column command may issue (tWTR after writes)."""
        fence = self._last_write_end + self._tWTR
        return fence if fence > earliest else earliest

    # -- refresh ----------------------------------------------------------
    def refresh_window(self, time: int) -> Optional[Tuple[int, int]]:
        """If a refresh is due at or before ``time``, return its window.

        The caller must invoke :meth:`complete_refresh` to advance the
        schedule after stalling for the window.
        """
        due = self.refresh.next_due
        if time >= due:
            return (due, due + self._tRFC)
        return None

    def complete_refresh(self) -> None:
        self.refreshes += 1
        stream = self.refresh
        stream.occurrences += 1
        stream.next_due += self._tREFI
