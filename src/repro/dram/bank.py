"""DRAM bank state machine.

A bank tracks its open row and the JEDEC timestamps needed to decide when
the *data burst* of the next access can start.  The channel asks the bank
two questions:

* :meth:`earliest_data_start` -- if I scheduled this request now, when could
  its data appear on the bus?  (Used by FR-FCFS to prefer row hits and by
  the channel to overlap bank preparation with the current burst.)
* :meth:`commit` -- the request was selected; advance the state machine and
  return the actual data-start time.

The model back-dates PRECHARGE/ACTIVATE preparation as early as the bank
and rank constraints allow (but never before the request's arrival), which
captures the command/data overlap a real FR-FCFS controller achieves
without simulating individual command slots.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.dram.commands import MemRequest
from repro.dram.timing import DDR3Timing


class Bank:
    """One DRAM bank: open-row register plus timing bookkeeping."""

    def __init__(self, timing: DDR3Timing, rank: "RankTimers") -> None:
        self.timing = timing
        self.rank = rank
        #: Currently open row, or ``None`` when precharged.
        self.open_row: Optional[int] = None
        #: Tick of the last ACTIVATE.
        self._act_time: int = -(10**12)
        #: Earliest tick a PRECHARGE may issue (tRAS / tWR / tRTP fences).
        self._pre_ready: int = 0
        #: Earliest tick an ACTIVATE may issue (tRP / tRC fences).
        self._act_ready: int = 0
        # Row-buffer statistics, read by the channel.
        self.hits = 0
        self.misses = 0
        self.conflicts = 0
        #: When set (protocol-compliance replay), :meth:`commit` records
        #: the implied command schedule into :attr:`last_commands` as
        #: ``(kind, time, row)`` tuples.  Off by default -- zero cost on
        #: the hot path.
        self.record_commands = False
        self.last_commands: list = []

    # ------------------------------------------------------------------
    def classify(self, row: int) -> str:
        """Row-buffer outcome if ``row`` were accessed next."""
        if self.open_row is None:
            return "closed"
        return "hit" if self.open_row == row else "conflict"

    def earliest_data_start(self, req: MemRequest, earliest: int) -> int:
        """Earliest data-burst start for ``req``, preparing from ``earliest``.

        Does not mutate state.  ``earliest`` is the first tick preparation
        commands may be considered (normally the request arrival time).
        """
        start, _act, _pre = self._plan(req, earliest)
        return start

    def commit(self, req: MemRequest, earliest: int, floor: int = 0) -> Tuple[int, str]:
        """Schedule ``req``; returns ``(data_start, outcome)``.

        ``floor`` is the earliest the data burst may start for reasons the
        bank cannot see (the channel data bus being busy); all recovery
        fences are computed from the *actual* burst time.  ``outcome`` is
        ``"hit"``, ``"closed"`` or ``"conflict"`` for row-buffer statistics.
        """
        timing = self.timing
        outcome = self.classify(req.row)
        data_start, act_time, pre_time = self._plan(req, earliest)
        data_start = max(data_start, floor)

        if outcome != "hit":
            # A (possibly preceded-by-precharge) ACTIVATE happened.
            self.rank.note_activate(act_time)
            self._act_time = act_time
            self._act_ready = act_time + timing.tRC
            self.open_row = req.row

        col_time = data_start - (timing.tCWL if req.is_write else timing.tCL)
        if self.record_commands:
            self.last_commands = []
            if pre_time is not None:
                self.last_commands.append(("PRE", pre_time, None))
            if outcome != "hit":
                self.last_commands.append(("ACT", act_time, req.row))
            self.last_commands.append(
                ("WR" if req.is_write else "RD", col_time, req.row)
            )
        if req.is_write:
            # Write recovery fences the next precharge after the data burst.
            write_end = data_start + timing.tBURST
            self._pre_ready = max(
                self._pre_ready, write_end + timing.tWR,
                self._act_time + timing.tRAS,
            )
            self.rank.note_write_end(write_end)
        else:
            self._pre_ready = max(
                self._pre_ready, col_time + timing.tRTP,
                self._act_time + timing.tRAS,
            )

        if outcome == "hit":
            self.hits += 1
        elif outcome == "closed":
            self.misses += 1
        else:
            self.conflicts += 1
        return data_start, outcome

    def force_precharge(self, time: int) -> None:
        """Close the row (refresh or page-close policy)."""
        self.open_row = None
        self._act_ready = max(self._act_ready, time)

    def close_after_access(self) -> int:
        """Close-page policy: precharge at the earliest legal tick after
        the access just committed (honoring tRAS/tWR/tRTP recovery).
        Returns the PRECHARGE time and appends it to the command record
        when recording is on."""
        pre_time = self._pre_ready
        self.open_row = None
        self._act_ready = max(self._act_ready, pre_time + self.timing.tRP)
        if self.record_commands:
            self.last_commands.append(("PRE", pre_time, None))
        return pre_time

    # ------------------------------------------------------------------
    def _plan(
        self, req: MemRequest, earliest: int
    ) -> Tuple[int, int, Optional[int]]:
        """Compute ``(data_start, act_time, pre_time)`` without mutating
        state.  ``pre_time`` is ``None`` unless a row-buffer conflict
        forces a PRECHARGE first."""
        timing = self.timing
        cas = timing.tCWL if req.is_write else timing.tCL
        outcome = self.classify(req.row)

        if outcome == "hit":
            # Column command directly; tRCD already satisfied if the row
            # has been open long enough.
            col = max(earliest, self._act_time + timing.tRCD)
            if not req.is_write:
                col = max(col, self.rank.read_ready(earliest))
            return col + cas, self._act_time, None

        if outcome == "conflict":
            pre = max(earliest, self._pre_ready)
            act_lb = pre + timing.tRP
        else:  # closed
            pre = None
            act_lb = max(earliest, self._act_ready)

        act = self.rank.activate_slot(max(act_lb, self._act_ready))
        col = act + timing.tRCD
        if not req.is_write:
            col = max(col, self.rank.read_ready(earliest))
        return col + cas, act, pre


class RankTimers:
    """Per-rank constraints shared by the rank's banks.

    Tracks the tFAW four-activate window, tRRD activate spacing, the
    write-to-read (tWTR) fence, and the periodic refresh schedule.
    """

    def __init__(self, timing: DDR3Timing) -> None:
        self.timing = timing
        #: Ticks of the most recent activates (at most 4 kept).
        self._acts: list = []
        self._last_write_end = -(10**12)
        self._next_refresh = timing.tREFI
        self.refreshes = 0

    # -- activates ------------------------------------------------------
    def activate_slot(self, lower_bound: int) -> int:
        """Earliest ACTIVATE at or after ``lower_bound`` honoring
        tRRD and tFAW.  Does not record the activate."""
        t = lower_bound
        if self._acts:
            t = max(t, self._acts[-1] + self.timing.tRRD)
            if len(self._acts) >= 4:
                t = max(t, self._acts[-4] + self.timing.tFAW)
        return t

    def note_activate(self, time: int) -> None:
        self._acts.append(time)
        if len(self._acts) > 4:
            self._acts.pop(0)

    # -- write-to-read fence ---------------------------------------------
    def note_write_end(self, time: int) -> None:
        if time > self._last_write_end:
            self._last_write_end = time

    def read_ready(self, earliest: int) -> int:
        """Earliest a READ column command may issue (tWTR after writes)."""
        return max(earliest, self._last_write_end + self.timing.tWTR)

    # -- refresh ----------------------------------------------------------
    def refresh_window(self, time: int) -> Optional[Tuple[int, int]]:
        """If a refresh is due at or before ``time``, return its window.

        The caller must invoke :meth:`complete_refresh` to advance the
        schedule after stalling for the window.
        """
        if time >= self._next_refresh:
            return (self._next_refresh, self._next_refresh + self.timing.tRFC)
        return None

    def complete_refresh(self) -> None:
        self.refreshes += 1
        self._next_refresh += self.timing.tREFI
