"""DRAM protocol-compliance checking.

The timing model never materializes individual command slots -- the bank
back-dates PRECHARGE/ACTIVATE preparation analytically (see
:mod:`repro.dram.bank`).  That efficiency is exactly why an independent
referee is valuable: :class:`ProtocolChecker` replays the *implied*
command stream (recorded by ``Channel.start_command_log()``) against the
JEDEC rules as a real DDR3 device would enforce them, with no knowledge
of the planner's arithmetic.  Any scheduling bug that slips an ACTIVATE
inside tRRD/tFAW, a column command before tRCD, or a PRECHARGE inside
tRAS/tWR/tRTP recovery fails loudly here even if aggregate latencies
still look plausible.

Checked rules
-------------
========  ==========================================================
ACT       bank must be precharged (PRE before re-ACT); >= PRE+tRP;
          >= previous same-bank ACT + tRC; rank-wide >= last ACT +
          tRRD and >= 4th-most-recent ACT + tFAW
RD/WR     row must be open and match (ACT before CAS); >= ACT+tRCD;
          RD additionally >= last write-data end + tWTR (rank)
PRE       row must be open; >= ACT+tRAS; >= last read CAS + tRTP;
          >= last write-data end + tWR
REF       treated as closing every bank at the window end
========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dram.timing import DDR3Timing


@dataclass(frozen=True)
class DramCommand:
    """One command on the (implied) command bus."""

    time: int
    #: ``"PRE" | "ACT" | "RD" | "WR" | "REF"``
    kind: str
    bank: int
    #: Row for ACT/RD/WR; ``None`` for PRE; REF carries no row.
    row: Optional[int] = None
    #: REF only: end of the refresh window.
    end: Optional[int] = None


class ProtocolViolation(AssertionError):
    """A command stream broke a JEDEC timing or state rule."""


class _BankState:
    __slots__ = ("open_row", "act_time", "pre_time",
                 "last_read_cas", "last_write_end")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.act_time = -(10 ** 12)
        self.pre_time = -(10 ** 12)
        self.last_read_cas = -(10 ** 12)
        self.last_write_end = -(10 ** 12)


class ProtocolChecker:
    """Replay a command stream and collect (or raise on) violations.

    Commands may be recorded out of timestamp order -- the bank
    back-dates preparation while the data bus serializes bursts -- so
    the checker first sorts by time (stable, so simultaneous commands
    keep their recorded order) to reconstruct the command-bus order a
    device would observe.
    """

    def __init__(self, timing: DDR3Timing, num_banks: int = 8) -> None:
        self.timing = timing
        self.num_banks = num_banks
        self.violations: List[str] = []

    # ------------------------------------------------------------------
    def check(self, commands: Sequence[DramCommand],
              strict: bool = True) -> List[str]:
        """Validate a stream; returns the violation list.

        ``strict=True`` raises :class:`ProtocolViolation` on the first
        rule broken instead of accumulating.
        """
        t = self.timing
        banks: Dict[int, _BankState] = {
            b: _BankState() for b in range(self.num_banks)
        }
        rank_acts: List[int] = []
        rank_write_end = -(10 ** 12)

        def fail(message: str) -> None:
            self.violations.append(message)
            if strict:
                raise ProtocolViolation(message)

        # REF sorts by its window *end*: the model back-dates the refresh
        # start to the tREFI deadline, so commands from the access
        # committed just before the refresh was detected may carry
        # timestamps inside the window.  The bank-closing effect only
        # matters once the window ends.
        def bus_order(c: DramCommand) -> int:
            if c.kind == "REF" and c.end is not None:
                return c.end
            return c.time

        for cmd in sorted(commands, key=bus_order):
            if cmd.kind == "REF":
                closing = cmd.end if cmd.end is not None else cmd.time
                for state in banks.values():
                    state.open_row = None
                    state.pre_time = max(state.pre_time, closing - t.tRP)
                continue
            if cmd.bank not in banks:
                fail(f"@{cmd.time}: command to bank {cmd.bank} "
                     f"outside 0..{self.num_banks - 1}")
                continue
            state = banks[cmd.bank]

            if cmd.kind == "ACT":
                if state.open_row is not None:
                    fail(f"@{cmd.time}: ACT bank {cmd.bank} while row "
                         f"{state.open_row} still open (missing PRE)")
                if cmd.time - state.pre_time < t.tRP:
                    fail(f"@{cmd.time}: ACT bank {cmd.bank} violates tRP "
                         f"(PRE at {state.pre_time})")
                if cmd.time - state.act_time < t.tRC:
                    fail(f"@{cmd.time}: ACT bank {cmd.bank} violates tRC "
                         f"(previous ACT at {state.act_time})")
                if rank_acts and cmd.time - rank_acts[-1] < t.tRRD:
                    fail(f"@{cmd.time}: ACT violates tRRD "
                         f"(last rank ACT at {rank_acts[-1]})")
                if len(rank_acts) >= 4 and \
                        cmd.time - rank_acts[-4] < t.tFAW:
                    fail(f"@{cmd.time}: 5th ACT inside the tFAW window "
                         f"(4 activates back at {rank_acts[-4]})")
                rank_acts.append(cmd.time)
                if len(rank_acts) > 4:
                    rank_acts.pop(0)
                state.open_row = cmd.row
                state.act_time = cmd.time

            elif cmd.kind in ("RD", "WR"):
                if state.open_row is None:
                    fail(f"@{cmd.time}: {cmd.kind} bank {cmd.bank} with "
                         f"no open row (CAS before ACT)")
                elif state.open_row != cmd.row:
                    fail(f"@{cmd.time}: {cmd.kind} bank {cmd.bank} row "
                         f"{cmd.row} but row {state.open_row} is open")
                if cmd.time - state.act_time < t.tRCD:
                    fail(f"@{cmd.time}: {cmd.kind} bank {cmd.bank} "
                         f"violates tRCD (ACT at {state.act_time})")
                if cmd.kind == "RD":
                    if cmd.time - rank_write_end < t.tWTR:
                        fail(f"@{cmd.time}: RD violates tWTR "
                             f"(write data ended at {rank_write_end})")
                    state.last_read_cas = cmd.time
                else:
                    write_end = cmd.time + t.tCWL + t.tBURST
                    state.last_write_end = max(state.last_write_end,
                                               write_end)
                    rank_write_end = max(rank_write_end, write_end)

            elif cmd.kind == "PRE":
                if state.open_row is None:
                    fail(f"@{cmd.time}: PRE bank {cmd.bank} already "
                         f"precharged")
                if cmd.time - state.act_time < t.tRAS:
                    fail(f"@{cmd.time}: PRE bank {cmd.bank} violates tRAS "
                         f"(ACT at {state.act_time})")
                if cmd.time - state.last_read_cas < t.tRTP:
                    fail(f"@{cmd.time}: PRE bank {cmd.bank} violates tRTP "
                         f"(RD CAS at {state.last_read_cas})")
                if cmd.time - state.last_write_end < t.tWR:
                    fail(f"@{cmd.time}: PRE bank {cmd.bank} violates tWR "
                         f"(write data ended at {state.last_write_end})")
                state.open_row = None
                state.pre_time = cmd.time

            else:
                fail(f"@{cmd.time}: unknown command kind {cmd.kind!r}")
        return self.violations

    # ------------------------------------------------------------------
    def summarize(self, commands: Sequence[DramCommand]) -> Dict[str, int]:
        """Command-mix accounting (tests sanity-check coverage with it)."""
        out: Dict[str, int] = {}
        for cmd in commands:
            out[cmd.kind] = out.get(cmd.kind, 0) + 1
        return out
