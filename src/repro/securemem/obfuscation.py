"""Channel replication + type obfuscation for the secure-memory model.

Each S-App access becomes one request per channel: the real one, plus
dummies at random locations on the other channels, all issued together so
an observer sees identical multi-channel activity regardless of where the
data lives (Section II-B2: "the scheme needs to generate dummy requests
to the channels other than the one that the data located").  The access
completes when the *slowest* replica finishes, plus a small fixed crypto/
packetization overhead -- the source of the ~10 % S-App slowdown the
paper quotes from ObfusMem.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.cpu.core import MemoryPort
from repro.dram.address_mapping import ChannelInterleaver
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet


class SecureMemPort(MemoryPort):
    """S-App memory port for the trusted-memory model."""

    def __init__(
        self,
        engine: Engine,
        channels: Dict[Tuple[int, int], Channel],
        interleaver: ChannelInterleaver,
        app_id: int,
        window: int = 16,
        crypto_overhead_ns: float = 12.0,
        seed: int = 0,
        name: str = "securemem",
    ) -> None:
        self.engine = engine
        self.channels = channels
        self.interleaver = interleaver
        self.app_id = app_id
        self.window = window
        self.crypto_ticks = ns(crypto_overhead_ns)
        self.stats = StatSet(name)
        self._rng = random.Random(seed)
        self._outstanding = 0
        self._space_waiters: List[Callable[[], None]] = []
        self._held: List[MemRequest] = []
        # Counters resolved once; issue() runs per S-App LLC miss.
        self._real_requests_add = self.stats.counter("real_requests").add
        self._dummy_requests_add = self.stats.counter("dummy_requests").add
        self._reads_add = self.stats.counter("reads").add
        self._writes_add = self.stats.counter("writes").add

    # ------------------------------------------------------------------
    def can_accept(self, op: OpType) -> bool:
        return self._outstanding < self.window

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self._space_waiters.append(callback)

    def issue(
        self,
        op: OpType,
        line_addr: int,
        app_id: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> None:
        if not self.can_accept(op):
            raise RuntimeError("secure-memory port window full")
        self._outstanding += 1
        real = self.interleaver.map_line(line_addr)
        replicas = len(self.channels)
        state = {"remaining": replicas, "last": 0}

        def replica_done(time: int) -> None:
            state["remaining"] -= 1
            state["last"] = max(state["last"], time)
            if state["remaining"] == 0:
                self._finish(on_complete, op, state["last"])

        for (channel_id, subchannel), channel in self.channels.items():
            if channel_id == real.channel and subchannel == real.subchannel:
                req = MemRequest(
                    op, channel_id, subchannel,
                    real.bank, real.row, real.col,
                    app_id=self.app_id, traffic=TrafficClass.SECURE,
                    on_complete=replica_done,
                )
                self._real_requests_add()
            else:
                req = MemRequest(
                    op, channel_id, subchannel,
                    bank=self._rng.randrange(len(channel.banks)),
                    row=self._rng.randrange(1 << 14),
                    col=0,
                    app_id=self.app_id, traffic=TrafficClass.SECURE,
                    on_complete=replica_done,
                )
                self._dummy_requests_add()
            self._enqueue_or_hold(channel, req)

    # ------------------------------------------------------------------
    def _enqueue_or_hold(self, channel: Channel, req: MemRequest) -> None:
        if channel.can_accept(req.op):
            channel.enqueue(req)
        else:
            channel.notify_on_space(
                lambda: self._enqueue_or_hold(channel, req)
            )

    def _finish(
        self,
        on_complete: Optional[Callable[[int], None]],
        op: OpType,
        last_time: int,
    ) -> None:
        done = last_time + self.crypto_ticks

        def fire() -> None:
            self._outstanding -= 1
            if self._space_waiters:
                waiters, self._space_waiters = self._space_waiters, []
                for callback in waiters:
                    callback()
            if on_complete is not None:
                on_complete(self.engine.now)

        self.engine.at(max(done, self.engine.now), fire)
        if op is OpType.WRITE:
            self._writes_add()
        else:
            self._reads_add()
