"""Secure-memory execution model (ObfusMem / InvisiMem style).

The comparison point of Fig. 2(b)/Fig. 4: memory is inside the TCB, so no
ORAM is needed -- but the channel is not, so every access is encrypted,
read/write types are obfuscated (fixed-format packets), and with multiple
channels a dummy request goes to every channel the real access does not
touch, hiding which channel held the data.
"""

from repro.securemem.obfuscation import SecureMemPort

__all__ = ["SecureMemPort"]
