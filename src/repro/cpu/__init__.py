"""Trace-driven processor front end.

USIMM drives its memory system with a per-core reorder-buffer (ROB) model:
instructions retire in order at the retire width, a load blocks retirement
until its data returns, stores drain through the write queue, and fetch
stalls when the ROB is full.  :class:`~repro.cpu.core.Core` reproduces that
model event-driven, and :class:`~repro.cpu.cache.LastLevelCache` provides
the 4 MB LLC in front of it (traces can be either pre- or post-LLC).
"""

from repro.cpu.core import Core, CoreParams
from repro.cpu.cache import LastLevelCache

__all__ = ["Core", "CoreParams", "LastLevelCache"]
