"""A set-associative last-level cache model.

The MSC traces the paper uses are post-LLC miss streams, so the default
simulations feed cores directly.  The cache exists for the examples and
for experiments that start from raw (pre-cache) traces: it filters a
record stream into the miss/writeback stream a 4 MB LLC (Table II) would
emit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.trace.trace_format import TraceRecord


@dataclass(frozen=True)
class CacheParams:
    """Geometry of the cache (defaults: the paper's 4 MB LLC, 16-way)."""

    capacity_bytes: int = 4 * 1024 * 1024
    line_bytes: int = 64
    ways: int = 16

    @property
    def num_sets(self) -> int:
        sets = self.capacity_bytes // (self.line_bytes * self.ways)
        if sets < 1:
            raise ValueError("cache too small for its associativity")
        return sets

    def __post_init__(self) -> None:
        if self.capacity_bytes % (self.line_bytes * self.ways):
            raise ValueError("capacity must divide evenly into sets")


class LastLevelCache:
    """LRU, write-back, write-allocate set-associative cache.

    Operates on line addresses (not byte addresses).  ``access`` returns
    the list of memory-side transactions the access causes: at most one
    line fill (read) and one dirty writeback (write).
    """

    def __init__(self, params: CacheParams = CacheParams()) -> None:
        self.params = params
        # One OrderedDict per set: line_addr -> dirty flag, LRU order.
        self._sets: List[OrderedDict] = [
            OrderedDict() for _ in range(params.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def _set_index(self, line_addr: int) -> int:
        return line_addr % self.params.num_sets

    def access(self, line_addr: int, is_write: bool) -> List[Tuple[str, int]]:
        """Access one line; returns memory transactions as (kind, line).

        ``kind`` is ``"fill"`` for a miss fill or ``"writeback"`` for a
        dirty eviction.
        """
        cache_set = self._sets[self._set_index(line_addr)]
        transactions: List[Tuple[str, int]] = []

        if line_addr in cache_set:
            self.hits += 1
            cache_set.move_to_end(line_addr)
            if is_write:
                cache_set[line_addr] = True
            return transactions

        self.misses += 1
        transactions.append(("fill", line_addr))
        if len(cache_set) >= self.params.ways:
            victim, dirty = cache_set.popitem(last=False)
            if dirty:
                self.writebacks += 1
                transactions.append(("writeback", victim))
        cache_set[line_addr] = is_write
        return transactions

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    def filter_trace(
        self, records: Iterator[TraceRecord]
    ) -> Iterator[TraceRecord]:
        """Convert a pre-cache record stream into its LLC miss stream.

        Gap instructions of hitting accesses accumulate onto the next
        missing access, preserving the instruction count; writebacks are
        emitted as write records with zero gap.
        """
        carried_gap = 0
        for rec in records:
            transactions = self.access(rec.line_addr, rec.is_write)
            if not transactions:
                carried_gap += rec.instructions
                continue
            first = True
            for kind, line in transactions:
                if kind == "fill":
                    yield TraceRecord(
                        gap=carried_gap + (rec.gap if first else 0),
                        is_write=False,
                        line_addr=line,
                    )
                else:
                    yield TraceRecord(gap=0, is_write=True, line_addr=line)
                first = False
            carried_gap = 0
