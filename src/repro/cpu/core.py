"""Event-driven reorder-buffer core model (USIMM front end).

Semantics reproduced from USIMM's processor model (Table II parameters):

* in-order retirement at ``retire_width`` instructions per cycle;
* a load blocks retirement until its data returns from the memory system,
  so a long-latency miss eventually fills the ROB and stalls fetch;
* stores retire as soon as they are accepted by a write queue, but a full
  write queue back-pressures fetch;
* fetch supplies ``fetch_width`` instructions per cycle while ROB space
  remains.

Instead of ticking every cycle, the model advances analytically between
memory events: non-memory instructions (the MPKI "gap" in each trace
record) are fetched and retired in chunks at the pipeline widths, and the
core sleeps whenever it is blocked on a memory completion or queue space.
Chunked accounting rounds each chunk up to whole cycles; with the paper's
gap sizes (37-240 instructions between misses) the rounding error is well
under 1 % and identical across schemes.

The core talks to the memory system through the small :class:`MemoryPort`
duck-type, which lets the same model drive direct-attached channels, BOB
links, or the ORAM front end.

The wake/retire/fetch methods run once per memory event across every core
in a sweep, so they cache the pipeline widths as plain ints, pre-bind the
stat recorders (no f-string keys per retired op), and use the pending op
itself as its completion callback (no closure per issued load).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from heapq import heappop as _heappop
from typing import Callable, Deque, Iterator, Optional

from repro.dram.commands import OpType
from repro.sim.engine import CPU_CYCLE_TICKS, Engine, _NO_ARG
from repro.sim.stats import StatSet
from repro.trace.trace_format import TraceRecord

_READ = OpType.READ
_WRITE = OpType.WRITE

#: Smallest remaining instruction gap worth crunching (see ``_crunch``):
#: below this the setup cost plus the issue-stop re-run beats the saved
#: dispatches, so the wakes are dispatched normally.  Purely a
#: performance knob -- any value yields the same simulation.
_CRUNCH_MIN_GAP = 32


@dataclass(frozen=True)
class CoreParams:
    """Pipeline parameters (defaults are the paper's Table II)."""

    rob_size: int = 128
    fetch_width: int = 4
    retire_width: int = 4

    def __post_init__(self) -> None:
        if min(self.rob_size, self.fetch_width, self.retire_width) < 1:
            raise ValueError("core parameters must be positive")


class MemoryPort:
    """Interface cores use to reach the memory system.

    Implementations: per-app channel router (direct-attached), the BOB
    main controller, and the ORAM front end.
    """

    def can_accept(self, op: OpType) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def issue(
        self,
        op: OpType,
        line_addr: int,
        app_id: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def notify_on_space(self, callback: Callable[[], None]) -> None:  # pragma: no cover
        raise NotImplementedError


class _PendingOp:
    """A memory instruction occupying the ROB.

    A pending load doubles as its own completion callback: the memory
    system calls ``entry(finish_time)``, sparing the core a closure
    allocation per issued read.
    """

    __slots__ = ("idx", "is_write", "complete", "issued_at", "core")

    def __init__(self, idx: int, is_write: bool, issued_at: int,
                 core: "Core") -> None:
        self.idx = idx
        self.is_write = is_write
        self.issued_at = issued_at
        self.complete: Optional[int] = None
        self.core = core

    def __call__(self, time: int) -> None:
        self.complete = time
        core = self.core
        engine = core.engine
        # Batch-kernel mode (DORAM_DRAM=kernel, lazy periodic, no
        # per-dispatch trace): when the wake this completion would push
        # is the engine's next event anyway -- nothing else queued or
        # kernel-held at ``time`` (completions fire at ``engine.now``) --
        # run it here as one synthesized occurrence instead of paying a
        # push/pop round-trip.  The guard replicates _schedule_wake's
        # dedup (fuse only when it would actually push) and skips fusion
        # while the engine is stopped (the pushed wake would never have
        # dispatched).  Order is unchanged: any queued same-tick event
        # carries an older seq than the wake would get, and peek_time()
        # folds in kernel-held events, so fusion only fires when the
        # wake is strictly next.
        if (
            engine.batch_inline_ok
            and not engine._stopped
            and (core._wake_pending_at is None
                 or core._wake_pending_at > time)
        ):
            nxt = engine.peek_time()
            if nxt is None or nxt > time:
                engine._synthesized += 1
                core._wake()
                return
        core._schedule_wake(time)


class Core:
    """One trace-driven core."""

    __slots__ = (
        "engine", "app_id", "params", "port", "on_finish", "name", "stats",
        "_trace", "_gap_remaining", "_mem_op", "_trace_exhausted",
        "_instr_fetched", "_fetch_time", "_retired_idx", "_retire_time",
        "_pending", "finished", "finish_time", "_wake_pending_at",
        "_waiting_for_space", "_rob_size", "_fetch_width", "_retire_width",
        "_loads_retired", "_stores_retired", "_loads_issued",
        "_stores_issued", "_load_to_use", "_crunch_ok", "_equeue",
    )

    def __init__(
        self,
        engine: Engine,
        app_id: int,
        trace: Iterator[TraceRecord],
        port: MemoryPort,
        params: CoreParams = CoreParams(),
        on_finish: Optional[Callable[[int], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.app_id = app_id
        self.params = params
        self.port = port
        self.on_finish = on_finish
        self.name = name or f"core{app_id}"
        self.stats = StatSet(self.name)

        self._trace = trace
        self._gap_remaining = 0
        self._mem_op: Optional[TraceRecord] = None
        self._trace_exhausted = False

        self._instr_fetched = 0
        self._fetch_time = 0
        self._retired_idx = 0
        self._retire_time = 0
        self._pending: Deque[_PendingOp] = deque()

        self.finished = False
        self.finish_time: Optional[int] = None

        self._wake_pending_at: Optional[int] = None
        self._waiting_for_space = False

        # Hot-path caches (see module docstring).
        self._rob_size = params.rob_size
        self._fetch_width = params.fetch_width
        self._retire_width = params.retire_width
        self._loads_retired = self.stats.counter("loads_retired")
        self._stores_retired = self.stats.counter("stores_retired")
        self._loads_issued = self.stats.counter("loads_issued")
        self._stores_issued = self.stats.counter("stores_issued")
        self._load_to_use = self.stats.latency("load_to_use")
        # Gap crunching (see _crunch) is only sound when synthesized
        # occurrences are allowed and no per-dispatch engine trace would
        # miss the skipped wakes.
        self._crunch_ok = (
            engine.lazy_periodic and not engine._tracer.enabled
        )
        # Direct heap reference for the wake-chain guard (None under the
        # wheel scheduler, which falls back to peek_time()).  Probing
        # ``heap[0]`` raw treats a cancelled-but-unpopped head as live --
        # a conservative "don't chain", which is always safe.
        self._equeue = engine._queue if engine._wheel is None else None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first wake at time 0."""
        self._schedule_wake(self.engine.now)

    @property
    def rob_occupancy(self) -> int:
        return self._instr_fetched - self._retired_idx

    # ------------------------------------------------------------------
    # Wake machinery
    # ------------------------------------------------------------------
    def _schedule_wake(self, time: int) -> None:
        engine = self.engine
        now = engine.now
        if time < now:
            time = now
        pending = self._wake_pending_at
        if pending is not None and pending <= time:
            return
        self._wake_pending_at = time
        # Inline of ``engine.at(time, self._wake)``: the clamp above
        # guarantees ``time >= now``, so the past-time guard is redundant
        # and this is the single hottest scheduling site in a sweep.
        seq = engine._seq
        engine._seq = seq + 1
        engine._push((time, seq, self._wake, _NO_ARG))

    def _wake(self) -> None:
        """Run wake passes, chaining inline while this core is next.

        Each :meth:`_wake_pass` decides the core's next wake time.  In
        batch-kernel mode, when that wake is strictly earlier than the
        engine's next queued event (and inside any bounded-run window),
        the pass returns it instead of pushing and the loop executes it
        here as one synthesized occurrence -- the dominant case in
        memory-bound phases, where paced retirement wakes land between
        DRAM events.  ``_crunch`` still handles the quiescent-gap case
        (it skips the full pass per iteration); this loop is the
        cheap-guard complement that needs no quiescence precondition
        because each chained wake re-checks the queue head.
        """
        engine = self.engine
        wake_pass = self._wake_pass
        while True:
            chained = wake_pass()
            if chained is None:
                return
            engine._synthesized += 1
            engine.now = chained

    def _wake_pass(self) -> Optional[int]:
        """Advance retirement, fetch/issue, then re-arm the next wake.

        One fused pass: half of every whole-system run's dispatches are
        core wakes, so the retirement and fetch loops share one set of
        locals (written back on every exit) instead of paying separate
        method calls and attribute round-trips.  Nothing reached from
        ``port.issue``/``notify_on_space`` mutates these fields
        synchronously -- completions and space callbacks only schedule
        wakes -- and the wake this pass decides on is pushed exactly
        where the unfused code pushed it (before any finish callback),
        preserving engine sequence order.

        Returns the next wake time instead of pushing it when the
        caller may run it inline (see :meth:`_wake`), else ``None``.
        """
        self._wake_pending_at = None
        if self.finished:
            return None
        engine = self.engine
        now = engine.now
        pending = self._pending
        retire_width = self._retire_width
        retired_idx = self._retired_idx
        retire_time = self._retire_time
        instr_fetched = self._instr_fetched

        # ---- retirement: retire everything that can retire by now ----
        while True:
            frontier = pending[0].idx if pending else instr_fetched
            gap = frontier - retired_idx
            if gap > 0:
                full = retire_time + -(-gap // retire_width) * CPU_CYCLE_TICKS
                if full <= now:
                    retired_idx = frontier
                    retire_time = full
                else:
                    avail = (now - retire_time) // CPU_CYCLE_TICKS
                    n = avail * retire_width
                    if n > gap:
                        n = gap
                    if n > 0:
                        retired_idx += n
                        retire_time += -(-n // retire_width) * CPU_CYCLE_TICKS
                    break  # pace-limited; nothing older can unblock us
            if not pending:
                break
            head = pending[0]
            if head.idx != retired_idx:
                break  # younger than the pace frontier; loop handled above
            complete = head.complete
            if complete is None or complete > now:
                break  # oldest op still waiting on memory
            if complete > retire_time:
                retire_time = complete
            retired_idx += 1
            pending.popleft()
            if head.is_write:
                self._stores_retired.value += 1
            else:
                self._loads_retired.value += 1
                # Inline of LatencyStat.record (completion time is
                # never before issue, so the negative guard is moot).
                lat = complete - head.issued_at
                stat = self._load_to_use
                stat.count += 1
                stat.total += lat
                bound = stat.min
                if bound is None or lat < bound:
                    stat.min = lat
                bound = stat.max
                if bound is None or lat > bound:
                    stat.max = lat
        self._retired_idx = retired_idx
        self._retire_time = retire_time

        # ---- fetch and issue ----
        rob_size = self._rob_size
        fetch_width = self._fetch_width
        port = self.port
        gap_remaining = self._gap_remaining
        fetch_time = self._fetch_time
        mem_op = self._mem_op
        wake_at = None
        try:
            while True:
                if mem_op is None and gap_remaining == 0:
                    # Inline of the old _pull_next_record.
                    if self._trace_exhausted:
                        break
                    try:
                        mem_op = next(self._trace)
                    except StopIteration:
                        self._trace_exhausted = True
                        break
                    gap_remaining = mem_op.gap
                free = rob_size - (instr_fetched - retired_idx)
                if free <= 0:
                    if pending and pending[0].complete is None:
                        break  # the read completion callback will wake us
                    # Pace-limited: retirement frees slots next cycle.  The
                    # retirement pass guarantees retire_time + 1 cycle > now,
                    # so this wake always lands strictly in the future.
                    wake_at = retire_time + CPU_CYCLE_TICKS
                    break
                if fetch_time > now:
                    wake_at = fetch_time
                    break

                # fetch_time <= now from here on, so issue/fetch stamps
                # collapse to ``now``.
                if gap_remaining > 0:
                    n = gap_remaining if gap_remaining < free else free
                    instr_fetched += n
                    gap_remaining -= n
                    fetch_time = now + -(-n // fetch_width) * CPU_CYCLE_TICKS
                    continue

                record = mem_op
                if record is None:
                    continue
                is_write = record.is_write
                op = _WRITE if is_write else _READ
                if not port.can_accept(op):
                    if not self._waiting_for_space:
                        self._waiting_for_space = True
                        port.notify_on_space(self._space_available)
                    break

                entry = _PendingOp(instr_fetched, is_write, now, self)
                pending.append(entry)
                instr_fetched += 1
                fetch_time = now + CPU_CYCLE_TICKS
                mem_op = None

                if is_write:
                    # Stores retire once accepted by the write queue.
                    entry.complete = now
                    port.issue(op, record.line_addr, self.app_id, None)
                    self._stores_issued.value += 1
                else:
                    # The entry is its own completion callback.
                    port.issue(op, record.line_addr, self.app_id, entry)
                    self._loads_issued.value += 1
        finally:
            self._instr_fetched = instr_fetched
            self._gap_remaining = gap_remaining
            self._fetch_time = fetch_time
            self._mem_op = mem_op

        # ---- re-arm: push the wake the fetch loop decided on ----
        if wake_at is not None:
            # A fetch-loop wake implies undrained fetch state, so the
            # finish check below cannot fire; pushing here keeps the
            # engine seq order of the unfused code.
            if wake_at < now:
                wake_at = now
            elif (
                wake_at > now
                and gap_remaining >= _CRUNCH_MIN_GAP
                and not pending
                and self._crunch_ok
                and not self._waiting_for_space
            ):
                # Quiescent gap: no in-flight op and no space callback
                # means nothing external can wake or observe this core,
                # so successive wakes are a closed function of core
                # state -- crunch them here instead of dispatching each.
                # The gap floor keeps the crunch out of memory-bound
                # phases, where its setup cost plus the re-run of the
                # issue-stopped iteration exceeds the few dispatches it
                # would save (skipping is always census-safe: the wakes
                # are simply dispatched like eager mode would).
                wake_at = self._crunch(wake_at)
            if (
                wake_at > now
                and engine.batch_inline_ok
                and not engine._stopped
            ):
                # Wake chaining (batch-kernel mode): if this wake is
                # strictly next engine-wide, hand it to _wake's loop to
                # run inline.  Strictly-after ``now`` so a no-progress
                # same-tick pass can never spin; strict queue-head
                # comparison because a same-tick queued event carries an
                # older seq and must dispatch first.
                until = engine._run_until
                if until is None or wake_at <= until:
                    q = self._equeue
                    if q is not None:
                        # Drain cancel tombstones like the dispatcher
                        # would: a dead head must not suppress the
                        # chain, or the raw dispatch count becomes
                        # sensitive to unrelated cancellations.
                        cancelled = engine._cancelled_seqs
                        while q and cancelled and q[0][1] in cancelled:
                            cancelled.remove(_heappop(q)[1])
                        if not q or q[0][0] > wake_at:
                            return wake_at
                    else:
                        nxt = engine.peek_time()
                        if nxt is None or nxt > wake_at:
                            return wake_at
            self._wake_pending_at = wake_at
            seq = engine._seq
            engine._seq = seq + 1
            engine._push((wake_at, seq, self._wake, _NO_ARG))
            return None
        if (
            self._trace_exhausted
            and mem_op is None
            and gap_remaining == 0
            and not pending
        ):
            self._check_finished()
        if self.finished:
            return None
        # Nothing else will wake us if the only remaining work is paced
        # retirement of instructions behind an already-completed head op
        # (e.g. a store, or a load whose data arrived this tick).
        if pending:
            head = pending[0]
            complete = head.complete
            if complete is not None:
                gap = head.idx - retired_idx
                pace_done = retire_time + (
                    -(-gap // retire_width) * CPU_CYCLE_TICKS
                )
                target = pace_done if pace_done > complete else complete
                if target < now:
                    target = now
                if (
                    target > now
                    and engine.batch_inline_ok
                    and not engine._stopped
                ):
                    until = engine._run_until
                    if until is None or target <= until:
                        q = self._equeue
                        if q is not None:
                            cancelled = engine._cancelled_seqs
                            while q and cancelled and q[0][1] in cancelled:
                                cancelled.remove(_heappop(q)[1])
                            if not q or q[0][0] > target:
                                return target
                        else:
                            nxt = engine.peek_time()
                            if nxt is None or nxt > target:
                                return target
                self._wake_pending_at = target
                seq = engine._seq
                engine._seq = seq + 1
                engine._push((target, seq, self._wake, _NO_ARG))
        return None

    # ------------------------------------------------------------------
    # Gap crunching (lazy periodic mode)
    # ------------------------------------------------------------------
    def _crunch(self, sim_now: int) -> int:
        """Fast-forward successive wakes across a quiescent stretch.

        Preconditions (checked by the caller): the pending deque is
        empty, no space callback is registered, and ``sim_now`` (the next
        wake) is strictly in the future.  Under those, the only events
        that can exist before the next *foreign* engine event are this
        core's own wakes, and each wake's effect is pure arithmetic on
        the fetch/retire state -- so iterations are simulated locally
        (one synthesized occurrence each) instead of dispatched.

        Stopping rules keep the observable timeline bit-identical to the
        eager census:

        * An iteration that would interact with the memory port (issue a
          request) or finish the trace is *not* simulated; the single
          real wake this method returns re-runs it at the same tick
          (retirement at an already-processed tick is idempotent), so
          issue/arrival stamps, port state reads, and finish bookkeeping
          happen exactly where eager dispatch put them.
        * Crunching never crosses the earliest foreign queued event:
          past it, foreign same-tick FIFO interleavings could differ.
          The wake pushed for the first not-simulated iteration then
          occupies the same seq position eager's push would (after all
          currently queued entries, before anything a later dispatch
          pushes), so same-tick ordering is preserved too.

        Inside a long gap the iteration pattern reaches a steady state
        (retire ``w``, fetch ``w``, advance one cycle); once detected it
        is applied in closed form, making a multi-thousand-instruction
        gap O(1) instead of O(gap / width).
        """
        engine = self.engine
        limit = engine.peek_time()
        if limit is not None and sim_now >= limit:
            return sim_now
        retired_idx = self._retired_idx
        retire_time = self._retire_time
        instr_fetched = self._instr_fetched
        fetch_time = self._fetch_time
        gap_remaining = self._gap_remaining
        mem_op = self._mem_op
        trace = self._trace
        rob_size = self._rob_size
        fetch_width = self._fetch_width
        retire_width = self._retire_width
        cyc = CPU_CYCLE_TICKS
        steady_ok = fetch_width == retire_width and rob_size > fetch_width
        synthesized = 0
        try:
            while True:
                # -- retirement at sim_now (pending empty -> frontier is
                # the fetch head); mirrors the _wake retirement pass.
                gap = instr_fetched - retired_idx
                if gap > 0:
                    full = retire_time + -(-gap // retire_width) * cyc
                    if full <= sim_now:
                        retired_idx = instr_fetched
                        retire_time = full
                    else:
                        avail = (sim_now - retire_time) // cyc
                        n = avail * retire_width
                        if n > gap:
                            n = gap
                        if n > 0:
                            retired_idx += n
                            retire_time += -(-n // retire_width) * cyc
                # -- fetch; mirrors the _wake fetch loop up to the first
                # port interaction.
                next_wake = None
                while True:
                    if mem_op is None and gap_remaining == 0:
                        if self._trace_exhausted:
                            break
                        try:
                            mem_op = next(trace)
                        except StopIteration:
                            self._trace_exhausted = True
                            break
                        gap_remaining = mem_op.gap
                    free = rob_size - (instr_fetched - retired_idx)
                    if free <= 0:
                        next_wake = retire_time + cyc
                        break
                    if fetch_time > sim_now:
                        next_wake = fetch_time
                        break
                    if gap_remaining > 0:
                        n = gap_remaining if gap_remaining < free else free
                        instr_fetched += n
                        gap_remaining -= n
                        fetch_time = sim_now + -(-n // fetch_width) * cyc
                        continue
                    # A memory op would issue here: stop un-simulated.
                    return sim_now
                if next_wake is None:
                    # Trace drained: the real wake finishes at sim_now.
                    return sim_now
                synthesized += 1
                if limit is not None and next_wake >= limit:
                    return next_wake
                sim_now = next_wake
                if (
                    steady_ok
                    and gap_remaining > 3 * fetch_width
                    and instr_fetched - retired_idx == rob_size
                    and sim_now - retire_time == cyc
                    and fetch_time == sim_now
                ):
                    # Steady state: each iteration retires and fetches
                    # exactly one width's worth and advances one cycle.
                    m = gap_remaining // fetch_width - 2
                    if limit is not None:
                        by_time = (limit - 1 - sim_now) // cyc
                        if by_time < m:
                            m = by_time
                    if m > 0:
                        dn = m * fetch_width
                        dt = m * cyc
                        retired_idx += dn
                        instr_fetched += dn
                        gap_remaining -= dn
                        retire_time += dt
                        fetch_time += dt
                        sim_now += dt
                        synthesized += m
        finally:
            self._retired_idx = retired_idx
            self._retire_time = retire_time
            self._instr_fetched = instr_fetched
            self._fetch_time = fetch_time
            self._gap_remaining = gap_remaining
            self._mem_op = mem_op
            engine._synthesized += synthesized

    # ------------------------------------------------------------------
    # Retirement accounting
    # ------------------------------------------------------------------
    def _cycles_ticks(self, n_instr: int, width: int) -> int:
        """Ticks to move ``n_instr`` instructions at ``width`` per cycle."""
        cycles = -(-n_instr // width)  # ceil division
        return cycles * CPU_CYCLE_TICKS

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def _read_complete(self, entry: _PendingOp, time: int) -> None:
        entry.complete = time
        self._schedule_wake(time)

    def _space_available(self) -> None:
        self._waiting_for_space = False
        self._schedule_wake(self.engine.now)

    # ------------------------------------------------------------------
    def _check_finished(self) -> None:
        if self.finished:
            return
        drained = (
            self._trace_exhausted
            and self._mem_op is None
            and self._gap_remaining == 0
            and not self._pending
        )
        if not drained:
            return
        # Let the last paced instructions retire.
        if self._retired_idx < self._instr_fetched:
            gap = self._instr_fetched - self._retired_idx
            self._retire_time += self._cycles_ticks(gap, self._retire_width)
            self._retired_idx = self._instr_fetched
        self.finished = True
        self.finish_time = max(self._retire_time, self.engine.now)
        self.stats.counter("instructions").add(self._instr_fetched)
        if self.on_finish is not None:
            self.on_finish(self.finish_time)

    # ------------------------------------------------------------------
    def ipc(self) -> float:
        """Retired instructions per CPU cycle (needs a finished core)."""
        if not self.finish_time:
            return 0.0
        cycles = self.finish_time / CPU_CYCLE_TICKS
        return self._instr_fetched / cycles if cycles else 0.0
