"""Event-driven reorder-buffer core model (USIMM front end).

Semantics reproduced from USIMM's processor model (Table II parameters):

* in-order retirement at ``retire_width`` instructions per cycle;
* a load blocks retirement until its data returns from the memory system,
  so a long-latency miss eventually fills the ROB and stalls fetch;
* stores retire as soon as they are accepted by a write queue, but a full
  write queue back-pressures fetch;
* fetch supplies ``fetch_width`` instructions per cycle while ROB space
  remains.

Instead of ticking every cycle, the model advances analytically between
memory events: non-memory instructions (the MPKI "gap" in each trace
record) are fetched and retired in chunks at the pipeline widths, and the
core sleeps whenever it is blocked on a memory completion or queue space.
Chunked accounting rounds each chunk up to whole cycles; with the paper's
gap sizes (37-240 instructions between misses) the rounding error is well
under 1 % and identical across schemes.

The core talks to the memory system through the small :class:`MemoryPort`
duck-type, which lets the same model drive direct-attached channels, BOB
links, or the ORAM front end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Iterator, Optional

from repro.dram.commands import OpType
from repro.sim.engine import CPU_CYCLE_TICKS, Engine
from repro.sim.stats import StatSet
from repro.trace.trace_format import TraceRecord


@dataclass(frozen=True)
class CoreParams:
    """Pipeline parameters (defaults are the paper's Table II)."""

    rob_size: int = 128
    fetch_width: int = 4
    retire_width: int = 4

    def __post_init__(self) -> None:
        if min(self.rob_size, self.fetch_width, self.retire_width) < 1:
            raise ValueError("core parameters must be positive")


class MemoryPort:
    """Interface cores use to reach the memory system.

    Implementations: per-app channel router (direct-attached), the BOB
    main controller, and the ORAM front end.
    """

    def can_accept(self, op: OpType) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def issue(
        self,
        op: OpType,
        line_addr: int,
        app_id: int,
        on_complete: Optional[Callable[[int], None]],
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def notify_on_space(self, callback: Callable[[], None]) -> None:  # pragma: no cover
        raise NotImplementedError


class _PendingOp:
    """A memory instruction occupying the ROB."""

    __slots__ = ("idx", "is_write", "complete", "issued_at")

    def __init__(self, idx: int, is_write: bool, issued_at: int) -> None:
        self.idx = idx
        self.is_write = is_write
        self.issued_at = issued_at
        self.complete: Optional[int] = None


class Core:
    """One trace-driven core."""

    def __init__(
        self,
        engine: Engine,
        app_id: int,
        trace: Iterator[TraceRecord],
        port: MemoryPort,
        params: CoreParams = CoreParams(),
        on_finish: Optional[Callable[[int], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.engine = engine
        self.app_id = app_id
        self.params = params
        self.port = port
        self.on_finish = on_finish
        self.name = name or f"core{app_id}"
        self.stats = StatSet(self.name)

        self._trace = trace
        self._gap_remaining = 0
        self._mem_op: Optional[TraceRecord] = None
        self._trace_exhausted = False

        self._instr_fetched = 0
        self._fetch_time = 0
        self._retired_idx = 0
        self._retire_time = 0
        self._pending: Deque[_PendingOp] = deque()

        self.finished = False
        self.finish_time: Optional[int] = None

        self._wake_pending_at: Optional[int] = None
        self._waiting_for_space = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first wake at time 0."""
        self._schedule_wake(self.engine.now)

    @property
    def rob_occupancy(self) -> int:
        return self._instr_fetched - self._retired_idx

    # ------------------------------------------------------------------
    # Wake machinery
    # ------------------------------------------------------------------
    def _schedule_wake(self, time: int) -> None:
        time = max(time, self.engine.now)
        if self._wake_pending_at is not None and self._wake_pending_at <= time:
            return
        self._wake_pending_at = time
        self.engine.at(time, self._wake)

    def _wake(self) -> None:
        self._wake_pending_at = None
        if self.finished:
            return
        self._advance_retirement(self.engine.now)
        self._fetch_and_issue(self.engine.now)
        self._check_finished()
        if self.finished or self._wake_pending_at is not None:
            return
        # Nothing else will wake us if the only remaining work is paced
        # retirement of instructions behind an already-completed head op
        # (e.g. a store, or a load whose data arrived this tick).
        if self._pending and self._pending[0].complete is not None:
            head = self._pending[0]
            gap = head.idx - self._retired_idx
            pace_done = self._retire_time + self._cycles_ticks(
                gap, self.params.retire_width
            )
            self._schedule_wake(max(pace_done, head.complete))

    # ------------------------------------------------------------------
    # Retirement
    # ------------------------------------------------------------------
    def _cycles_ticks(self, n_instr: int, width: int) -> int:
        """Ticks to move ``n_instr`` instructions at ``width`` per cycle."""
        cycles = -(-n_instr // width)  # ceil division
        return cycles * CPU_CYCLE_TICKS

    def _advance_retirement(self, now: int) -> None:
        """Retire everything that can retire by ``now``."""
        params = self.params
        while True:
            frontier = self._pending[0].idx if self._pending else self._instr_fetched
            gap = frontier - self._retired_idx
            if gap > 0:
                full = self._retire_time + self._cycles_ticks(gap, params.retire_width)
                if full <= now:
                    self._retired_idx = frontier
                    self._retire_time = full
                else:
                    avail = (now - self._retire_time) // CPU_CYCLE_TICKS
                    n = min(gap, avail * params.retire_width)
                    if n > 0:
                        self._retired_idx += n
                        self._retire_time += self._cycles_ticks(
                            n, params.retire_width
                        )
                    return  # pace-limited; nothing older can unblock us
            if not self._pending:
                return
            head = self._pending[0]
            if head.idx != self._retired_idx:
                return  # younger than the pace frontier; loop handled above
            if head.complete is None or head.complete > now:
                return  # oldest op still waiting on memory
            self._retire_time = max(self._retire_time, head.complete)
            self._retired_idx += 1
            self._pending.popleft()
            kind = "stores" if head.is_write else "loads"
            self.stats.counter(f"{kind}_retired").add()
            if not head.is_write:
                self.stats.latency("load_to_use").record(
                    head.complete - head.issued_at
                )

    # ------------------------------------------------------------------
    # Fetch and issue
    # ------------------------------------------------------------------
    def _fetch_and_issue(self, now: int) -> None:
        params = self.params
        while True:
            if self._mem_op is None and self._gap_remaining == 0:
                if not self._pull_next_record():
                    return
            free = params.rob_size - self.rob_occupancy
            if free <= 0:
                if self._pending and self._pending[0].complete is None:
                    return  # the read completion callback will wake us
                # Pace-limited: retirement frees slots next cycle.  The
                # retirement pass guarantees retire_time + 1 cycle > now,
                # so this wake always lands strictly in the future.
                self._schedule_wake(self._retire_time + CPU_CYCLE_TICKS)
                return
            if self._fetch_time > now:
                self._schedule_wake(self._fetch_time)
                return

            if self._gap_remaining > 0:
                n = min(self._gap_remaining, free)
                self._instr_fetched += n
                self._gap_remaining -= n
                self._fetch_time = max(self._fetch_time, now) + \
                    self._cycles_ticks(n, params.fetch_width)
                continue

            record = self._mem_op
            if record is None:
                continue
            op = OpType.WRITE if record.is_write else OpType.READ
            if not self.port.can_accept(op):
                if not self._waiting_for_space:
                    self._waiting_for_space = True
                    self.port.notify_on_space(self._space_available)
                return

            entry = _PendingOp(self._instr_fetched, record.is_write,
                               issued_at=max(self._fetch_time, now))
            self._pending.append(entry)
            self._instr_fetched += 1
            self._fetch_time = max(self._fetch_time, now) + CPU_CYCLE_TICKS
            self._mem_op = None

            if record.is_write:
                # Stores retire once accepted by the write queue.
                entry.complete = entry.issued_at
                self.port.issue(op, record.line_addr, self.app_id, None)
                self.stats.counter("stores_issued").add()
            else:
                self.port.issue(
                    op, record.line_addr, self.app_id,
                    lambda t, e=entry: self._read_complete(e, t),
                )
                self.stats.counter("loads_issued").add()

    def _pull_next_record(self) -> bool:
        """Load the next trace record; False when the trace is drained."""
        if self._trace_exhausted:
            return False
        try:
            record = next(self._trace)
        except StopIteration:
            self._trace_exhausted = True
            return False
        self._gap_remaining = record.gap
        self._mem_op = record
        return True

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------
    def _read_complete(self, entry: _PendingOp, time: int) -> None:
        entry.complete = time
        self._schedule_wake(time)

    def _space_available(self) -> None:
        self._waiting_for_space = False
        self._schedule_wake(self.engine.now)

    # ------------------------------------------------------------------
    def _check_finished(self) -> None:
        if self.finished:
            return
        drained = (
            self._trace_exhausted
            and self._mem_op is None
            and self._gap_remaining == 0
            and not self._pending
        )
        if not drained:
            return
        # Let the last paced instructions retire.
        if self._retired_idx < self._instr_fetched:
            gap = self._instr_fetched - self._retired_idx
            self._retire_time += self._cycles_ticks(gap, self.params.retire_width)
            self._retired_idx = self._instr_fetched
        self.finished = True
        self.finish_time = max(self._retire_time, self.engine.now)
        self.stats.counter("instructions").add(self._instr_fetched)
        if self.on_finish is not None:
            self.on_finish(self.finish_time)

    # ------------------------------------------------------------------
    def ipc(self) -> float:
        """Retired instructions per CPU cycle (needs a finished core)."""
        if not self.finish_time:
            return 0.0
        cycles = self.finish_time / CPU_CYCLE_TICKS
        return self._instr_fetched / cycles if cycles else 0.0
