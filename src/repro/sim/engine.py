"""Deterministic discrete-event engine.

The engine keeps a priority queue of ``(time, sequence, callback, arg)``
entries.  Events scheduled for the same tick fire in scheduling order
(FIFO), which makes whole-system runs bit-for-bit reproducible regardless
of dict ordering or hash seeds.

Scheduling forms
----------------
:meth:`Engine.at` / :meth:`Engine.after` schedule a no-argument callback;
:meth:`Engine.call_at` / :meth:`Engine.call_after` schedule ``callback(arg)``
so hot callers (DRAM completion, link delivery) don't have to allocate a
closure per request just to carry one value.  Every scheduling call
returns a handle accepted by :meth:`Engine.cancel`.

Time units
----------
All times are integer *ticks*; :data:`TICKS_PER_NS` ticks equal one
nanosecond.  Helper converters :func:`ns`, :func:`cpu_cycles` and
:func:`mem_cycles` translate the units the D-ORAM paper speaks in (CPU
cycles at 3.2 GHz, DDR3-1600 memory-bus cycles, nanoseconds of link latency)
into ticks.
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

#: Number of engine ticks per nanosecond.  16 makes both the CPU clock
#: (3.2 GHz -> 0.3125 ns -> 5 ticks) and the DDR3-1600 bus clock
#: (800 MHz -> 1.25 ns -> 20 ticks) integral.
TICKS_PER_NS = 16

#: Ticks per CPU cycle at the paper's 3.2 GHz core clock (Table II).
CPU_CYCLE_TICKS = 5

#: Ticks per DDR3-1600 memory-bus cycle (800 MHz).
MEM_CYCLE_TICKS = 20


def ns(value: float) -> int:
    """Convert nanoseconds to integer ticks (rounding to nearest tick)."""
    return int(round(value * TICKS_PER_NS))


def cpu_cycles(value: float) -> int:
    """Convert 3.2 GHz CPU cycles to ticks."""
    return int(round(value * CPU_CYCLE_TICKS))


def mem_cycles(value: float) -> int:
    """Convert DDR3-1600 memory-bus cycles to ticks."""
    return int(round(value * MEM_CYCLE_TICKS))


class _NullDispatchTracer:
    """Disabled-tracing sentinel.

    The engine is the substrate every model imports, so it cannot depend
    on :mod:`repro.obs`; this minimal stand-in mirrors the
    ``tracer.enabled`` guard protocol of ``repro.obs.tracer.NULL_TRACER``
    and keeps the disabled hot path to one attribute load per dispatch.
    """

    enabled = False


_NULL_DISPATCH_TRACER = _NullDispatchTracer()

#: Sentinel ``arg`` marking a no-argument callback (``at``/``after`` form).
_NO_ARG = object()

#: Dispatch budget stand-in for "no ``max_events`` bound".
_NO_LIMIT = 1 << 62

#: A scheduled-event handle: the immutable ``(time, seq, callback, arg)``
#: heap entry.  ``seq`` is unique per engine, so heap comparison never
#: reaches the callback, and cancellation tombstones the entry by seq.
EventHandle = Tuple[int, int, Callable, object]


def _callback_label(callback: Callable[..., None]) -> str:
    """Deterministic short label for a scheduled callback (no ids/reprs)."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        func = getattr(callback, "func", None)  # functools.partial
        name = getattr(func, "__qualname__", None) or type(callback).__name__
    return name


class Engine:
    """A minimal, deterministic discrete-event scheduler.

    Components schedule callbacks with :meth:`at` (absolute time) or
    :meth:`after` (relative delay) -- or the allocation-free
    :meth:`call_at` / :meth:`call_after` ``(callback, arg)`` forms -- and
    the engine dispatches them in ``(time, scheduling order)`` order.  A
    callback may schedule further events, including at the current time.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.after(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(self, tracer=None, scheduler: Optional[str] = None,
                 periodic: Optional[str] = None) -> None:
        """``tracer`` (a :class:`repro.obs.tracer.Tracer`) enables
        per-dispatch events under the ``engine`` category; dispatch
        tracing is opt-in because it emits one event per callback.

        ``scheduler`` selects the pending-event structure: ``"heap"``
        (default) or ``"wheel"`` (the bucketed calendar queue in
        :mod:`repro.sim.wheel`); ``None`` reads ``DORAM_SCHED``.  Both
        dispatch in identical ``(time, seq)`` order -- the differential
        reference suite pins this.

        ``periodic`` selects how fixed-cadence model bookkeeping (rank
        refresh, the secure engine's emitter, core gap crunching) is
        materialized: ``"lazy"`` (default) lets models fast-forward
        quiescent stretches in closed form, synthesizing the skipped
        occurrences into the event census; ``"eager"`` forces the
        one-event-per-occurrence behavior (the census-invariance
        differential oracle).  ``None`` reads ``DORAM_PERIODIC``.
        """
        if scheduler is None:
            scheduler = os.environ.get("DORAM_SCHED", "heap")
        if scheduler not in ("heap", "wheel"):
            raise ValueError(f"unknown scheduler backend {scheduler!r}")
        if periodic is None:
            periodic = os.environ.get("DORAM_PERIODIC", "lazy")
        if periodic not in ("lazy", "eager"):
            raise ValueError(f"unknown periodic mode {periodic!r}")
        dram = os.environ.get("DORAM_DRAM", "legacy")
        if dram not in ("legacy", "kernel"):
            raise ValueError(f"unknown DRAM backend {dram!r}")
        link = os.environ.get("DORAM_LINK", "legacy")
        if link not in ("legacy", "kernel"):
            raise ValueError(f"unknown link backend {link!r}")
        self.now: int = 0
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_dispatched = 0
        #: Occurrences of periodic model work that lazy fast-forwarding
        #: reconstructed without a dispatch.  Added into
        #: :attr:`events_dispatched` so the logical census (and every
        #: serialized SimResult) is identical across periodic modes.
        self._synthesized = 0
        #: True when models may fast-forward periodic work (see above).
        self.lazy_periodic = periodic == "lazy"
        self.scheduler = scheduler
        #: DRAM channel implementation (``DORAM_DRAM``): ``"legacy"`` is
        #: the object-per-bank oracle, ``"kernel"`` the struct-of-arrays
        #: batch kernel (:mod:`repro.dram.kernel`).  The system builder
        #: reads this to pick the channel class.
        self.dram_backend = dram
        #: Secure-link pipeline implementation (``DORAM_LINK``):
        #: ``"legacy"`` is the per-packet SerialLink/SecureDelegator
        #: oracle, ``"kernel"`` the macro-stepping pipeline kernel
        #: (:mod:`repro.core.link_kernel`).  The system builder reads
        #: this to pick the frontend/delegator classes; fault-armed runs
        #: always fall back to the legacy classes (per-packet stepping).
        self.link_backend = link
        #: The active ``run(until=...)`` bound (``None`` outside a
        #: bounded run).  Batch kernels consult it so inline chains never
        #: execute events the bounded dispatch loop would have left
        #: queued.
        self._run_until: Optional[int] = None
        #: Seqs of cancelled-but-not-yet-popped entries.  The dispatch
        #: loop guards on the set's truthiness, so the no-cancellation
        #: hot path pays a single local check per event.
        self._cancelled_seqs = set()
        self._stopped = False
        self._tracer = (
            tracer.category("engine") if tracer is not None
            else _NULL_DISPATCH_TRACER
        )
        #: True when same-tick completion work may run inline (booked as
        #: synthesized) instead of being dispatched: the batch-kernel
        #: backend is selected, lazy periodic mode allows synthesized
        #: occurrences, and no per-dispatch engine trace would miss the
        #: elided dispatches.  The legacy backend keeps the exact
        #: dispatch-per-event behavior, preserving it as the bit-exact
        #: differential oracle.
        self.batch_inline_ok = (
            (dram == "kernel" or link == "kernel")
            and self.lazy_periodic
            and not self._tracer.enabled
        )
        if scheduler == "wheel":
            from repro.sim.wheel import DEFAULT_BUCKET_TICKS, TimingWheel

            bucket = int(
                os.environ.get("DORAM_WHEEL_BUCKET", DEFAULT_BUCKET_TICKS)
            )
            self._wheel: Optional["TimingWheel"] = TimingWheel(bucket)
            #: Single scheduling entry point: hot callers cache this
            #: bound callable instead of inlining ``heappush``.
            self._push: Callable[[EventHandle], None] = self._wheel.push
        else:
            self._wheel = None
            self._push = partial(heappush, self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute tick ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality, the classic discrete-event bug.  Returns a handle for
        :meth:`cancel`.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, callback, _NO_ARG)
        self._push(entry)
        return entry

    def after(self, delay: int, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` ``delay`` ticks from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        entry = (self.now + delay, seq, callback, _NO_ARG)
        self._push(entry)
        return entry

    def call_at(
        self, time: int, callback: Callable[[object], None], arg
    ) -> EventHandle:
        """Schedule ``callback(arg)`` at absolute tick ``time``.

        The hot-path form: carries one value without a per-event closure.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} < now {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        entry = (time, seq, callback, arg)
        self._push(entry)
        return entry

    def call_after(
        self, delay: int, callback: Callable[[object], None], arg
    ) -> EventHandle:
        """Schedule ``callback(arg)`` ``delay`` ticks from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        seq = self._seq
        self._seq = seq + 1
        entry = (self.now + delay, seq, callback, arg)
        self._push(entry)
        return entry

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a scheduled event.

        Returns ``True`` if the event was still pending (it will never
        fire and does not count as a dispatch), ``False`` if it already
        dispatched or was cancelled before.  Cancellation tombstones the
        entry by sequence number; the entry itself stays in the heap
        until it surfaces, so cancel costs one membership scan and no
        heap restructuring.
        """
        if handle[1] in self._cancelled_seqs:
            return False
        wheel = self._wheel
        if handle not in (self._queue if wheel is None else wheel):
            return False
        self._cancelled_seqs.add(handle[1])
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when queue is empty."""
        wheel = self._wheel
        if wheel is not None:
            return self._step_wheel()
        queue = self._queue
        cancelled = self._cancelled_seqs
        while queue:
            time, seq, callback, arg = heappop(queue)
            if cancelled and seq in cancelled:
                cancelled.remove(seq)
                continue
            self.now = time
            self._events_dispatched += 1
            tracer = self._tracer
            if tracer.enabled:
                tracer.instant(
                    "engine", "dispatch", "engine", time,
                    {"seq": seq, "fn": _callback_label(callback)},
                )
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            return True
        return False

    def _step_wheel(self) -> bool:
        """:meth:`step` over the wheel backend (same semantics)."""
        wheel = self._wheel
        cancelled = self._cancelled_seqs
        while len(wheel):
            time, seq, callback, arg = wheel.pop()
            if cancelled and seq in cancelled:
                cancelled.remove(seq)
                continue
            self.now = time
            self._events_dispatched += 1
            tracer = self._tracer
            if tracer.enabled:
                tracer.instant(
                    "engine", "dispatch", "engine", time,
                    {"seq": seq, "fn": _callback_label(callback)},
                )
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ticks pass, or ``stop()``.

        Parameters
        ----------
        until:
            Absolute tick bound; events strictly after it stay queued and
            ``now`` is advanced to ``until`` -- unless :meth:`stop` fired,
            in which case time freezes at the stop point.
        max_events:
            Safety valve for tests; dispatching is capped at exactly
            ``max_events`` events and a ``RuntimeError`` is raised when
            more remain, so an accidental event livelock fails loudly
            instead of hanging.
        """
        self._stopped = False
        self._run_until = until
        if self._wheel is not None:
            return self._run_wheel(until, max_events)
        # The dispatch loop binds everything it touches every iteration
        # to locals (heap, heappop, tracer guard, dispatch budget) and
        # drains each tick as a same-tick batch, so the `until` bound and
        # `self.now` are only touched when time advances.  The running
        # event count lives in a local and is written back on exit (no
        # mid-callback reader exists; `events_dispatched` is a
        # post-run measurement).
        queue = self._queue
        pop = heappop
        no_arg = _NO_ARG
        cancelled = self._cancelled_seqs  # same set object for the run
        tracer = self._tracer
        traced = tracer.enabled
        dispatched = self._events_dispatched
        limit = _NO_LIMIT if max_events is None else dispatched + max_events
        if until is None and max_events is None and not traced:
            # The production shape (whole-run, tracing off): same loop
            # minus the three per-event guards that cannot fire.  The
            # general loop below stays the single source of truth for
            # `until`/`max_events`/tracing semantics.
            try:
                while queue:
                    time = queue[0][0]
                    self.now = time
                    while True:
                        _t, seq, callback, arg = pop(queue)
                        if cancelled and seq in cancelled:
                            cancelled.remove(seq)
                        else:
                            dispatched += 1
                            if arg is no_arg:
                                callback()
                            else:
                                callback(arg)
                            if self._stopped:
                                return
                        if not queue or queue[0][0] != time:
                            break
            finally:
                self._events_dispatched = dispatched
                self._run_until = None
            return
        try:
            while queue:
                time = queue[0][0]
                if until is not None and time > until:
                    self.now = until
                    return
                self.now = time
                # Same-tick FIFO batch: heap order is (time, seq), so
                # events a callback schedules for this same tick join
                # the batch behind the already-queued ones.
                while True:
                    _t, seq, callback, arg = pop(queue)
                    if cancelled and seq in cancelled:
                        cancelled.remove(seq)
                    elif dispatched >= limit:
                        heappush(queue, (_t, seq, callback, arg))
                        raise RuntimeError(
                            f"exceeded max_events={max_events}; "
                            "possible livelock"
                        )
                    else:
                        dispatched += 1
                        if traced:
                            tracer.instant(
                                "engine", "dispatch", "engine", time,
                                {"seq": seq,
                                 "fn": _callback_label(callback)},
                            )
                        if arg is no_arg:
                            callback()
                        else:
                            callback(arg)
                        if self._stopped:
                            # Freeze time at the stop point: no `until`
                            # fixup on the way out.
                            return
                    if not queue or queue[0][0] != time:
                        break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_dispatched = dispatched
            self._run_until = None

    def _run_wheel(self, until: Optional[int],
                   max_events: Optional[int]) -> None:
        """:meth:`run` over the wheel backend.

        Same structure as the heap general loop -- same-tick FIFO
        batching, tombstone skip, ``until``/``max_events``/tracing
        semantics -- with heap peeks replaced by :meth:`TimingWheel.peek`.
        """
        wheel = self._wheel
        cancelled = self._cancelled_seqs
        tracer = self._tracer
        traced = tracer.enabled
        no_arg = _NO_ARG
        dispatched = self._events_dispatched
        limit = _NO_LIMIT if max_events is None else dispatched + max_events
        try:
            head = wheel.peek()
            while head is not None:
                time = head[0]
                if until is not None and time > until:
                    self.now = until
                    return
                self.now = time
                while True:
                    entry = wheel.pop()
                    _t, seq, callback, arg = entry
                    if cancelled and seq in cancelled:
                        cancelled.remove(seq)
                    elif dispatched >= limit:
                        wheel.push(entry)
                        raise RuntimeError(
                            f"exceeded max_events={max_events}; "
                            "possible livelock"
                        )
                    else:
                        dispatched += 1
                        if traced:
                            tracer.instant(
                                "engine", "dispatch", "engine", time,
                                {"seq": seq,
                                 "fn": _callback_label(callback)},
                            )
                        if arg is no_arg:
                            callback()
                        else:
                            callback(arg)
                        if self._stopped:
                            return
                    head = wheel.peek()
                    if head is None or head[0] != time:
                        break
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_dispatched = dispatched
            self._run_until = None

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        wheel = self._wheel
        queued = len(self._queue) if wheel is None else len(wheel)
        return queued - len(self._cancelled_seqs)

    @property
    def events_dispatched(self) -> int:
        """Logical event census: dispatches plus synthesized occurrences.

        Lazy periodic fast-forwarding removes heap events but accounts
        every occurrence it reconstructs here, so this census (and the
        SimResult payloads built from it) is identical whichever
        ``periodic`` mode ran.  :attr:`raw_events_dispatched` counts
        actual dispatches only.
        """
        return self._events_dispatched + self._synthesized

    @property
    def raw_events_dispatched(self) -> int:
        """Events actually popped and dispatched (no synthesized ones)."""
        return self._events_dispatched

    @property
    def events_synthesized(self) -> int:
        """Periodic occurrences reconstructed without a dispatch."""
        return self._synthesized

    def note_synthesized(self, count: int) -> None:
        """Account ``count`` periodic occurrences handled without a
        dispatch (see :attr:`events_dispatched`)."""
        self._synthesized += count

    def peek_time(self) -> Optional[int]:
        """Tick of the next live pending event, or ``None`` if none remain.

        Callers use this as a fast-forward limit.  The batch kernel
        (:mod:`repro.dram.kernel`) only ever holds an event out of the
        queue *inside* its own chain loop -- every code path that
        consults this method runs with the kernel fully flushed -- so
        the queue head is always the true next event.
        """
        queued = self._peek_queued()
        return queued[0] if queued is not None else None

    def peek_entry(self) -> Optional[EventHandle]:
        """The live head *entry* of the queue, or ``None`` if empty.

        Unlike :meth:`peek_time` this exposes the sequence number, for
        the batch kernel's strict ``(time, seq)`` chain guard.
        """
        return self._peek_queued()

    def _peek_queued(self) -> Optional[EventHandle]:
        """Live queue head, skipping (and draining) cancel tombstones."""
        cancelled = self._cancelled_seqs
        wheel = self._wheel
        if wheel is not None:
            while True:
                head = wheel.peek()
                if head is None:
                    return None
                if cancelled and head[1] in cancelled:
                    cancelled.remove(wheel.pop()[1])
                    continue
                return head
        queue = self._queue
        while queue and cancelled and queue[0][1] in cancelled:
            cancelled.remove(heappop(queue)[1])
        return queue[0] if queue else None
