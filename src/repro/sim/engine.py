"""Deterministic discrete-event engine.

The engine keeps a priority queue of ``(time, sequence, callback)`` entries.
Events scheduled for the same tick fire in scheduling order (FIFO), which
makes whole-system runs bit-for-bit reproducible regardless of dict ordering
or hash seeds.

Time units
----------
All times are integer *ticks*; :data:`TICKS_PER_NS` ticks equal one
nanosecond.  Helper converters :func:`ns`, :func:`cpu_cycles` and
:func:`mem_cycles` translate the units the D-ORAM paper speaks in (CPU
cycles at 3.2 GHz, DDR3-1600 memory-bus cycles, nanoseconds of link latency)
into ticks.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Number of engine ticks per nanosecond.  16 makes both the CPU clock
#: (3.2 GHz -> 0.3125 ns -> 5 ticks) and the DDR3-1600 bus clock
#: (800 MHz -> 1.25 ns -> 20 ticks) integral.
TICKS_PER_NS = 16

#: Ticks per CPU cycle at the paper's 3.2 GHz core clock (Table II).
CPU_CYCLE_TICKS = 5

#: Ticks per DDR3-1600 memory-bus cycle (800 MHz).
MEM_CYCLE_TICKS = 20


def ns(value: float) -> int:
    """Convert nanoseconds to integer ticks (rounding to nearest tick)."""
    return int(round(value * TICKS_PER_NS))


def cpu_cycles(value: float) -> int:
    """Convert 3.2 GHz CPU cycles to ticks."""
    return int(round(value * CPU_CYCLE_TICKS))


def mem_cycles(value: float) -> int:
    """Convert DDR3-1600 memory-bus cycles to ticks."""
    return int(round(value * MEM_CYCLE_TICKS))


class _NullDispatchTracer:
    """Disabled-tracing sentinel.

    The engine is the substrate every model imports, so it cannot depend
    on :mod:`repro.obs`; this minimal stand-in mirrors the
    ``tracer.enabled`` guard protocol of ``repro.obs.tracer.NULL_TRACER``
    and keeps the disabled hot path to one attribute load per dispatch.
    """

    enabled = False


_NULL_DISPATCH_TRACER = _NullDispatchTracer()


def _callback_label(callback: Callable[[], None]) -> str:
    """Deterministic short label for a scheduled callback (no ids/reprs)."""
    name = getattr(callback, "__qualname__", None)
    if name is None:
        func = getattr(callback, "func", None)  # functools.partial
        name = getattr(func, "__qualname__", None) or type(callback).__name__
    return name


class Engine:
    """A minimal, deterministic discrete-event scheduler.

    Components schedule callbacks with :meth:`at` (absolute time) or
    :meth:`after` (relative delay) and the engine dispatches them in
    ``(time, scheduling order)`` order.  A callback may schedule further
    events, including at the current time.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> eng.after(10, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [10]
    """

    def __init__(self, tracer=None) -> None:
        """``tracer`` (a :class:`repro.obs.tracer.Tracer`) enables
        per-dispatch events under the ``engine`` category; dispatch
        tracing is opt-in because it emits one event per callback."""
        self.now: int = 0
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._events_dispatched = 0
        self._stopped = False
        self._tracer = (
            tracer.category("engine") if tracer is not None
            else _NULL_DISPATCH_TRACER
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at absolute tick ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality, the classic discrete-event bug.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event at {time} < now {self.now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` ``delay`` ticks from now (``delay >= 0``)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event.  Returns ``False`` when queue is empty."""
        if not self._queue:
            return False
        time, seq, callback = heapq.heappop(self._queue)
        self.now = time
        self._events_dispatched += 1
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "engine", "dispatch", "engine", time,
                {"seq": seq, "fn": _callback_label(callback)},
            )
        callback()
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` ticks pass, or ``stop()``.

        Parameters
        ----------
        until:
            Absolute tick bound; events strictly after it stay queued and
            ``now`` is advanced to ``until``.
        max_events:
            Safety valve for tests; raises ``RuntimeError`` when exceeded
            so an accidental event livelock fails loudly instead of hanging.
        """
        self._stopped = False
        dispatched = 0
        while self._queue and not self._stopped:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return
            self.step()
            dispatched += 1
            if max_events is not None and dispatched > max_events:
                raise RuntimeError(
                    f"exceeded max_events={max_events}; possible livelock"
                )
        if until is not None and self.now < until:
            self.now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def events_dispatched(self) -> int:
        """Total events dispatched since construction."""
        return self._events_dispatched

    def peek_time(self) -> Optional[int]:
        """Tick of the next queued event, or ``None`` if the queue is empty."""
        return self._queue[0][0] if self._queue else None
