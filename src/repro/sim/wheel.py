"""Bucketed calendar-queue scheduler backend (``DORAM_SCHED=wheel``).

The heap backend pays O(log n) per push/pop.  At sweep scale the pending
set reaches hundreds of thousands of entries, but almost every push lands
within a few microseconds of ``now`` -- DRAM bursts, link flights, core
wakes.  A two-level calendar queue exploits that: time is divided into
fixed-width buckets (a power of two of ticks); entries for the *current*
bucket live in a small heap, entries for future buckets in unordered
lists keyed by bucket index.  Near-term pushes append to a list (O(1));
only when the drain crosses into a bucket does that bucket's handful of
entries get heapified.

Ordering contract
-----------------
Identical to the heap backend: entries pop in ``(time, seq)`` order.
Within a bucket the heap provides it; across buckets the bucket index
provides it; and a push whose bucket is at or before the drain cursor
goes straight into the current heap (its time is >= ``now`` by the
engine's past-schedule guard, so no order violation is possible).  The
differential reference suite pins this against both the naive sorted
list and the heap backend.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Tuple

#: Default bucket width in ticks (512 = 32 ns).  Chosen so one DRAM burst
#: (tBURST = 80 ticks) and one CPU wake cadence fit well inside a bucket
#: while a tREFI gap (~125k ticks) spans a few hundred -- cheap to skip.
DEFAULT_BUCKET_TICKS = 512


class TimingWheel:
    """Calendar queue over ``(time, seq, callback, arg)`` entries.

    API-compatible with the heap the engine uses directly: ``push``,
    ``pop``, ``peek``, ``__len__``, ``__contains__``.  The engine keeps
    cancellation tombstones on its side, so the wheel never needs to
    delete an interior entry.
    """

    __slots__ = ("_shift", "_cur", "_cur_div", "_buckets", "_divs", "_len")

    def __init__(self, bucket_ticks: int = DEFAULT_BUCKET_TICKS) -> None:
        if bucket_ticks <= 0 or bucket_ticks & (bucket_ticks - 1):
            raise ValueError(
                f"bucket_ticks must be a positive power of two, "
                f"got {bucket_ticks}"
            )
        self._shift = bucket_ticks.bit_length() - 1
        #: Heapified entries of the bucket currently draining.
        self._cur: List[tuple] = []
        self._cur_div = 0
        #: Future buckets: unordered entry lists keyed by bucket index.
        self._buckets: Dict[int, List[tuple]] = {}
        #: Min-heap of populated future bucket indices.  An index enters
        #: exactly when its bucket list is created, so no duplicates.
        self._divs: List[int] = []
        self._len = 0

    # ------------------------------------------------------------------
    def push(self, entry: tuple) -> None:
        div = entry[0] >> self._shift
        if div <= self._cur_div:
            # At-or-behind the drain cursor: the entry's time is still
            # >= now (engine guard), so it belongs in the live heap.
            heappush(self._cur, entry)
        else:
            bucket = self._buckets.get(div)
            if bucket is None:
                self._buckets[div] = [entry]
                heappush(self._divs, div)
            else:
                bucket.append(entry)
        self._len += 1

    def _advance(self) -> bool:
        """Move the drain cursor to the next populated bucket."""
        if not self._divs:
            return False
        div = heappop(self._divs)
        cur = self._buckets.pop(div)
        heapify(cur)
        self._cur = cur
        self._cur_div = div
        return True

    def pop(self) -> tuple:
        cur = self._cur
        while not cur:
            if not self._advance():
                raise IndexError("pop from an empty TimingWheel")
            cur = self._cur
        self._len -= 1
        return heappop(cur)

    def peek(self) -> Optional[tuple]:
        """Smallest entry without removing it, or ``None`` when empty."""
        cur = self._cur
        while not cur:
            if not self._advance():
                return None
            cur = self._cur
        return cur[0]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._len

    def __contains__(self, entry: tuple) -> bool:
        if entry in self._cur:
            return True
        div = entry[0] >> self._shift
        bucket = self._buckets.get(div)
        return bucket is not None and entry in bucket
