"""Lazy fixed-cadence occurrence streams (the census primitive).

The simulator has two kinds of strictly periodic bookkeeping: the DRAM
rank refresh schedule (one window every ``tREFI``) and the secure
engine's fixed-rate emitter (one packet every ``t`` CPU cycles after the
previous response).  Materializing each occurrence as a heap event makes
idle stretches cost O(occurrences) dispatches even though nothing
model-visible happens between them.

:class:`PeriodicStream` keeps only the *next* due time and a running
occurrence count.  Consumers poll :meth:`take_due` when they are
naturally active (the DRAM service loop) or when the engine fast-forwards
time; the stream answers "how many occurrences fell due since you last
asked" in closed form, so a quiescent gap of N periods costs one integer
division instead of N dispatches.

``eager=True`` restores the one-at-a-time behavior (``take_due`` never
returns more than one occurrence), which reproduces the pre-lazy event
census bit-for-bit -- the census-invariance suite diffes the two modes.
"""

from __future__ import annotations

from typing import Optional, Tuple


class PeriodicStream:
    """Closed-form occurrence accounting for a fixed-cadence deadline.

    Parameters
    ----------
    period:
        Ticks between occurrences (must be positive).
    first_due:
        Tick of the first occurrence (defaults to ``period``, matching a
        schedule that starts one period after time zero).
    eager:
        When true, :meth:`take_due` consumes at most one occurrence per
        call -- the pre-lazy census, kept as a differential oracle.
    """

    __slots__ = ("period", "next_due", "occurrences", "eager")

    def __init__(self, period: int, first_due: Optional[int] = None,
                 eager: bool = False) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.period = period
        self.next_due = period if first_due is None else first_due
        self.occurrences = 0
        self.eager = eager

    # ------------------------------------------------------------------
    def due(self, now: int) -> bool:
        """True when at least one occurrence is due at or before ``now``."""
        return now >= self.next_due

    def due_count(self, now: int) -> int:
        """Occurrences due at or before ``now`` (0 if none)."""
        if now < self.next_due:
            return 0
        return (now - self.next_due) // self.period + 1

    def take_due(self, now: int) -> Tuple[int, int]:
        """Consume all occurrences due at or before ``now``.

        Returns ``(first_due, count)`` with ``count == 0`` when nothing
        is due.  In eager mode at most one occurrence is consumed, so a
        caller that loops (or re-polls on its next activation) observes
        the same per-occurrence sequence the pre-lazy code dispatched.
        """
        first = self.next_due
        if now < first:
            return first, 0
        period = self.period
        count = 1 if self.eager else (now - first) // period + 1
        self.next_due = first + count * period
        self.occurrences += count
        return first, count

    def rebase(self, due: int) -> None:
        """Re-anchor the cadence: the next occurrence is exactly ``due``.

        The secure engine's pacer is response-anchored (next emission =
        response time + t), not free-running; ``rebase`` expresses that
        without losing the occurrence count.
        """
        self.next_due = due

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PeriodicStream(period={self.period}, next_due={self.next_due}, "
            f"occurrences={self.occurrences}, eager={self.eager})"
        )
