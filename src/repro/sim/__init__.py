"""Discrete-event simulation substrate.

Every timing model in this reproduction (DRAM devices, memory controllers,
BOB links, cores, the secure delegator) is driven by a single deterministic
event engine.  Time is kept in integer *ticks* so that runs are exactly
reproducible: 16 ticks equal one nanosecond, which makes both the 3.2 GHz
CPU clock (5 ticks per cycle) and the DDR3-1600 memory clock (20 ticks per
cycle) integral.
"""

from repro.sim.engine import Engine, TICKS_PER_NS, cpu_cycles, mem_cycles, ns
from repro.sim.stats import Counter, Histogram, LatencyStat, StatSet

__all__ = [
    "Engine",
    "TICKS_PER_NS",
    "cpu_cycles",
    "mem_cycles",
    "ns",
    "Counter",
    "Histogram",
    "LatencyStat",
    "StatSet",
]
