"""Statistics primitives shared by every timing model.

The paper reports three kinds of numbers and these classes cover them all:

* execution-time slowdowns (Figs. 4, 9, 10, 11) -- computed from per-core
  finish times collected in a :class:`StatSet`;
* average memory access latencies, split by read/write and by channel
  (Figs. 8, 13) -- :class:`LatencyStat`;
* traffic accounting such as Table I's extra-message counts --
  :class:`Counter` and :class:`Histogram`.

Recording is on the simulation hot path (every serviced request touches a
latency stat and two counters), so the primitives carry ``__slots__``,
histograms count into a dense list (a few int ops per record, no dict
lookups), and components are expected to pre-bind the ``record``/``add``
bound methods they call per event rather than re-resolving stats by name.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A named monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Streaming latency aggregate (count / total / min / max).

    Latencies are recorded in ticks and reported in nanoseconds by the
    analysis layer; this class stays unit-agnostic.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency} on {self.name}")
        self.count += 1
        self.total += latency
        bound = self.min
        if bound is None or latency < bound:
            self.min = latency
        bound = self.max
        if bound is None or latency > bound:
            self.max = latency

    @property
    def mean(self) -> float:
        """Average recorded latency, 0.0 when nothing was recorded."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        """Fold ``other`` into this aggregate."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    # -- (de)serialization (sweep result store) -------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-safe state: exact integers only, so a round trip is
        bit-identical (the sweep store's equivalence guarantee)."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "LatencyStat":
        stat = cls(str(state["name"]))
        stat.count = int(state["count"])
        stat.total = int(state["total"])
        stat.min = None if state["min"] is None else int(state["min"])
        stat.max = None if state["max"] is None else int(state["max"])
        return stat

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LatencyStat({self.name}: n={self.count}, mean={self.mean:.1f})"


class Histogram:
    """Fixed-bucket histogram, used for queue depths and stash occupancy.

    Non-negative buckets (the only kind the models produce) count into a
    dense list indexed by bucket, so :meth:`record` is a couple of int
    compares and one indexed increment; negative buckets spill into a
    side dict.  :attr:`buckets` presents the populated-bucket dict view
    the analysis layer and tests consume.
    """

    __slots__ = ("name", "bucket_width", "count", "_dense", "_sparse")

    def __init__(self, name: str, bucket_width: int = 1) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._dense: List[int] = []
        self._sparse: Dict[int, int] = {}
        self.count = 0

    def record(self, value: int) -> None:
        width = self.bucket_width
        bucket = value if width == 1 else value // width
        self.count += 1
        if bucket >= 0:
            dense = self._dense
            if bucket < len(dense):
                dense[bucket] += 1
            else:
                dense.extend([0] * (bucket + 1 - len(dense)))
                dense[bucket] = 1
        else:
            self._sparse[bucket] = self._sparse.get(bucket, 0) + 1

    @property
    def buckets(self) -> Dict[int, int]:
        """Populated buckets as ``{bucket_index: count}``."""
        out = dict(self._sparse)
        for bucket, n in enumerate(self._dense):
            if n:
                out[bucket] = n
        return out

    def quantile(self, q: float) -> int:
        """Return the lower edge of the bucket containing quantile ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0
        width = self.bucket_width
        target = q * self.count
        seen = 0
        for bucket in sorted(self._sparse):
            seen += self._sparse[bucket]
            if seen >= target:
                return bucket * width
        for bucket, n in enumerate(self._dense):
            if n:
                seen += n
                if seen >= target:
                    return bucket * width
        return self.max_value

    @property
    def max_value(self) -> int:
        dense = self._dense
        for bucket in range(len(dense) - 1, -1, -1):
            if dense[bucket]:
                return bucket * self.bucket_width
        if self._sparse:
            return max(self._sparse) * self.bucket_width
        return 0


class StatSet:
    """A flat namespace of named statistics owned by one component.

    Components create stats lazily (``stats.counter("reads")``) so that a
    model only pays for what it records, and the analysis layer can walk
    everything via :meth:`as_dict`.
    """

    __slots__ = ("owner", "_counters", "_latencies", "_histograms")

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyStat] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        stat = self._counters.get(name)
        if stat is None:
            stat = self._counters[name] = Counter(f"{self.owner}.{name}")
        return stat

    def latency(self, name: str) -> LatencyStat:
        stat = self._latencies.get(name)
        if stat is None:
            stat = self._latencies[name] = LatencyStat(f"{self.owner}.{name}")
        return stat

    def histogram(self, name: str, bucket_width: int = 1) -> Histogram:
        stat = self._histograms.get(name)
        if stat is None:
            stat = self._histograms[name] = Histogram(
                f"{self.owner}.{name}", bucket_width
            )
        return stat

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``{name: value}`` for reporting.

        Latencies export count/mean/min/max (min/max as 0 when nothing
        was recorded, keeping the value space numeric); histograms
        export count, max, and the p50/p99 bucket edges.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, stat in self._latencies.items():
            out[f"{name}.count"] = stat.count
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.min"] = stat.min if stat.min is not None else 0
            out[f"{name}.max"] = stat.max if stat.max is not None else 0
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = hist.count
            out[f"{name}.max"] = hist.max_value
            out[f"{name}.p50"] = hist.quantile(0.5)
            out[f"{name}.p99"] = hist.quantile(0.99)
        return out


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's summary statistic for per-app slowdowns."""
    vals: List[float] = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
