"""Statistics primitives shared by every timing model.

The paper reports three kinds of numbers and these classes cover them all:

* execution-time slowdowns (Figs. 4, 9, 10, 11) -- computed from per-core
  finish times collected in a :class:`StatSet`;
* average memory access latencies, split by read/write and by channel
  (Figs. 8, 13) -- :class:`LatencyStat`;
* traffic accounting such as Table I's extra-message counts --
  :class:`Counter` and :class:`Histogram`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional


class Counter:
    """A named monotonically increasing counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class LatencyStat:
    """Streaming latency aggregate (count / total / min / max).

    Latencies are recorded in ticks and reported in nanoseconds by the
    analysis layer; this class stays unit-agnostic.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, latency: int) -> None:
        if latency < 0:
            raise ValueError(f"negative latency {latency} on {self.name}")
        self.count += 1
        self.total += latency
        if self.min is None or latency < self.min:
            self.min = latency
        if self.max is None or latency > self.max:
            self.max = latency

    @property
    def mean(self) -> float:
        """Average recorded latency, 0.0 when nothing was recorded."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyStat") -> None:
        """Fold ``other`` into this aggregate."""
        self.count += other.count
        self.total += other.total
        for bound in (other.min, other.max):
            if bound is None:
                continue
            if self.min is None or bound < self.min:
                self.min = bound
            if self.max is None or bound > self.max:
                self.max = bound

    # -- (de)serialization (sweep result store) -------------------------
    def as_dict(self) -> Dict[str, object]:
        """JSON-safe state: exact integers only, so a round trip is
        bit-identical (the sweep store's equivalence guarantee)."""
        return {
            "name": self.name,
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, state: Dict[str, object]) -> "LatencyStat":
        stat = cls(str(state["name"]))
        stat.count = int(state["count"])
        stat.total = int(state["total"])
        stat.min = None if state["min"] is None else int(state["min"])
        stat.max = None if state["max"] is None else int(state["max"])
        return stat

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LatencyStat({self.name}: n={self.count}, mean={self.mean:.1f})"


class Histogram:
    """Fixed-bucket histogram, used for queue depths and stash occupancy."""

    def __init__(self, name: str, bucket_width: int = 1) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self.buckets: Dict[int, int] = {}
        self.count = 0

    def record(self, value: int) -> None:
        bucket = value // self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1

    def quantile(self, q: float) -> int:
        """Return the lower edge of the bucket containing quantile ``q``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0
        target = q * self.count
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return bucket * self.bucket_width
        return max(self.buckets) * self.bucket_width

    @property
    def max_value(self) -> int:
        if not self.buckets:
            return 0
        return max(self.buckets) * self.bucket_width


class StatSet:
    """A flat namespace of named statistics owned by one component.

    Components create stats lazily (``stats.counter("reads")``) so that a
    model only pays for what it records, and the analysis layer can walk
    everything via :meth:`as_dict`.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._counters: Dict[str, Counter] = {}
        self._latencies: Dict[str, LatencyStat] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(f"{self.owner}.{name}")
        return self._counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self._latencies:
            self._latencies[name] = LatencyStat(f"{self.owner}.{name}")
        return self._latencies[name]

    def histogram(self, name: str, bucket_width: int = 1) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(
                f"{self.owner}.{name}", bucket_width
            )
        return self._histograms[name]

    def as_dict(self) -> Dict[str, float]:
        """Flatten to ``{name: value}`` for reporting.

        Latencies export count/mean/min/max (min/max as 0 when nothing
        was recorded, keeping the value space numeric); histograms
        export count, max, and the p50/p99 bucket edges.
        """
        out: Dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, stat in self._latencies.items():
            out[f"{name}.count"] = stat.count
            out[f"{name}.mean"] = stat.mean
            out[f"{name}.min"] = stat.min if stat.min is not None else 0
            out[f"{name}.max"] = stat.max if stat.max is not None else 0
        for name, hist in self._histograms.items():
            out[f"{name}.count"] = hist.count
            out[f"{name}.max"] = hist.max_value
            out[f"{name}.p50"] = hist.quantile(0.5)
            out[f"{name}.p99"] = hist.quantile(0.99)
        return out


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; the paper's summary statistic for per-app slowdowns."""
    vals: List[float] = [v for v in values]
    if not vals:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
