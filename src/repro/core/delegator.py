"""The secure delegator (SD) and the access sequencer (Section III-B).

The SD lives next to the secure channel's simple controller.  Triggered by
an encrypted 72 B packet from the processor, it runs the Path ORAM
protocol against the untrusted sub-channels, returns a 72 B response when
the read phase completes, and overlaps the write phase with whatever the
processor does next.  A request arriving during the write phase is
buffered and serviced right after it (the paper's timing-control rule).

With a split tree (D-ORAM+k) some path blocks live on normal channels.
The SD cannot reach them directly -- it emits explicit messages that the
main controllers forward (Section III-C): per remote block, a short read
packet up the secure link, a forwarded short read down the target normal
link, the 72 B data response back up the normal link and down the secure
link.  Writes ship the 72 B block the same way without a return trip.
These are the "extra messages" of Table I, and the delegator counts them
so the reproduction can check itself against that table.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.bob.channel import BobChannel
from repro.core.config import PACKET_BYTES, SHORT_PACKET_BYTES
from repro.dram.channel import Channel
from repro.dram.commands import MemRequest, OpType, TrafficClass
from repro.obs.tracer import NULL_TRACER
from repro.oram.controller import BlockSink, OramController
from repro.oram.layout import BlockPlacement
from repro.sim.engine import Engine, ns
from repro.sim.stats import StatSet


class OramSequencer:
    """Serializes ORAM accesses through the SD's single engine.

    Protocol rhythm (identical for the delegated and on-chip engines):
    read phase -> respond -> write phase -> (buffered request, if any).

    One SD may host several ORAM *trees* (one per S-App: the III-C
    motivation runs "two S-Apps and two NS-Apps"); each tree has its own
    :class:`~repro.oram.controller.OramController`, but the engine
    processes one access at a time across all of them, so requests are
    arbitrated FIFO here.
    """

    def __init__(self, controller: OramController) -> None:
        self.controller = controller
        self._buffered: Deque[Tuple[OramController, Optional[int],
                                    Callable[[int], None]]] = deque()
        self._active_respond: Optional[Callable[[int], None]] = None
        self._active_controller: Optional[OramController] = None

    @property
    def busy(self) -> bool:
        return (
            self._active_controller is not None
            or self._active_respond is not None
            or self.controller.busy
        )

    def submit(
        self,
        block_id: Optional[int],
        respond: Callable[[int], None],
        controller: Optional[OramController] = None,
    ) -> None:
        """Queue one access; ``respond(t)`` fires when its read phase ends.

        ``controller`` selects which tree the access targets (defaults to
        the sequencer's primary tree).
        """
        controller = controller or self.controller
        if self.busy:
            self._buffered.append((controller, block_id, respond))
            return
        self._start(controller, block_id, respond)

    def _start(
        self,
        controller: OramController,
        block_id: Optional[int],
        respond: Callable[[int], None],
    ) -> None:
        self._active_respond = respond
        self._active_controller = controller
        controller.begin_read(block_id, self._read_done)

    def _read_done(self, time: int) -> None:
        respond = self._active_respond
        controller = self._active_controller
        self._active_respond = None
        controller.begin_write(self._write_done)
        if respond is not None:
            respond(time)

    def _write_done(self, _time: int) -> None:
        self._active_controller = None
        if self._buffered and not self.busy:
            controller, block_id, respond = self._buffered.popleft()
            self._start(controller, block_id, respond)


class DelegatorSink(BlockSink):
    """Routes path blocks: local sub-channels direct, remote via messages."""

    def __init__(self, delegator: "SecureDelegator") -> None:
        self.delegator = delegator

    def try_issue(self, placement, op, on_complete) -> bool:
        if placement.remote:
            return self.delegator.try_remote(placement, op, on_complete)
        return self.delegator.try_local(placement, op, on_complete)

    def notify_on_space(self, callback: Callable[[], None]) -> None:
        self.delegator.notify_on_space(callback)


class SecureDelegator:
    """The on-board secure engine of D-ORAM."""

    #: Outstanding remote (cross-channel) block messages allowed at once.
    REMOTE_WINDOW = 16

    def __init__(
        self,
        engine: Engine,
        secure_bob: BobChannel,
        normal_bobs: Dict[int, BobChannel],
        process_ns: float = 5.0,
        app_id: int = -2,
        name: str = "sd",
        merge_short_reads: bool = False,
        tracer=None,
    ) -> None:
        """``merge_short_reads`` enables the paper's footnote-1 future
        work: short read packets destined for the same normal channel
        within one ORAM access are coalesced into a single packet per
        hop (one address list instead of 4k separate headers), cutting
        the split-tree message count on both links."""
        self.engine = engine
        self.secure_bob = secure_bob
        self.normal_bobs = normal_bobs
        self.process_ticks = ns(process_ns)
        self.app_id = app_id
        self.name = name
        self.stats = StatSet(name)
        self._tracer = (
            tracer if tracer is not None else NULL_TRACER
        ).category("sd")
        self.sink = DelegatorSink(self)
        #: Set by the system builder once the controller exists (the
        #: controller needs the sink, the sink needs the delegator).
        self.sequencer: Optional[OramSequencer] = None
        self._remote_outstanding = 0
        self._space_waiters: List[Callable[[], None]] = []
        self.merge_short_reads = merge_short_reads
        #: Pending read batches per channel: [(placement, cb), ...].
        self._merge_buffers: Dict[int, List] = {}
        self._merge_flush_scheduled = False

    # ------------------------------------------------------------------
    # Request entry (packets from the processor)
    # ------------------------------------------------------------------
    def receive_request(
        self,
        block_id: Optional[int],
        respond: Callable[[int], None],
        controller=None,
    ) -> None:
        """A decrypted request packet is ready for processing.

        ``respond(t)`` is invoked when the read phase finishes; the caller
        (the CPU-side backend) ships the response packet up the link.
        ``controller`` selects the target tree when the SD hosts several
        S-Apps (defaults to the primary).
        """
        if self.sequencer is None:
            raise RuntimeError("delegator not wired to a controller")
        self.stats.counter("requests").add()
        if self._tracer.enabled:
            self._tracer.instant(
                "sd", "request", self.name, self.engine.now,
                {
                    "real": int(block_id is not None),
                    "queued": int(self.sequencer.busy),
                },
            )
        # Decrypt + authenticate + position-map consultation.
        self.engine.after(
            self.process_ticks,
            lambda: self.sequencer.submit(block_id, respond, controller),
        )

    # ------------------------------------------------------------------
    # Local sub-channel traffic
    # ------------------------------------------------------------------
    def try_local(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        sub = self.secure_bob.subchannels[placement.subchannel]
        if not sub.can_accept(op):
            return False
        sub.enqueue(
            MemRequest(
                op, placement.channel, placement.subchannel,
                placement.bank, placement.row, placement.col,
                self.app_id, TrafficClass.SECURE, 0, on_complete,
            )
        )
        return True

    # ------------------------------------------------------------------
    # Remote split-tree traffic (Section III-C)
    # ------------------------------------------------------------------
    def try_remote(
        self,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> bool:
        if self._remote_outstanding >= self.REMOTE_WINDOW:
            return False
        bob = self.normal_bobs[placement.channel]
        self._remote_outstanding += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "sd",
                "remote_read" if op is OpType.READ else "remote_write",
                self.name, self.engine.now,
                {"ch": placement.channel, "bucket": placement.bucket},
            )
        if op is OpType.READ:
            self.stats.counter("remote_read_blocks").add()
            self.stats.counter(f"ch{placement.channel}_reads").add()
            if self.merge_short_reads:
                # Footnote-1 future work: coalesce this access's short
                # reads per target channel; flushed once the current
                # issue burst settles (same-tick event).
                self._merge_buffers.setdefault(
                    placement.channel, []
                ).append((placement, on_complete))
                if not self._merge_flush_scheduled:
                    self._merge_flush_scheduled = True
                    self.engine.after(0, self._flush_merged)
                return True
            self.stats.counter("remote_short_reads").add()
            # SD -> CPU (short read, up the secure link) ...
            self.secure_bob.send_up(
                SHORT_PACKET_BYTES,
                lambda _t: self._forward_read(bob, placement, on_complete),
                tag="remote",
            )
        else:
            self.stats.counter("remote_writes").add()
            self.stats.counter(f"ch{placement.channel}_writes").add()
            # SD -> CPU (72 B write packet carrying the block) ...
            self.secure_bob.send_up(
                PACKET_BYTES,
                lambda _t: self._forward_write(bob, placement, on_complete),
                tag="remote",
            )
        return True

    def _flush_merged(self) -> None:
        """Ship one coalesced read packet per buffered normal channel."""
        self._merge_flush_scheduled = False
        buffers, self._merge_buffers = self._merge_buffers, {}
        for channel, entries in sorted(buffers.items()):
            bob = self.normal_bobs[channel]
            # Header + one extra 8 B address per additional block.
            nbytes = SHORT_PACKET_BYTES + 8 * (len(entries) - 1)
            self.stats.counter("remote_short_reads").add()
            if self._tracer.enabled:
                self._tracer.instant(
                    "sd", "merged_read", self.name, self.engine.now,
                    {"ch": channel, "blocks": len(entries), "bytes": nbytes},
                )
            self.secure_bob.send_up(
                nbytes,
                lambda _t, b=bob, e=entries, n=nbytes:
                    self._forward_merged(b, e, n),
                tag="remote",
            )

    def _forward_merged(self, bob: BobChannel, entries, nbytes: int) -> None:
        """CPU forwards the coalesced packet; blocks fan out at DRAM."""
        def arrived(_t: int) -> None:
            for placement, on_complete in entries:
                self._remote_dram(
                    bob, placement, OpType.READ,
                    lambda t2, cb=on_complete: self._return_read(bob, cb),
                )

        bob.send_down(nbytes, arrived, tag="remote")

    def _forward_read(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        on_complete: Callable[[int], None],
    ) -> None:
        # ... CPU -> normal channel (short read, down its link) ...
        bob.send_down(
            SHORT_PACKET_BYTES,
            lambda _t: self._remote_dram(
                bob, placement, OpType.READ,
                lambda t2: self._return_read(bob, on_complete),
            ),
            tag="remote",
        )

    def _return_read(
        self, bob: BobChannel, on_complete: Callable[[int], None]
    ) -> None:
        # ... DRAM read done: normal channel -> CPU (72 B response) ...
        bob.send_up(
            PACKET_BYTES,
            lambda _t: self.secure_bob.send_down(
                PACKET_BYTES,
                lambda t2: self._remote_done(on_complete, t2),
                tag="remote",
            ),
            tag="remote",
        )

    def _forward_write(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        on_complete: Callable[[int], None],
    ) -> None:
        bob.send_down(
            PACKET_BYTES,
            lambda _t: self._remote_dram(
                bob, placement, OpType.WRITE,
                lambda t2: self._remote_done(on_complete, t2),
            ),
            tag="remote",
        )

    def _remote_dram(
        self,
        bob: BobChannel,
        placement: BlockPlacement,
        op: OpType,
        on_complete: Callable[[int], None],
    ) -> None:
        """Queue the block access at the normal channel's sub-channel."""
        sub = bob.subchannels[placement.subchannel]
        req = MemRequest(
            op, placement.channel, placement.subchannel,
            placement.bank, placement.row, placement.col,
            self.app_id, TrafficClass.SECURE, 0, on_complete,
        )
        self._enqueue_or_hold(sub, req)

    def _enqueue_or_hold(self, sub: Channel, req: MemRequest) -> None:
        if sub.can_accept(req.op):
            sub.enqueue(req)
        else:
            sub.notify_on_space(lambda: self._enqueue_or_hold(sub, req))

    def _remote_done(
        self, on_complete: Callable[[int], None], time: int
    ) -> None:
        self._remote_outstanding -= 1
        self._wake_waiters()
        on_complete(time)

    # ------------------------------------------------------------------
    def notify_on_space(self, callback: Callable[[], None]) -> None:
        """One-shot wake when local queues or the remote window free up."""
        fired = [False]

        def once() -> None:
            if not fired[0]:
                fired[0] = True
                callback()

        for sub in self.secure_bob.subchannels:
            sub.notify_on_space(once)
        self._space_waiters.append(once)

    def _wake_waiters(self) -> None:
        if not self._space_waiters:
            return
        waiters, self._space_waiters = self._space_waiters, []
        for callback in waiters:
            callback()
